#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, tests.
# Usage: scripts/check.sh [--bench]
#   --bench  also run the mean-based telemetry overhead gate (slow and
#            scheduling-sensitive, so off by default).
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_BENCH=0
for arg in "$@"; do
  case "$arg" in
    --bench) RUN_BENCH=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> fault-injection suite"
cargo test -q --test fault_injection

echo "==> service integration suite (crash recovery, retries, shedding)"
cargo test -q --test service_integration

echo "==> tracing suite (span tree, determinism, journal correlation)"
cargo test -q --test tracing

echo "==> cluster suite (sharded fan-out, kill-a-shard lossless failover)"
cargo test -q --test cluster_integration

echo "==> trace golden-file check (deterministic export must be byte-stable)"
cargo build --release -q
TRACE_TMP="$(mktemp /tmp/m3-trace-golden.XXXXXX.json)"
trap 'rm -f "$TRACE_TMP"' EXIT
./target/release/m3 estimate tests/golden/estimate_spec.json \
  --trace-out "$TRACE_TMP" --trace-stride-ns 1000000 --trace-deterministic \
  > /dev/null
if ! diff -q tests/golden/estimate_trace.json "$TRACE_TMP" > /dev/null; then
  echo "trace golden mismatch: tests/golden/estimate_trace.json vs $TRACE_TMP" >&2
  echo "(if the trace format changed intentionally, regenerate the golden" >&2
  echo " with the command above and commit it)" >&2
  diff tests/golden/estimate_trace.json "$TRACE_TMP" | head -20 >&2 || true
  exit 1
fi
echo "trace golden matches"

echo "==> tracing overhead gate (<3% disabled-tracing overhead, writes BENCH_tracing_overhead.json)"
cargo bench -p m3-bench --bench tracing_overhead

echo "==> hot-path kernel gate (>=4x forward reference-vs-pooled, writes BENCH_hotpath.json)"
cargo bench -p m3-bench --bench hotpath

echo "==> cluster scaling gate (>=6x aggregate throughput at 8 shards, writes BENCH_cluster_scaling.json)"
cargo bench -p m3-bench --bench cluster_scaling

echo "==> cluster soak (seeded kill/restart schedule, lossless rerouting)"
scripts/soak.sh --cluster 1 18

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "==> telemetry overhead gate (<2%, writes BENCH_telemetry_overhead.json)"
  cargo bench -p m3-bench --bench telemetry_overhead
fi

echo "All checks passed."
