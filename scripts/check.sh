#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> fault-injection suite"
cargo test -q --test fault_injection

echo "==> service integration suite (crash recovery, retries, shedding)"
cargo test -q --test service_integration

echo "All checks passed."
