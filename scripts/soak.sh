#!/usr/bin/env bash
# Soak the estimation service under randomized (seeded) fault plans and
# assert its core guarantee: no accepted job is ever lost — every id
# reaches exactly one terminal state and the stats books balance.
#
# Usage: scripts/soak.sh [ROUNDS] [JOBS_PER_ROUND]
# Each round uses a different seed, so the transient/persistent fault mix,
# worker panics, deadlines, and overload pattern vary while remaining
# reproducible: a failing round can be replayed exactly with
#   cargo run --release -p m3-serve --bin soak -- <jobs> <seed>
set -euo pipefail
cd "$(dirname "$0")/.."

ROUNDS="${1:-5}"
JOBS="${2:-24}"

cargo build --release -p m3-serve --bin soak

for seed in $(seq 1 "$ROUNDS"); do
    echo "==> soak round $seed/$ROUNDS ($JOBS jobs, seed $seed)"
    ./target/release/soak "$JOBS" "$seed"
done

echo "Soak passed: $ROUNDS rounds x $JOBS jobs, no job lost."
