#!/usr/bin/env bash
# Soak the estimation stack under randomized (seeded) fault plans and
# assert the core guarantee: no accepted job is ever lost — every id
# reaches exactly one terminal state and the stats books balance.
#
# Modes:
#   scripts/soak.sh [ROUNDS] [JOBS_PER_ROUND]            single-service soak
#   scripts/soak.sh --cluster [ROUNDS] [JOBS_PER_ROUND]  sharded-cluster soak
#
# The cluster mode runs each round under a seeded kill/restart schedule
# (shard crashes, supervisor stalls, slow-start recoveries) and
# additionally asserts that the faulted run's estimates are bit-identical
# to a fault-free run (lossless rerouting) and that merged deterministic
# metrics are byte-stable across identical runs.
#
# Each round uses a different seed, so the fault mix varies while staying
# reproducible: a failing round can be replayed exactly with
#   cargo run --release -p m3-serve --bin soak -- <jobs> <seed>
#   cargo run --release -p m3-serve --bin cluster_soak -- <jobs> <seed>
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=service
if [[ "${1:-}" == "--cluster" ]]; then
  MODE=cluster
  shift
fi

ROUNDS="${1:-5}"
JOBS="${2:-24}"

if [[ "$MODE" == "cluster" ]]; then
  cargo build --release -p m3-serve --bin cluster_soak
  for seed in $(seq 1 "$ROUNDS"); do
      echo "==> cluster soak round $seed/$ROUNDS ($JOBS jobs, seed $seed)"
      ./target/release/cluster_soak "$JOBS" "$seed"
  done
  echo "Cluster soak passed: $ROUNDS rounds x $JOBS jobs, no job lost, rerouting lossless."
else
  cargo build --release -p m3-serve --bin soak
  for seed in $(seq 1 "$ROUNDS"); do
      echo "==> soak round $seed/$ROUNDS ($JOBS jobs, seed $seed)"
      ./target/release/soak "$JOBS" "$seed"
  done
  echo "Soak passed: $ROUNDS rounds x $JOBS jobs, no job lost."
fi
