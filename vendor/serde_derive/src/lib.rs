//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenTree` (no syn/quote — the
//! build is hermetic), covering the shapes this workspace uses:
//!
//! * structs with named fields, newtype (single-field tuple) structs;
//! * enums with unit, newtype and struct variants, externally tagged by
//!   default, internally tagged with `#[serde(tag = "...")]`;
//! * attributes `#[serde(default)]`, `#[serde(default = "path")]` on
//!   fields and `#[serde(tag = "...", rename_all = "snake_case")]` on
//!   containers.
//!
//! Generated impls target the value-tree traits in the vendored `serde`
//! (`to_value` / `from_value`), and the JSON layout matches upstream
//! serde_json conventions so hand-written spec files keep working.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone)]
enum DefaultAttr {
    None,
    Std,
    Path(String),
}

#[derive(Clone)]
struct Field {
    ident: String,
    key: String,
    default: DefaultAttr,
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    ident: String,
    shape: VariantShape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    shape: Shape,
    tag: Option<String>,
    rename_all_snake: bool,
}

fn strip_raw(ident: &str) -> String {
    ident.strip_prefix("r#").unwrap_or(ident).to_string()
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Parsed `#[serde(...)]` attribute items: (name, optional string value).
fn serde_attr_items(tokens: &[TokenTree]) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                let name = id.to_string();
                if i + 2 < tokens.len() {
                    if let (TokenTree::Punct(p), TokenTree::Literal(l)) =
                        (&tokens[i + 1], &tokens[i + 2])
                    {
                        if p.as_char() == '=' {
                            out.push((name, Some(unquote(&l.to_string()))));
                            i += 3;
                            continue;
                        }
                    }
                }
                out.push((name, None));
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Consume leading attributes at `*i`, returning serde attr items.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<(String, Option<String>)> {
    let mut items = Vec::new();
    while *i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[*i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            let args: Vec<TokenTree> = args.stream().into_iter().collect();
                            items.extend(serde_attr_items(&args));
                        }
                    }
                }
                *i += 2;
                continue;
            }
        }
        break;
    }
    items
}

/// Skip visibility (`pub`, `pub(crate)`, ...) at `*i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if *i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip a type at `*i`, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut i);
        let ident = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        i += 1; // field name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        i += 1; // ','
        let mut default = DefaultAttr::None;
        for (name, val) in attrs {
            if name == "default" {
                default = match val {
                    Some(path) => DefaultAttr::Path(path),
                    None => DefaultAttr::Std,
                };
            }
        }
        fields.push(Field {
            key: strip_raw(&ident),
            ident,
            default,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let ident = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Newtype
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant, then the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { ident, shape });
    }
    variants
}

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = take_attrs(&tokens, &mut i);
    let mut tag = None;
    let mut rename_all_snake = false;
    for (name, val) in &attrs {
        match name.as_str() {
            "tag" => tag = val.clone(),
            "rename_all" => rename_all_snake = val.as_deref() == Some("snake_case"),
            _ => {}
        }
    }
    skip_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    i += 1;
    // Generic parameters are not supported (nothing in the workspace
    // derives serde on a generic type); skip to the body group.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() != Delimiter::Bracket => break g.clone(),
            Some(_) => i += 1,
            None => panic!("serde derive: missing body for `{name}`"),
        }
    };
    let shape = match (kw.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::NamedStruct(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => Shape::NewtypeStruct,
        ("enum", Delimiter::Brace) => Shape::Enum(parse_variants(body.stream())),
        (kw, _) => panic!("serde derive: unsupported item kind `{kw}` for `{name}`"),
    };
    Container {
        name,
        shape,
        tag,
        rename_all_snake,
    }
}

impl Container {
    fn variant_key(&self, ident: &str) -> String {
        if self.rename_all_snake {
            snake_case(ident)
        } else {
            ident.to_string()
        }
    }
}

fn gen_struct_fields_ser(fields: &[Field], map: &str, access: &str) -> String {
    let mut out = String::new();
    for f in fields {
        out.push_str(&format!(
            "{map}.insert(\"{key}\", ::serde::Serialize::to_value({access}{ident}));\n",
            key = f.key,
            ident = f.ident,
        ));
    }
    out
}

fn gen_struct_fields_de(fields: &[Field], obj: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = match &f.default {
            DefaultAttr::None => {
                format!("::serde::Deserialize::missing_field(\"{}\")?", f.key)
            }
            DefaultAttr::Std => "::core::default::Default::default()".to_string(),
            DefaultAttr::Path(path) => format!("{path}()"),
        };
        out.push_str(&format!(
            "{ident}: match {obj}.get(\"{key}\") {{\n\
             ::core::option::Option::Some(__fv) => \
             ::serde::Deserialize::from_value(__fv).map_err(|e| e.in_field(\"{key}\"))?,\n\
             ::core::option::Option::None => {missing},\n\
             }},\n",
            ident = f.ident,
            key = f.key,
        ));
    }
    out
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::NamedStruct(fields) => {
            format!(
                "let mut __m = ::serde::Map::new();\n{}::serde::Value::Object(__m)",
                gen_struct_fields_ser(fields, "__m", "&self.")
            )
        }
        Shape::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = c.variant_key(&v.ident);
                let arm = match (&v.shape, &c.tag) {
                    (VariantShape::Unit, None) => format!(
                        "{name}::{v} => ::serde::Value::String(\"{key}\".to_string()),\n",
                        v = v.ident
                    ),
                    (VariantShape::Unit, Some(tag)) => format!(
                        "{name}::{v} => {{\n\
                         let mut __m = ::serde::Map::new();\n\
                         __m.insert(\"{tag}\", ::serde::Value::String(\"{key}\".to_string()));\n\
                         ::serde::Value::Object(__m)\n}}\n",
                        v = v.ident
                    ),
                    (VariantShape::Newtype, None) => format!(
                        "{name}::{v}(__x) => {{\n\
                         let mut __m = ::serde::Map::new();\n\
                         __m.insert(\"{key}\", ::serde::Serialize::to_value(__x));\n\
                         ::serde::Value::Object(__m)\n}}\n",
                        v = v.ident
                    ),
                    (VariantShape::Newtype, Some(_)) => panic!(
                        "serde derive: newtype variant `{}` not supported with tag",
                        v.ident
                    ),
                    (VariantShape::Struct(fields), None) => {
                        let pats: Vec<&str> = fields.iter().map(|f| f.ident.as_str()).collect();
                        format!(
                            "{name}::{v} {{ {pats} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n{sets}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{key}\", ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            v = v.ident,
                            pats = pats.join(", "),
                            sets = gen_struct_fields_ser(fields, "__inner", ""),
                        )
                    }
                    (VariantShape::Struct(fields), Some(tag)) => {
                        let pats: Vec<&str> = fields.iter().map(|f| f.ident.as_str()).collect();
                        format!(
                            "{name}::{v} {{ {pats} }} => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{tag}\", ::serde::Value::String(\"{key}\".to_string()));\n{sets}\
                             ::serde::Value::Object(__m)\n}}\n",
                            v = v.ident,
                            pats = pats.join(", "),
                            sets = gen_struct_fields_ser(fields, "__m", ""),
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::NamedStruct(fields) => format!(
            "let __obj = __v.as_object().ok_or_else(|| \
             ::serde::DeError::new(\"expected object for `{name}`\"))?;\n\
             ::core::result::Result::Ok({name} {{\n{fields}}})",
            fields = gen_struct_fields_de(fields, "__obj"),
        ),
        Shape::NewtypeStruct => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Enum(variants) => match &c.tag {
            Some(tag) => {
                let mut arms = String::new();
                for v in variants {
                    let key = c.variant_key(&v.ident);
                    let arm = match &v.shape {
                        VariantShape::Unit => format!(
                            "\"{key}\" => ::core::result::Result::Ok({name}::{v}),\n",
                            v = v.ident
                        ),
                        VariantShape::Struct(fields) => format!(
                            "\"{key}\" => ::core::result::Result::Ok({name}::{v} {{\n{fields}}}),\n",
                            v = v.ident,
                            fields = gen_struct_fields_de(fields, "__obj"),
                        ),
                        VariantShape::Newtype => panic!(
                            "serde derive: newtype variant `{}` not supported with tag",
                            v.ident
                        ),
                    };
                    arms.push_str(&arm);
                }
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::new(\"expected object for `{name}`\"))?;\n\
                     let __tag = __obj.get(\"{tag}\").and_then(|t| t.as_str()).ok_or_else(|| \
                     ::serde::DeError::new(\"missing tag `{tag}` for `{name}`\"))?;\n\
                     match __tag {{\n{arms}\
                     __other => ::core::result::Result::Err(::serde::DeError::new(\
                     format!(\"unknown `{name}` variant `{{__other}}`\"))),\n}}"
                )
            }
            None => {
                let mut unit_arms = String::new();
                let mut obj_arms = String::new();
                for v in variants {
                    let key = c.variant_key(&v.ident);
                    match &v.shape {
                        VariantShape::Unit => unit_arms.push_str(&format!(
                            "\"{key}\" => ::core::result::Result::Ok({name}::{v}),\n",
                            v = v.ident
                        )),
                        VariantShape::Newtype => obj_arms.push_str(&format!(
                            "\"{key}\" => ::core::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n",
                            v = v.ident
                        )),
                        VariantShape::Struct(fields) => obj_arms.push_str(&format!(
                            "\"{key}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"expected object for `{name}::{v}`\"))?;\n\
                             ::core::result::Result::Ok({name}::{v} {{\n{fields}}})\n}}\n",
                            v = v.ident,
                            fields = gen_struct_fields_de(fields, "__obj"),
                        )),
                    }
                }
                format!(
                    "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::core::result::Result::Err(::serde::DeError::new(\
                     format!(\"unknown `{name}` variant `{{__other}}`\"))),\n}},\n\
                     ::serde::Value::Object(__m) => {{\n\
                     let (__k, __inner) = __m.first().ok_or_else(|| \
                     ::serde::DeError::new(\"empty object for `{name}`\"))?;\n\
                     match __k {{\n{obj_arms}\
                     __other => ::core::result::Result::Err(::serde::DeError::new(\
                     format!(\"unknown `{name}` variant `{{__other}}`\"))),\n}}\n}}\n\
                     __other => ::core::result::Result::Err(::serde::DeError::new(\
                     format!(\"expected string or object for `{name}`, got {{}}\", __other.kind()))),\n}}"
                )
            }
        },
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
