//! Offline stand-in for `proptest`: deterministic strategy-driven random
//! testing without shrinking. Covers the workspace's surface: the
//! `proptest!` macro (with `#![proptest_config(...)]`), numeric range
//! strategies, tuples, `prop::collection::vec`, `prop::bool::ANY`,
//! `prop::sample::select`, `.prop_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a seed derived from the test name and case
//! index, so failures reproduce exactly across runs. There is no shrinking:
//! the failing inputs are printed as-is via the assertion message.

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
        TestRng,
    };
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Splitmix64-based generator for strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed derived from (test name, case index): deterministic per case.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Upstream proptest builds shrinkable value trees; this
/// shim only generates.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 G)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Sub-strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: *r.end() + 1,
                }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
                let n = self.size.lo + (rng.next_u64() % span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        use crate::{Strategy, TestRng};

        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub mod sample {
        use crate::{Strategy, TestRng};

        pub struct Select<T> {
            items: Vec<T>,
        }

        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select: empty choices");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[(rng.next_u64() % self.items.len() as u64) as usize].clone()
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl $cfg; $($rest)* }
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::TestRng::for_case(stringify!($name), __case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}:\n{}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f64..2.0, b in prop::bool::ANY) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_and_select(
            mut v in prop::collection::vec(0u64..100, 1..20),
            pick in prop::sample::select(vec![1usize, 2, 4]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            v.push(pick as u64);
            prop_assert!(v.iter().all(|&x| x < 100 || x <= 4));
        }

        #[test]
        fn tuples_and_map(t in (0u8..4, 1u16..9).prop_map(|(a, b)| a as u32 + b as u32)) {
            prop_assert!((1..12).contains(&t), "t = {}", t);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
