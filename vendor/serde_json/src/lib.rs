//! Offline stand-in for `serde_json`: emit and parse JSON through the
//! vendored serde's [`Value`] tree. Covers the workspace's entry points:
//! `to_string`, `to_string_pretty`, `to_vec`, `to_writer`, `from_str`,
//! `from_slice`.

use serde::{Deserialize, Serialize};
pub use serde::{Map, Number, Value};
use std::io;

#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- emitting

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::U(x) => out.push_str(&x.to_string()),
        Number::I(x) => out.push_str(&x.to_string()),
        // `{:?}` round-trips f64 (shortest representation); non-finite
        // values are not representable in JSON and become null, matching
        // upstream serde_json's lossy float handling.
        Number::F(x) if x.is_finite() => out.push_str(&format!("{x:?}")),
        Number::F(_) => out.push_str("null"),
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                write_value(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline_indent(out, level);
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline_indent(out, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.consume_lit("null", Value::Null),
            Some(b't') => self.consume_lit("true", Value::Bool(true)),
            Some(b'f') => self.consume_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(
                                        char::from_u32(c).ok_or_else(|| self.err("bad escape"))?,
                                    );
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                out.push(char::from_u32(cp).ok_or_else(|| self.err("bad escape"))?);
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        // Called with pos on the 'u'; reads the following 4 hex digits and
        // leaves pos on the last digit (caller advances past it).
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex =
            std::str::from_utf8(&self.bytes[start..end]).map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let n = if is_float {
            Number::F(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
        } else if text.starts_with('-') {
            Number::I(text.parse::<i64>().map_err(|_| self.err("bad number"))?)
        } else {
            Number::U(text.parse::<u64>().map_err(|_| self.err("bad number"))?)
        };
        Ok(Value::Number(n))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let mut p = Parser::new(bytes);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let mut obj = Map::new();
        obj.insert("name", Value::String("quote \" and \\ tab\t".into()));
        obj.insert("count", Value::Number(Number::U(18446744073709551615)));
        obj.insert("delta", Value::Number(Number::I(-42)));
        obj.insert("ratio", Value::Number(Number::F(0.1)));
        obj.insert(
            "xs",
            Value::Array(vec![Value::Null, Value::Bool(true), Value::Bool(false)]),
        );
        let v = Value::Object(obj);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested_and_ws() {
        let v: Value = from_str(" { \"a\" : [ 1 , 2.5 , -3 ] , \"b\" : { } } ").unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj.get("a"),
            Some(&Value::Array(vec![
                Value::Number(Number::U(1)),
                Value::Number(Number::F(2.5)),
                Value::Number(Number::I(-3)),
            ]))
        );
    }

    #[test]
    fn float_round_trip_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 6.02e23, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
