//! Offline stand-in for `criterion`: a tiny wall-clock benchmark harness
//! with the `criterion_group!`/`criterion_main!` macros, benchmark groups,
//! and `Bencher::iter`. Reports mean / min / max per benchmark to stdout.
//!
//! Timing method: one warmup call, then enough iterations to fill a small
//! time budget (at least 3, at most 1000). No statistics beyond min / mean /
//! max — the workspace's own BENCH_*.json writers consume the same numbers
//! through [`Criterion::last_mean_ns`].

use std::time::{Duration, Instant};

/// Per-process name filter from `cargo bench -- <filter>` style args.
fn cli_filter() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && !a.is_empty())
}

pub struct Criterion {
    filter: Option<String>,
    last_mean_ns: f64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: cli_filter(),
            last_mean_ns: f64::NAN,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let owned = name.to_string();
        self.run_one(&owned, 20, f);
        self
    }

    /// Mean time of the most recently run benchmark, in nanoseconds.
    pub fn last_mean_ns(&self) -> f64 {
        self.last_mean_ns
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        if b.samples_ns.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.samples_ns.iter().cloned().fold(0.0, f64::max);
        let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
        self.last_mean_ns = mean;
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        self.parent.run_one(&name, self.sample_size, f);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.parent
            .run_one(&name, self.sample_size, |b| f(b, input));
    }

    pub fn finish(&mut self) {}
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup (also primes caches / lazy statics).
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let warm = warm_start.elapsed();

        // Pick an iteration count that fits a ~1s budget given the warmup
        // estimate, clamped to [3, 10 * sample_size].
        let budget = Duration::from_millis(1000);
        let per_iter = warm.max(Duration::from_nanos(20));
        let iters = (budget.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(3, 10 * self.sample_size as u128) as usize;

        self.samples_ns.clear();
        for _ in 0..iters {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            filter: None,
            last_mean_ns: f64::NAN,
        };
        c.bench_function("smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert!(c.last_mean_ns() > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            filter: None,
            last_mean_ns: f64::NAN,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| x * 2));
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
