//! The JSON value tree shared by `serde` and `serde_json`.

use crate::DeError;

/// A JSON value. `Number` keeps unsigned, signed and floating values
/// distinct so `u64` seeds survive round-trips without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(x) => x as f64,
            Number::I(x) => x as f64,
            Number::F(x) => x,
        }
    }

    /// Lossless conversion into any primitive integer: floats are accepted
    /// only when integral, signedness mismatches are rejected.
    pub fn to_int<T: TryFrom<i128>>(&self) -> Result<T, DeError> {
        let wide: i128 = match *self {
            Number::U(x) => x as i128,
            Number::I(x) => x as i128,
            Number::F(x) => {
                if x.fract() != 0.0 || !x.is_finite() || x.abs() >= 2f64.powi(63) {
                    return Err(DeError::new(format!("expected integer, got float {x}")));
                }
                x as i128
            }
        };
        T::try_from(wide).map_err(|_| DeError::new(format!("integer {wide} out of range")))
    }
}

/// Insertion-ordered string-keyed map (JSON object).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert, replacing any existing entry with the same key in place.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// First entry, for single-key externally-tagged enum objects.
    pub fn first(&self) -> Option<(&str, &Value)> {
        self.entries.first().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        m.insert("a", Value::Null);
        m.insert("a", Value::Bool(true));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a"), Some(&Value::Bool(true)));
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        for k in ["z", "a", "m"] {
            m.insert(k, Value::Null);
        }
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn number_to_int_bounds() {
        assert_eq!(Number::U(u64::MAX).to_int::<u64>().unwrap(), u64::MAX);
        assert!(Number::U(u64::MAX).to_int::<i64>().is_err());
        assert!(Number::F(1.5).to_int::<u8>().is_err());
        assert_eq!(Number::F(-2.0).to_int::<i32>().unwrap(), -2);
    }
}
