//! Offline stand-in for `serde`, built around an in-memory JSON value tree.
//!
//! Upstream serde abstracts over data formats with visitor-based
//! `Serializer`/`Deserializer` traits; this workspace only ever serializes
//! to and from JSON (via the vendored `serde_json`), so the shim collapses
//! the whole stack to two object-safe-free traits:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`] tree;
//! * [`Deserialize`] — rebuild `Self` from a [`Value`] tree.
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! vendored `serde_derive`) generate impls that follow upstream's JSON data
//! model: structs as objects, unit enum variants as strings, struct/newtype
//! variants as single-key objects, `#[serde(tag = "...")]` as internal
//! tagging, plus the `default`, `default = "path"` and
//! `rename_all = "snake_case"` attributes.

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{Map, Number, Value};

/// Deserialization error: a message plus an optional field/path context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Prefix the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        DeError {
            msg: format!("{field}: {}", self.msg),
        }
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Hook for absent object fields. `Option<T>` overrides this to yield
    /// `None`, mirroring upstream's implicit-optional behavior; everything
    /// else reports a missing field.
    fn missing_field(name: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{name}`")))
    }
}

macro_rules! int_impls {
    ($($t:ty => $var:ident),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(clippy::unnecessary_cast)]
                Value::Number(Number::$var(*self as _))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n.to_int::<$t>(),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

int_impls!(
    u8 => U, u16 => U, u32 => U, u64 => U, usize => U,
    i8 => I, i16 => I, i32 => I, i64 => I, isize => I
);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!("expected char, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            Value::Array(items) => Err(DeError::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            ))),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $( + { let _ = $n; 1 } )+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    Value::Array(items) => Err(DeError::new(format!(
                        "expected tuple of length {}, got {}", LEN, items.len()
                    ))),
                    other => Err(DeError::new(format!(
                        "expected array, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u32).to_value(), Value::Number(Number::U(3)));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <Option<u32> as Deserialize>::missing_field("x").unwrap(),
            None
        );
        assert!(<u32 as Deserialize>::missing_field("x").is_err());
    }

    #[test]
    fn numbers_cross_convert() {
        // A JSON integer must deserialize into f64 fields and vice versa
        // when the float is integral.
        assert_eq!(f64::from_value(&Value::Number(Number::U(7))).unwrap(), 7.0);
        assert_eq!(u64::from_value(&Value::Number(Number::F(7.0))).unwrap(), 7);
        assert!(u64::from_value(&Value::Number(Number::F(7.5))).is_err());
        assert!(u64::from_value(&Value::Number(Number::I(-3))).is_err());
        assert_eq!(i64::from_value(&Value::Number(Number::I(-3))).unwrap(), -3);
    }

    #[test]
    fn arrays_and_tuples() {
        let v = vec![1u64, 2, 3].to_value();
        assert_eq!(Vec::<u64>::from_value(&v).unwrap(), vec![1, 2, 3]);
        let t = ("x".to_string(), 4usize, 5usize).to_value();
        let back: (String, usize, usize) = Deserialize::from_value(&t).unwrap();
        assert_eq!(back, ("x".to_string(), 4, 5));
        let arr = [1usize, 2, 3, 4].to_value();
        let back: [usize; 4] = Deserialize::from_value(&arr).unwrap();
        assert_eq!(back, [1, 2, 3, 4]);
    }
}
