//! Sequence utilities: the `SliceRandom::shuffle` subset.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, identical to upstream's algorithm.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..64).collect();
        let mut b = a.clone();
        a.shuffle(&mut SmallRng::seed_from_u64(5));
        b.shuffle(&mut SmallRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(a, sorted, "seed 5 should not produce identity");
    }
}
