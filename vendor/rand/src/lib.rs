//! Offline stand-in for the `rand` crate, implementing exactly the 0.8 API
//! subset this workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_bool, gen_range}` and `seq::SliceRandom::shuffle`.
//!
//! The workspace builds in a hermetic environment with no registry access,
//! so external crates are vendored as minimal reimplementations that keep
//! the same package and item names. Output streams are deterministic but do
//! not byte-match the upstream crate; nothing in the workspace depends on
//! upstream streams.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Upstream has an associated `Seed` type; this shim
/// only needs the `seed_from_u64` entry point the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types usable with `Rng::gen_range`. The half-open/inclusive
/// distinction is threaded through so integer sampling never overflows.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges samplable by `Rng::gen_range`. Single blanket impls per range
/// shape keep type inference working for untyped integer literals
/// (`gen_range(0..3)` used as a slice index), like upstream.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

macro_rules! uniform_int_impl {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let span = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    span + 1
                } else {
                    span
                };
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
uniform_int_impl!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! uniform_float_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u: f64 = StandardSample::sample_standard(rng);
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}
uniform_float_impl!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = StandardSample::sample_standard(self);
        u < p
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&z));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
