//! Small, fast generators. `SmallRng` here is xoshiro256++ seeded through
//! splitmix64, matching the upstream crate's *contract* (fast, seedable,
//! deterministic, not cryptographic) if not its exact output stream.

use crate::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_nondegenerate() {
        let mut r = SmallRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
