//! Offline stand-in for `rand_distr`: the `Exp`, `Normal`, `LogNormal` and
//! `Pareto` distributions this workspace samples, all via inverse-transform
//! or Box–Muller so the output depends only on the rng's uniform stream.

use rand::{Rng, RngCore, StandardSample};

/// Parameter error returned by every constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

fn uniform_open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // In (0, 1]: safe for ln().
    1.0 - <f64 as StandardSample>::sample_standard(rng)
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(Error("Exp: lambda must be finite and > 0"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -uniform_open01(rng).ln() / self.lambda
    }
}

/// Normal distribution (Box–Muller; one variate per sample keeps the
/// consumed uniform count fixed, which keeps seeded streams reproducible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if std_dev >= 0.0 && mean.is_finite() && std_dev.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(Error("Normal: std_dev must be finite and >= 0"))
        }
    }

    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1 = uniform_open01(rng);
        let u2: f64 = StandardSample::sample_standard(rng);
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Normal::standard(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma).map_err(|_| Error("LogNormal: invalid sigma"))?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Pareto distribution with minimum `scale` and tail index `shape`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if scale > 0.0 && shape > 0.0 && scale.is_finite() && shape.is_finite() {
            Ok(Pareto { scale, shape })
        } else {
            Err(Error("Pareto: scale and shape must be finite and > 0"))
        }
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale / uniform_open01(rng).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mean_of(d: &impl Distribution<f64>, n: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(7);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exp_mean_close() {
        let m = mean_of(&Exp::new(0.5).unwrap(), 200_000);
        assert!((m - 2.0).abs() < 0.05, "exp mean {m}");
    }

    #[test]
    fn normal_mean_close() {
        let m = mean_of(&Normal::new(3.0, 2.0).unwrap(), 200_000);
        assert!((m - 3.0).abs() < 0.05, "normal mean {m}");
    }

    #[test]
    fn lognormal_median_close() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!(
            (median - 1f64.exp()).abs() < 0.1,
            "lognormal median {median}"
        );
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(5.0, 1.8).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 5.0);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Pareto::new(-1.0, 2.0).is_err());
    }
}
