//! Offline stand-in for `rayon`, implementing the `par_iter()` subset this
//! workspace uses on top of `std::thread::scope`.
//!
//! Design notes:
//!
//! * `map` is eager: it splits the items into contiguous chunks (one per
//!   available core), runs the closure on scoped threads, and re-joins the
//!   chunk outputs *in index order*. Results are therefore always ordered,
//!   like upstream's indexed parallel iterators.
//! * `reduce`, `sum` and `collect` run on the already-computed items in
//!   index order. Unlike upstream — whose `reduce` combines partial results
//!   in a nondeterministic tree shape — every fold here is a fixed
//!   left-to-right fold, so floating-point accumulation is bit-for-bit
//!   reproducible across runs and thread counts.

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter};
}

/// An "already materialized" parallel iterator over items of type `I`.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// Entry point: `.par_iter()` on anything iterable by shared reference
/// (slices, `Vec`, `BTreeSet`, ...). Yields `&T` items like upstream.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;

    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: ?Sized + Sync + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send + 'data,
{
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl<I: Send> ParIter<I> {
    /// Parallel map; output order matches input order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Index-ordered collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Deterministic left-to-right sum.
    pub fn sum<S: std::iter::Sum<I>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Deterministic left-to-right reduce (identity first).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I
    where
        ID: Fn() -> I,
        OP: Fn(I, I) -> I,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

fn parallel_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if n <= 1 || workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }

    let f = &f;
    let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::{BTreeSet, HashMap};

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential_bitwise() {
        let v: Vec<f64> = (0..5000).map(|i| (i as f64).sin() * 1e-3).collect();
        let par: f64 = v.par_iter().map(|&x| x * x).sum();
        let seq: f64 = v.iter().map(|&x| x * x).sum();
        assert_eq!(par.to_bits(), seq.to_bits());
    }

    #[test]
    fn collect_into_hashmap_from_btreeset() {
        let s: BTreeSet<usize> = (0..100).collect();
        let m: HashMap<usize, usize> = s.par_iter().map(|&k| (k, k * k)).collect();
        assert_eq!(m.len(), 100);
        assert_eq!(m[&7], 49);
    }

    #[test]
    fn reduce_is_left_fold() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![2], vec![3]];
        let out = v
            .par_iter()
            .map(|c| c.clone())
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            });
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = vec![];
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
