//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] is a seeded, pure function from (fault kind, slot index)
//! to "inject here?". The pipeline consults it at each stage boundary when
//! one is supplied via
//! [`EstimateOptions`](crate::pipeline::EstimateOptions), forcing the
//! exact failure modes the fault-tolerance layer must absorb: flowSim NaN
//! inputs, budget exhaustion, stage panics, poisoned forward-pass outputs,
//! and corrupted checkpoint bytes. Because decisions are hash-derived from
//! the seed, a failing scenario replays bit-identically.
//!
//! This module is compiled into the library (not `#[cfg(test)]`) so that
//! integration suites and bench binaries can drive it, but no fault is ever
//! injected unless a plan is explicitly passed in: the fault-free path has
//! zero overhead beyond an `Option` check.

use crate::cache::Fnv;
use serde::{Deserialize, Serialize};

/// The failure modes the injector can force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectedFault {
    /// Poison one flowSim input (NaN rate cap) so the fluid engine rejects
    /// it as a typed `InvalidInput` error.
    FlowsimNan,
    /// Run the slot's flowSim under a one-event budget so it trips
    /// `EventBudgetExceeded`.
    FlowsimBudget,
    /// Panic inside the slot's flowSim stage (exercises panic isolation).
    FlowsimPanic,
    /// Overwrite one forward-pass output row with NaN (exercises the
    /// non-finite output check and per-sample fallback).
    ForwardPoison,
    /// Flip bytes in a serialized checkpoint (exercises load validation).
    CheckpointCorrupt,
    /// Panic in the service worker thread *outside* the pipeline's panic
    /// barriers (exercises supervisor detection, job recovery, respawn).
    WorkerPanic,
    /// Kill a whole estimation shard mid-run (exercises the cluster
    /// coordinator's failure detection, journal-replay recovery, and
    /// rehash-and-reroute of the shard's in-flight work). The slot index
    /// is the shard index.
    ShardCrash,
    /// Freeze a shard's supervisor heartbeat without stopping its workers
    /// (exercises Suspect → Dead detection of a wedged-but-running node
    /// and the at-most-once-per-terminal-state dedupe when the stalled
    /// shard's results race the rerouted copies).
    ShardStall,
    /// Delay a restarted shard's readmission to the routing set (exercises
    /// the Recovered state and slow-start warmup window).
    ShardSlowStart,
}

impl InjectedFault {
    fn tag(self) -> u8 {
        match self {
            InjectedFault::FlowsimNan => 1,
            InjectedFault::FlowsimBudget => 2,
            InjectedFault::FlowsimPanic => 3,
            InjectedFault::ForwardPoison => 4,
            InjectedFault::CheckpointCorrupt => 5,
            InjectedFault::WorkerPanic => 6,
            InjectedFault::ShardCrash => 7,
            InjectedFault::ShardStall => 8,
            InjectedFault::ShardSlowStart => 9,
        }
    }

    pub const ALL: [InjectedFault; 9] = [
        InjectedFault::FlowsimNan,
        InjectedFault::FlowsimBudget,
        InjectedFault::FlowsimPanic,
        InjectedFault::ForwardPoison,
        InjectedFault::CheckpointCorrupt,
        InjectedFault::WorkerPanic,
        InjectedFault::ShardCrash,
        InjectedFault::ShardStall,
        InjectedFault::ShardSlowStart,
    ];
}

/// One injection rule: a fault kind, the fraction of slots it fires on,
/// and an optional attempt ceiling ("fail the first N attempts").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Rule {
    kind: InjectedFault,
    frac: f64,
    /// `Some(n)`: the rule only fires while the plan's attempt index is
    /// below `n` — so attempt `n` and later succeed. `None`: fires on
    /// every attempt (the classic, attempt-independent behavior).
    max_attempt: Option<u32>,
}

/// A seeded set of injection rules: for each fault kind, the fraction of
/// slots it fires on. Decisions are deterministic in (seed, kind, slot,
/// attempt).
///
/// The `attempt` index makes retry machinery deterministically testable: a
/// rule added via [`with_first_attempts`](Self::with_first_attempts) fires
/// only while `attempt < n`, so a retrying caller that stamps each attempt
/// with [`at_attempt`](Self::at_attempt) sees the fault exactly `n` times
/// and then a clean run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    /// Attempt index this plan instance evaluates under (0 = first try).
    #[serde(default)]
    attempt: u32,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            attempt: 0,
        }
    }

    /// Add a rule: inject `kind` on roughly `frac` of slots (clamped to
    /// [0, 1]; 1.0 means every slot, 0.0 means none). Later rules for the
    /// same kind replace earlier ones.
    pub fn with(mut self, kind: InjectedFault, frac: f64) -> Self {
        let frac = frac.clamp(0.0, 1.0);
        self.rules.retain(|r| r.kind != kind);
        self.rules.push(Rule {
            kind,
            frac,
            max_attempt: None,
        });
        self
    }

    /// Add a transient-fault rule: like [`with`](Self::with), but the rule
    /// only fires on the first `n` attempts (attempt indices `0..n`), so a
    /// retrying caller deterministically succeeds on attempt `n`.
    pub fn with_first_attempts(mut self, kind: InjectedFault, frac: f64, n: u32) -> Self {
        let frac = frac.clamp(0.0, 1.0);
        self.rules.retain(|r| r.kind != kind);
        self.rules.push(Rule {
            kind,
            frac,
            max_attempt: Some(n),
        });
        self
    }

    /// This plan evaluated at attempt index `a` (retry loops stamp each
    /// attempt before handing the plan to the pipeline).
    pub fn at_attempt(&self, a: u32) -> FaultPlan {
        let mut p = self.clone();
        p.attempt = a;
        p
    }

    /// The attempt index this plan instance evaluates under.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Does this plan inject `kind` at `slot`? Pure and deterministic:
    /// the same (seed, kind, slot, attempt) always answers the same.
    pub fn hits(&self, kind: InjectedFault, slot: usize) -> bool {
        let frac = match self.rules.iter().find(|r| r.kind == kind) {
            Some(r) => {
                if r.max_attempt.is_some_and(|n| self.attempt >= n) {
                    return false;
                }
                r.frac
            }
            None => return false,
        };
        if frac <= 0.0 {
            return false;
        }
        let mut h = Fnv::new();
        h.write_u64(self.seed);
        h.write_u8(kind.tag());
        h.write_u64(slot as u64);
        // Compare in u128 so frac = 1.0 (threshold u64::MAX) always hits.
        (h.finish() as u128) <= (frac * u64::MAX as f64) as u128
    }

    /// Slots in `0..n` the plan injects `kind` at.
    pub fn slots_hit(&self, kind: InjectedFault, n: usize) -> Vec<usize> {
        (0..n).filter(|&s| self.hits(kind, s)).collect()
    }

    /// Deterministically corrupt a byte buffer in place (for checkpoint
    /// corruption tests): flips one bit in each of `n_sites` positions
    /// derived from the seed, skipping the first `preserve` bytes so tests
    /// can target the payload rather than the magic/version prefix.
    pub fn corrupt_bytes(&self, bytes: &mut [u8], preserve: usize, n_sites: usize) {
        if bytes.len() <= preserve {
            return;
        }
        let span = bytes.len() - preserve;
        for site in 0..n_sites {
            let mut h = Fnv::new();
            h.write_u64(self.seed);
            h.write_u8(InjectedFault::CheckpointCorrupt.tag());
            h.write_u64(site as u64);
            let pos = preserve + (h.finish() as usize % span);
            let bit = (h.finish() >> 61) as u32 % 8;
            bytes[pos] ^= 1 << bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_hits() {
        let p = FaultPlan::new(7);
        for k in InjectedFault::ALL {
            assert!(p.slots_hit(k, 100).is_empty());
        }
    }

    #[test]
    fn frac_one_hits_everywhere_and_zero_nowhere() {
        let p = FaultPlan::new(7)
            .with(InjectedFault::FlowsimNan, 1.0)
            .with(InjectedFault::ForwardPoison, 0.0);
        assert_eq!(p.slots_hit(InjectedFault::FlowsimNan, 50).len(), 50);
        assert!(p.slots_hit(InjectedFault::ForwardPoison, 50).is_empty());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(1).with(InjectedFault::FlowsimPanic, 0.5);
        let b = FaultPlan::new(1).with(InjectedFault::FlowsimPanic, 0.5);
        let c = FaultPlan::new(2).with(InjectedFault::FlowsimPanic, 0.5);
        let hits_a = a.slots_hit(InjectedFault::FlowsimPanic, 200);
        assert_eq!(hits_a, b.slots_hit(InjectedFault::FlowsimPanic, 200));
        assert_ne!(hits_a, c.slots_hit(InjectedFault::FlowsimPanic, 200));
        // ~50% of 200 slots, loosely.
        assert!(hits_a.len() > 60 && hits_a.len() < 140, "{}", hits_a.len());
    }

    #[test]
    fn kinds_are_independent_streams() {
        let p = FaultPlan::new(3)
            .with(InjectedFault::FlowsimNan, 0.5)
            .with(InjectedFault::FlowsimBudget, 0.5);
        assert_ne!(
            p.slots_hit(InjectedFault::FlowsimNan, 200),
            p.slots_hit(InjectedFault::FlowsimBudget, 200)
        );
    }

    #[test]
    fn with_replaces_existing_rule() {
        let p = FaultPlan::new(3)
            .with(InjectedFault::FlowsimNan, 1.0)
            .with(InjectedFault::FlowsimNan, 0.0);
        assert!(p.slots_hit(InjectedFault::FlowsimNan, 20).is_empty());
    }

    #[test]
    fn first_attempts_rule_clears_after_n_attempts() {
        let p = FaultPlan::new(11).with_first_attempts(InjectedFault::FlowsimPanic, 1.0, 2);
        // Attempts 0 and 1 fault everywhere; attempt 2 onward is clean.
        for a in 0..2 {
            assert_eq!(
                p.at_attempt(a)
                    .slots_hit(InjectedFault::FlowsimPanic, 20)
                    .len(),
                20,
                "attempt {a}"
            );
        }
        for a in 2..5 {
            assert!(
                p.at_attempt(a)
                    .slots_hit(InjectedFault::FlowsimPanic, 20)
                    .is_empty(),
                "attempt {a}"
            );
        }
        assert_eq!(p.attempt(), 0, "at_attempt does not mutate the original");
    }

    #[test]
    fn attempt_index_does_not_perturb_attempt_independent_rules() {
        let p = FaultPlan::new(5).with(InjectedFault::FlowsimNan, 0.5);
        let base = p.slots_hit(InjectedFault::FlowsimNan, 100);
        for a in 1..4 {
            assert_eq!(
                base,
                p.at_attempt(a).slots_hit(InjectedFault::FlowsimNan, 100)
            );
        }
    }

    #[test]
    fn with_first_attempts_replaces_existing_rule_for_kind() {
        let p = FaultPlan::new(3)
            .with(InjectedFault::FlowsimBudget, 1.0)
            .with_first_attempts(InjectedFault::FlowsimBudget, 1.0, 1);
        assert_eq!(p.slots_hit(InjectedFault::FlowsimBudget, 10).len(), 10);
        assert!(p
            .at_attempt(1)
            .slots_hit(InjectedFault::FlowsimBudget, 10)
            .is_empty());
    }

    #[test]
    fn corrupt_bytes_changes_payload_not_prefix() {
        let clean: Vec<u8> = (0..64u8).collect();
        let mut dirty = clean.clone();
        FaultPlan::new(9).corrupt_bytes(&mut dirty, 8, 3);
        assert_eq!(&dirty[..8], &clean[..8], "prefix preserved");
        assert_ne!(dirty, clean, "payload corrupted");
        // Deterministic: same seed, same corruption.
        let mut again = clean.clone();
        FaultPlan::new(9).corrupt_bytes(&mut again, 8, 3);
        assert_eq!(dirty, again);
    }
}
