//! Network-wide aggregation (§3.5, Fig. 8).
//!
//! Each of the k sampled paths yields a per-size-bucket slowdown
//! distribution (100 percentiles). Because paths were sampled proportional
//! to foreground flow count, per-bucket pooling is *uniform* across paths;
//! the per-bucket distributions are then combined into one network-wide
//! distribution with weights proportional to bucket flow counts.

use crate::error::{FaultKind, Stage};
use crate::features::{output_bucket, OUTPUT_BUCKETS};
use m3_netsim::stats::{percentile, NUM_PERCENTILES};
use serde::{Deserialize, Serialize};

pub const NUM_OUTPUT_BUCKETS: usize = OUTPUT_BUCKETS.len();

/// One path's predicted (or measured) slowdown distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathDistribution {
    /// `NUM_OUTPUT_BUCKETS x NUM_PERCENTILES` slowdown values; empty buckets
    /// hold an empty vector.
    pub buckets: Vec<Vec<f64>>,
    /// Foreground flows per bucket on this path.
    pub counts: [usize; NUM_OUTPUT_BUCKETS],
}

impl PathDistribution {
    /// From raw (size, slowdown) samples (used for ground-truth paths and
    /// the flowSim baseline).
    pub fn from_samples(samples: &[(u64, f64)]) -> Self {
        let mut per: Vec<Vec<f64>> = vec![Vec::new(); NUM_OUTPUT_BUCKETS];
        let mut counts = [0usize; NUM_OUTPUT_BUCKETS];
        for &(size, sldn) in samples {
            let b = output_bucket(size);
            per[b].push(sldn);
            counts[b] += 1;
        }
        let buckets = per
            .into_iter()
            .map(|mut v| {
                if v.is_empty() {
                    return Vec::new();
                }
                v.sort_by(|a, b| a.total_cmp(b));
                (1..=NUM_PERCENTILES)
                    .map(|p| percentile(&v, p as f64))
                    .collect()
            })
            .collect();
        PathDistribution { buckets, counts }
    }

    /// From a model output vector (4x100 flattened) plus bucket counts.
    /// Values are clamped to >= 1 and made monotone across percentiles
    /// (a distribution's quantile function must be non-decreasing).
    pub fn from_model_output(out: &[f32], counts: [usize; NUM_OUTPUT_BUCKETS]) -> Self {
        assert_eq!(out.len(), NUM_OUTPUT_BUCKETS * NUM_PERCENTILES);
        let buckets = (0..NUM_OUTPUT_BUCKETS)
            .map(|b| {
                if counts[b] == 0 {
                    return Vec::new();
                }
                let mut row: Vec<f64> = out[b * NUM_PERCENTILES..(b + 1) * NUM_PERCENTILES]
                    .iter()
                    .map(|&v| (v as f64).max(1.0))
                    .collect();
                for i in 1..row.len() {
                    row[i] = row[i].max(row[i - 1]);
                }
                row
            })
            .collect();
        PathDistribution { buckets, counts }
    }

    /// Integrity check for distributions coming out of storage (the
    /// scenario cache today, disk tomorrow): the bucket/count structure
    /// must be consistent and every value finite. All legitimately
    /// constructed distributions pass; a corrupted one is evicted and
    /// recomputed rather than aggregated into an estimate.
    pub fn is_sane(&self) -> bool {
        if self.buckets.len() != NUM_OUTPUT_BUCKETS {
            return false;
        }
        for b in 0..NUM_OUTPUT_BUCKETS {
            let row = &self.buckets[b];
            if (self.counts[b] == 0) != row.is_empty() {
                return false;
            }
            if !row.iter().all(|v| v.is_finite()) {
                return false;
            }
        }
        true
    }
}

/// One recorded fault absorbed (or observed) while producing an estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationEvent {
    /// Pipeline stage where the fault surfaced.
    pub stage: Stage,
    /// Classification of the fault.
    pub fault: FaultKind,
    /// Index of the affected path sample (slot in the k sampled paths);
    /// `usize::MAX` for faults not tied to one sample.
    pub scenario: usize,
    /// Path samples whose result was affected by this event (0 when the
    /// fault was fully repaired, e.g. an evicted-and-recomputed cache
    /// entry).
    pub samples_affected: usize,
    /// Human-readable cause.
    pub detail: String,
}

/// Account of everything that went wrong (and was absorbed) during an
/// estimate. A clean run has `total_samples` set and everything else zero
/// or empty, and compares equal to `DegradationReport::default()` except
/// for `total_samples` — use [`is_clean`](Self::is_clean) to test.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Path samples the estimate was asked to cover.
    pub total_samples: usize,
    /// Samples that fell back to the uncorrected flowSim distribution
    /// (forward-stage faults: the flowSim result was usable).
    pub degraded_samples: usize,
    /// Samples dropped entirely (flowSim-stage faults: no distribution
    /// exists to fall back on).
    pub dropped_samples: usize,
    /// Individual fault events, in ascending scenario order.
    pub events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// True iff no sample was degraded or dropped and no fault observed.
    pub fn is_clean(&self) -> bool {
        self.degraded_samples == 0 && self.dropped_samples == 0 && self.events.is_empty()
    }

    /// Fraction of samples that did not get the full m3 treatment
    /// (degraded or dropped). 0.0 when there are no samples.
    pub fn degraded_frac(&self) -> f64 {
        if self.total_samples == 0 {
            return 0.0;
        }
        (self.degraded_samples + self.dropped_samples) as f64 / self.total_samples as f64
    }
}

/// Per-stage wall-clock seconds and work counters of the `estimate` call
/// that produced a [`NetworkEstimate`]. All-zero when the estimate was not
/// produced by the timed pipeline (e.g. ground truth). The bench binaries
/// serialize these into their BENCH_*.json records to track where time
/// goes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Path decomposition, sampling, and scenario materialization.
    pub decompose_s: f64,
    /// flowSim fluid simulation of unique scenarios.
    pub flowsim_s: f64,
    /// Feature-map extraction and encoding.
    pub features_s: f64,
    /// Neural-network forward pass (batched over unique scenarios).
    pub forward_s: f64,
    /// Final pooling into the network-wide distribution.
    pub aggregate_s: f64,
    /// Paths sampled for this estimate.
    pub sampled_paths: usize,
    /// Distinct scenarios after content-hash deduplication.
    pub unique_scenarios: usize,
    /// flowSim simulations actually executed (dedupe + cache skip the rest).
    pub flowsim_runs: usize,
    /// Scenarios answered from the cross-run scenario cache.
    pub cache_hits: usize,
    /// Scenarios probed but not found in the cache (0 when no cache was
    /// supplied; `cache_hits + cache_misses == unique_scenarios` otherwise).
    #[serde(default)]
    pub cache_misses: usize,
    /// Cache entries evicted while this estimate inserted its results
    /// (LRU pressure attributable to this call).
    #[serde(default)]
    pub cache_evictions: usize,
}

impl StageTimings {
    /// Total accounted wall-clock time in seconds.
    pub fn total_s(&self) -> f64 {
        self.decompose_s + self.flowsim_s + self.features_s + self.forward_s + self.aggregate_s
    }

    /// Backward-compatibility view over a telemetry snapshot: since the
    /// registry became the pipeline's source of truth, `StageTimings` is
    /// derived from the per-call metrics rather than populated by hand.
    /// Metrics absent from the snapshot read as zero.
    pub fn from_snapshot(snap: &m3_telemetry::MetricsSnapshot) -> StageTimings {
        use crate::metrics::names;
        let count = |n: &str| snap.counter(n).unwrap_or(0) as usize;
        let secs = |n: &str| snap.timer_seconds(n).unwrap_or(0.0);
        StageTimings {
            decompose_s: secs(names::DECOMPOSE_SECONDS),
            flowsim_s: secs(names::FLOWSIM_SECONDS),
            features_s: secs(names::FEATURES_SECONDS),
            forward_s: secs(names::FORWARD_SECONDS),
            aggregate_s: secs(names::AGGREGATE_SECONDS),
            sampled_paths: count(names::SAMPLED_PATHS),
            unique_scenarios: count(names::UNIQUE_SCENARIOS),
            flowsim_runs: count(names::FLOWSIM_RUNS),
            cache_hits: count(names::CACHE_HITS),
            cache_misses: count(names::CACHE_MISSES),
            cache_evictions: count(names::CACHE_EVICTIONS),
        }
    }
}

/// The aggregated network-wide estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkEstimate {
    /// Pooled slowdown samples per bucket (sorted).
    pub bucket_samples: Vec<Vec<f64>>,
    /// Total foreground flows per bucket across sampled paths.
    pub bucket_counts: [usize; NUM_OUTPUT_BUCKETS],
    /// Stage timings of the producing pipeline (zeroed otherwise). Not part
    /// of the estimate's value: two estimates are equivalent iff their
    /// samples and counts match, regardless of timings.
    #[serde(default)]
    pub timings: StageTimings,
    /// Faults absorbed while producing this estimate (empty for clean
    /// runs and for estimators that never degrade, e.g. ground truth).
    #[serde(default)]
    pub degradation: DegradationReport,
}

impl NetworkEstimate {
    /// Uniformly pool the per-bucket percentile vectors of all paths.
    pub fn aggregate(paths: &[PathDistribution]) -> Self {
        assert!(!paths.is_empty(), "need at least one path distribution");
        let mut bucket_samples: Vec<Vec<f64>> = vec![Vec::new(); NUM_OUTPUT_BUCKETS];
        let mut bucket_counts = [0usize; NUM_OUTPUT_BUCKETS];
        for p in paths {
            for b in 0..NUM_OUTPUT_BUCKETS {
                bucket_samples[b].extend_from_slice(&p.buckets[b]);
                bucket_counts[b] += p.counts[b];
            }
        }
        for v in bucket_samples.iter_mut() {
            v.sort_by(|a, b| a.total_cmp(b));
        }
        NetworkEstimate {
            bucket_samples,
            bucket_counts,
            timings: StageTimings::default(),
            degradation: DegradationReport::default(),
        }
    }

    /// Quantile of one size bucket (NaN if the bucket is empty).
    pub fn bucket_quantile(&self, bucket: usize, p: f64) -> f64 {
        percentile(&self.bucket_samples[bucket], p)
    }

    /// p99 slowdown of one size bucket.
    pub fn bucket_p99(&self, bucket: usize) -> f64 {
        self.bucket_quantile(bucket, 99.0)
    }

    /// Network-wide quantile: buckets combined with probability proportional
    /// to flow count (Fig. 8's probabilistic sampling, done analytically via
    /// a weighted merge).
    pub fn overall_quantile(&self, p: f64) -> f64 {
        let total: usize = self.bucket_counts.iter().sum();
        assert!(total > 0, "no flows to aggregate");
        // Weighted merge: each sample in bucket b carries weight
        // count_b / len_b.
        let mut weighted: Vec<(f64, f64)> = Vec::new();
        for b in 0..NUM_OUTPUT_BUCKETS {
            let n = self.bucket_samples[b].len();
            if n == 0 {
                continue;
            }
            let w = self.bucket_counts[b] as f64 / n as f64;
            weighted.extend(self.bucket_samples[b].iter().map(|&v| (v, w)));
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total_w: f64 = weighted.iter().map(|(_, w)| w).sum();
        let target = p.clamp(0.0, 100.0) / 100.0 * total_w;
        let mut acc = 0.0;
        for (v, w) in &weighted {
            acc += w;
            if acc >= target {
                return *v;
            }
        }
        weighted.last().map(|(v, _)| *v).unwrap_or(f64::NAN)
    }

    /// The paper's headline metric: network-wide p99 slowdown.
    pub fn p99(&self) -> f64 {
        self.overall_quantile(99.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(vals: &[(u64, f64)]) -> PathDistribution {
        PathDistribution::from_samples(vals)
    }

    #[test]
    fn from_samples_bucketing() {
        let d = dist(&[(500, 2.0), (500, 4.0), (5_000, 3.0), (100_000, 8.0)]);
        assert_eq!(d.counts, [2, 1, 0, 1]);
        assert!(d.buckets[2].is_empty());
        assert_eq!(d.buckets[1].len(), NUM_PERCENTILES);
    }

    #[test]
    fn model_output_clamped_and_monotone() {
        let mut out = vec![0.5f32; 400];
        out[100] = 3.0; // bucket 1 starts high then drops
        out[101] = 2.0;
        let d = PathDistribution::from_model_output(&out, [1, 1, 1, 1]);
        for b in 0..4 {
            let row = &d.buckets[b];
            assert!(row.iter().all(|&v| v >= 1.0));
            for w in row.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
        assert!((d.buckets[1][1] - 3.0).abs() < 1e-9, "monotone enforcement");
    }

    #[test]
    fn empty_bucket_in_model_output() {
        let out = vec![2.0f32; 400];
        let d = PathDistribution::from_model_output(&out, [5, 0, 0, 0]);
        assert!(d.buckets[1].is_empty());
    }

    #[test]
    fn aggregate_pools_uniformly() {
        let d1 = dist(&[(500, 2.0)]);
        let d2 = dist(&[(500, 6.0)]);
        let agg = NetworkEstimate::aggregate(&[d1, d2]);
        // Pooled: 100 samples at 2.0 and 100 at 6.0 -> median 4-ish, p99 = 6.
        assert!((agg.bucket_p99(0) - 6.0).abs() < 1e-9);
        let med = agg.bucket_quantile(0, 50.0);
        assert!((2.0..=6.0).contains(&med));
        assert_eq!(agg.bucket_counts[0], 2);
    }

    #[test]
    fn overall_quantile_weights_by_count() {
        // Bucket 0: 99 flows at slowdown 1; bucket 3: 1 flow at slowdown 10.
        let mut d1 = dist(&[(500, 1.0)]);
        d1.counts = [99, 0, 0, 0];
        let mut d2 = dist(&[(100_000, 10.0)]);
        d2.counts = [0, 0, 0, 1];
        let agg = NetworkEstimate::aggregate(&[d1, d2]);
        // p50 dominated by bucket 0; p99.5 reaches bucket 3's value.
        assert!((agg.overall_quantile(50.0) - 1.0).abs() < 1e-9);
        assert!((agg.overall_quantile(99.9) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn p99_matches_direct_computation_single_bucket() {
        let samples: Vec<(u64, f64)> = (0..1000).map(|i| (500u64, 1.0 + i as f64 * 0.01)).collect();
        let d = dist(&samples);
        let agg = NetworkEstimate::aggregate(&[d]);
        let mut sl: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let direct = m3_netsim::stats::percentile_unsorted(&mut sl, 99.0);
        assert!((agg.p99() - direct).abs() / direct < 0.02);
    }
}
