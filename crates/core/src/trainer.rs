//! Training m3's ML correction (§3.4, §5.1): generate synthetic parking-lot
//! scenarios from the Table 2 space, collect packet-level ground truth,
//! extract flowSim feature maps, and fit the transformer+MLP with per-
//! percentile L1 loss.
//!
//! The paper trains on 120,000 scenarios (2000 workloads x 20 configs x 3
//! path lengths) for 400 epochs on four A100s. The reproduction keeps the
//! same pipeline at configurable scale; EXPERIMENTS.md records the scale
//! used for each result.

use crate::features::{FeatureMap, FEAT_DIM, OUT_DIM};
use crate::spec::{path_base_rtt, spec_vector, SPEC_DIM};
use m3_flowsim::prelude::*;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use m3_workload::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Scale and hyper-parameters for dataset generation and training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    pub n_scenarios: usize,
    pub fg_flows: usize,
    pub bg_flows: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub seed: u64,
    pub model: ModelConfig,
    /// Train the "m3 w/o context" ablation (Fig. 16) when false.
    pub use_context: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            n_scenarios: 120,
            fg_flows: 300,
            bg_flows: 900,
            epochs: 30,
            batch_size: 20,
            lr: 3e-4,
            seed: 1,
            model: ModelConfig::repro_default(SPEC_DIM),
            use_context: true,
        }
    }
}

impl crate::error::SpecValidation for TrainConfig {
    fn validate_spec(&self) -> Result<(), crate::error::M3Error> {
        let invalid = |reason: String| crate::error::M3Error::InvalidSpec {
            stage: crate::error::Stage::Validate,
            reason,
        };
        if self.n_scenarios < 2 {
            return Err(invalid(format!(
                "n_scenarios ({}) must be at least 2 (10% is held out)",
                self.n_scenarios
            )));
        }
        if self.fg_flows == 0 || self.bg_flows == 0 {
            return Err(invalid("fg_flows and bg_flows must be positive".into()));
        }
        if self.epochs == 0 {
            return Err(invalid("epochs must be at least 1".into()));
        }
        if self.batch_size == 0 {
            return Err(invalid("batch_size must be positive".into()));
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return Err(invalid(format!(
                "lr ({}) must be finite and positive",
                self.lr
            )));
        }
        if self.model.feat_dim != FEAT_DIM
            || self.model.out_dim != OUT_DIM
            || self.model.spec_dim != SPEC_DIM
        {
            return Err(invalid(format!(
                "model I/O dims ({}, {}, {}) must match the m3 feature space \
                 ({FEAT_DIM}, {SPEC_DIM}, {OUT_DIM})",
                self.model.feat_dim, self.model.spec_dim, self.model.out_dim
            )));
        }
        self.model.validate().map_err(invalid)
    }
}

/// One training example: model input, target vector, and metadata for
/// evaluation.
#[derive(Debug, Clone)]
pub struct TrainExample {
    pub input: SampleInput,
    pub target: Vec<f32>,
    /// flowSim's own fg (size, slowdown) samples: the no-ML baseline.
    pub flowsim_fg: Vec<(u64, f64)>,
    /// Ground-truth fg (size, slowdown) samples.
    pub truth_fg: Vec<(u64, f64)>,
    pub n_hops: usize,
}

/// Build the model input (feature maps + spec) and flowSim baseline for a
/// synthetic [`PathScenario`].
pub fn scenario_features(
    ps: &PathScenario,
    config: &SimConfig,
    use_context: bool,
) -> (SampleInput, Vec<(u64, f64)>) {
    let (fluid_topo, fluid_flows) = ps.to_fluid(config.mtu);
    let records = simulate_fluid(&fluid_topo, &fluid_flows);
    let n_path_links = ps.fluid_link_count();
    let mut fg_samples = Vec::new();
    let mut bg_per_hop: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n_path_links];
    for r in &records {
        let i = r.id as usize;
        if ps.is_foreground[i] {
            fg_samples.push((r.size, r.slowdown()));
        } else {
            let f = &fluid_flows[i];
            for hop in f.first_link..=f.last_link {
                bg_per_hop[hop as usize].push((r.size, r.slowdown()));
            }
        }
    }
    let fg_map = FeatureMap::feature(&fg_samples);
    let bg_maps: Vec<Vec<f32>> = bg_per_hop
        .iter()
        .map(|s| FeatureMap::feature(s).encode_log())
        .collect();
    let base_rtt = path_base_rtt(&ps.topo, &ps.fg_path, config);
    let bottleneck = ps.topo.bottleneck_bandwidth(&ps.fg_path);
    let spec = spec_vector(config, base_rtt, bottleneck);
    (
        SampleInput {
            fg: fg_map.encode_log(),
            bg: bg_maps,
            spec,
            use_context,
        },
        fg_samples,
    )
}

/// Generate one training example from a Table 2 point.
pub fn make_example(
    point: &TrainingPoint,
    fg: usize,
    bg: usize,
    use_context: bool,
) -> TrainExample {
    let spec = point.to_scenario_spec(fg, bg);
    let ps = PathScenario::generate(&spec);
    let (input, flowsim_fg) = scenario_features(&ps, &point.config, use_context);
    // Ground truth: packet-level simulation; targets from fg slowdowns.
    let out = ps.ground_truth(point.config);
    let fg_ids: std::collections::HashSet<u32> = ps.foreground_ids().into_iter().collect();
    let truth_fg: Vec<(u64, f64)> = out
        .records
        .iter()
        .filter(|r| fg_ids.contains(&r.id))
        .map(|r| (r.size, r.slowdown()))
        .collect();
    let target_map = FeatureMap::output(&truth_fg);
    TrainExample {
        input,
        target: target_map.encode_log(),
        flowsim_fg,
        truth_fg,
        n_hops: point.n_hops,
    }
}

/// Generate a dataset from the Table 2 space, parallel over scenarios.
/// Path lengths cycle 2/4/6 as in the paper.
pub fn build_dataset(cfg: &TrainConfig) -> Vec<TrainExample> {
    let points: Vec<TrainingPoint> = {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        (0..cfg.n_scenarios)
            .map(|i| sample_training_point(&mut rng, [2, 4, 6][i % 3]))
            .collect()
    };
    points
        .par_iter()
        .map(|p| make_example(p, cfg.fg_flows, cfg.bg_flows, cfg.use_context))
        .collect()
}

/// Training history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    pub train_loss: Vec<f64>,
    pub val_loss: Vec<f64>,
    pub n_train: usize,
    pub n_val: usize,
}

/// Train a fresh model on a dataset; 10% held out for validation (§5.1).
/// Panics on an invalid config or dataset; [`try_train`] returns the
/// validation failure as a typed error instead.
pub fn train(cfg: &TrainConfig, dataset: &[TrainExample]) -> (M3Net, TrainReport) {
    match try_train(cfg, dataset) {
        Ok(r) => r,
        Err(e) => panic!("training failed: {e}"),
    }
}

/// Fallible [`train`]: the config is validated via
/// [`SpecValidation`](crate::error::SpecValidation) before any model is
/// allocated.
pub fn try_train(
    cfg: &TrainConfig,
    dataset: &[TrainExample],
) -> Result<(M3Net, TrainReport), crate::error::M3Error> {
    try_train_with_metrics(cfg, dataset, &m3_telemetry::MetricsRegistry::noop())
}

/// [`try_train`] with training-health telemetry recorded on `registry`:
/// `train.epochs` / `train.samples` counters, `train.epoch_loss` /
/// `train.val_loss` / `train.grad_norm` gauges (last value wins), the
/// `train.epoch_seconds` timer, and the wall-marked `train.samples_per_sec`
/// throughput gauge. Pass [`m3_telemetry::MetricsRegistry::noop`] to opt
/// out at zero cost.
pub fn try_train_with_metrics(
    cfg: &TrainConfig,
    dataset: &[TrainExample],
    registry: &m3_telemetry::MetricsRegistry,
) -> Result<(M3Net, TrainReport), crate::error::M3Error> {
    use crate::error::SpecValidation;
    cfg.validate_spec()?;
    if dataset.len() < 2 {
        return Err(crate::error::M3Error::InvalidSpec {
            stage: crate::error::Stage::Validate,
            reason: format!("dataset too small ({} examples, need >= 2)", dataset.len()),
        });
    }
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x7472_6169);
    order.shuffle(&mut rng);
    let n_val = (dataset.len() / 10).max(1);
    let (val_idx, train_idx) = order.split_at(n_val);

    let mut net = M3Net::new(cfg.model.clone(), cfg.seed);
    let mut opt = Adam::new(&net.store, cfg.lr);
    let mut report = TrainReport {
        train_loss: Vec::new(),
        val_loss: Vec::new(),
        n_train: train_idx.len(),
        n_val: val_idx.len(),
    };

    let epochs_done = registry.counter("train.epochs");
    let samples_seen = registry.counter("train.samples");
    let epoch_loss_g = registry.gauge("train.epoch_loss");
    let val_loss_g = registry.gauge("train.val_loss");
    let grad_norm_g = registry.gauge("train.grad_norm");
    let epoch_timer = registry.timer("train.epoch_seconds");
    let throughput_g = registry.wall_gauge("train.samples_per_sec");

    let mut train_order = train_idx.to_vec();
    // Warm tensor arenas shared across every batch's per-sample tapes:
    // steady-state training reuses node buffers instead of reallocating
    // them on each gradient pass.
    let arena_pool = ArenaPool::new();
    for _epoch in 0..cfg.epochs {
        let span = epoch_timer.span();
        let t_epoch = std::time::Instant::now();
        train_order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        let mut last_grad_norm = 0.0;
        for chunk in train_order.chunks(cfg.batch_size) {
            let batch: Vec<(SampleInput, Vec<f32>)> = chunk
                .iter()
                .map(|&i| (dataset[i].input.clone(), dataset[i].target.clone()))
                .collect();
            let (grads, loss) = batch_gradients_pooled(&net, &batch, &arena_pool);
            last_grad_norm = grad_l2_norm(&grads);
            opt.step(&mut net.store, &grads);
            epoch_loss += loss;
            batches += 1;
        }
        let train_loss = epoch_loss / batches.max(1) as f64;
        let val_loss = evaluate(&net, dataset, val_idx);
        report.train_loss.push(train_loss);
        report.val_loss.push(val_loss);

        epochs_done.inc();
        samples_seen.add(train_order.len() as u64);
        epoch_loss_g.set(train_loss);
        val_loss_g.set(val_loss);
        grad_norm_g.set(last_grad_norm);
        let secs = t_epoch.elapsed().as_secs_f64();
        if secs > 0.0 {
            throughput_g.set(train_order.len() as f64 / secs);
        }
        span.finish();
    }
    Ok((net, report))
}

/// Mean L1 loss of a model over a subset of the dataset.
pub fn evaluate(net: &M3Net, dataset: &[TrainExample], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return f64::NAN;
    }
    idx.par_iter()
        .map(|&i| {
            let ex = &dataset[i];
            let pred = net.predict(&ex.input);
            pred.iter()
                .zip(&ex.target)
                .map(|(p, t)| (p - t).abs() as f64)
                .sum::<f64>()
                / pred.len() as f64
        })
        .sum::<f64>()
        / idx.len() as f64
}

/// Deterministic seed helper for named experiment stages.
pub fn stage_seed(base: u64, stage: &str) -> u64 {
    let mut h = base ^ 0xcbf29ce484222325;
    for b in stage.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Sample `n` Table 2 points deterministically (exposed for experiments).
pub fn training_points(n: usize, seed: u64) -> Vec<TrainingPoint> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| sample_training_point(&mut rng, [2, 4, 6][i % 3]))
        .collect()
}

/// Convenience: sample a random Table 2 point with a given hop count.
pub fn training_point_with_hops(hops: usize, seed: u64) -> TrainingPoint {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = sample_training_point(&mut rng, hops);
    p.seed = rng.gen();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            n_scenarios: 6,
            fg_flows: 40,
            bg_flows: 120,
            epochs: 3,
            batch_size: 3,
            lr: 1e-3,
            seed: 2,
            model: ModelConfig {
                feat_dim: FEAT_DIM,
                spec_dim: SPEC_DIM,
                out_dim: OUT_DIM,
                embed: 16,
                heads: 2,
                layers: 1,
                block: 16,
                ff_hidden: 16,
                mlp_hidden: 32,
            },
            use_context: true,
        }
    }

    #[test]
    fn dataset_examples_are_consistent() {
        let cfg = tiny_cfg();
        let ds = build_dataset(&cfg);
        assert_eq!(ds.len(), cfg.n_scenarios);
        for ex in &ds {
            assert_eq!(ex.input.fg.len(), FEAT_DIM);
            assert_eq!(ex.target.len(), OUT_DIM);
            assert_eq!(ex.input.spec.len(), SPEC_DIM);
            assert_eq!(ex.input.bg.len(), ex.n_hops + 2);
            assert_eq!(ex.truth_fg.len(), cfg.fg_flows);
            assert_eq!(ex.flowsim_fg.len(), cfg.fg_flows);
            // Ground-truth slowdowns are >= ~1; targets are log-slowdowns
            // (>= 0) or the empty-bucket marker.
            assert!(ex.truth_fg.iter().all(|&(_, s)| s > 0.9));
            assert!(ex
                .target
                .iter()
                .all(|&t| t >= 0.0 || t == crate::features::LOG_EMPTY));
        }
    }

    #[test]
    fn training_reduces_validation_loss() {
        let mut cfg = tiny_cfg();
        cfg.n_scenarios = 9;
        cfg.epochs = 8;
        let ds = build_dataset(&cfg);
        let (_, report) = train(&cfg, &ds);
        let first = report.train_loss.first().copied().unwrap();
        let last = report.train_loss.last().copied().unwrap();
        assert!(
            last < first,
            "training loss should decrease: {first} -> {last}"
        );
        assert_eq!(report.n_val, 1); // 9 examples, 10% val split, min 1
    }

    #[test]
    fn dataset_is_deterministic() {
        let cfg = tiny_cfg();
        let a = build_dataset(&cfg);
        let b = build_dataset(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.input.fg, y.input.fg);
            assert_eq!(x.target, y.target);
        }
    }

    #[test]
    fn training_metrics_are_recorded() {
        let cfg = tiny_cfg();
        let ds = build_dataset(&cfg);
        let reg = m3_telemetry::MetricsRegistry::new();
        let (_, report) = try_train_with_metrics(&cfg, &ds, &reg).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("train.epochs"), Some(cfg.epochs as u64));
        assert_eq!(
            snap.counter("train.samples"),
            Some((report.n_train * cfg.epochs) as u64)
        );
        let last_loss = report.train_loss.last().copied().unwrap();
        assert_eq!(snap.gauge("train.epoch_loss"), Some(last_loss));
        assert_eq!(
            snap.gauge("train.val_loss"),
            report.val_loss.last().copied()
        );
        assert!(snap.gauge("train.grad_norm").unwrap() > 0.0);
        assert!(snap.timer_seconds("train.epoch_seconds").unwrap() > 0.0);
        // Throughput is wall-clock derived: present, but excluded from the
        // deterministic view.
        assert!(snap.gauge("train.samples_per_sec").is_some());
        let det = snap.deterministic_view();
        assert!(det.gauge("train.samples_per_sec").is_none());
        assert!(det.gauge("train.epoch_loss").is_some());
    }

    #[test]
    fn stage_seed_distinct() {
        assert_ne!(stage_seed(1, "a"), stage_seed(1, "b"));
        assert_ne!(stage_seed(1, "a"), stage_seed(2, "a"));
        assert_eq!(stage_seed(1, "a"), stage_seed(1, "a"));
    }
}
