//! Cross-run scenario cache: content fingerprints for path scenarios and
//! an in-memory LRU keyed by (scenario fingerprint, model fingerprint).
//!
//! A prediction for one sampled path depends on exactly three things: the
//! materialized [`PathScenarioData`] (which determines the flowSim result
//! and therefore the feature maps), the spec vector (which folds in the
//! candidate [`SimConfig`](m3_netsim::config::SimConfig)), and the model
//! parameters. [`scenario_fingerprint`] hashes the first two plus the
//! context-ablation flag; the model contributes its own
//! [`fingerprint`](m3_nn::prelude::M3Net::fingerprint). Matching keys
//! therefore imply bit-identical predictions, so repeated `estimate` calls
//! — the counterfactual-query loop and the fig-sweep binaries — skip both
//! flowSim and the network for scenarios they have already answered.

use crate::aggregate::PathDistribution;
use crate::pathsim::PathScenarioData;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// FNV-1a 64-bit: tiny, dependency-free, stable across platforms and runs
/// (unlike `DefaultHasher`, which is randomly keyed per process). Also used
/// by [`crate::faultinject`] for deterministic per-slot fault decisions.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    pub(crate) fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    pub(crate) fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }
    pub(crate) fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Content hash of everything one path prediction depends on besides the
/// model parameters: link bandwidths/delays, every flow's behavior-relevant
/// fields (sizes, arrivals, hop spans, NIC caps, latencies, ideal FCTs),
/// the foreground base RTT and bottleneck, the encoded spec vector, and
/// the context-ablation flag. Flow `global_idx` is deliberately excluded —
/// it does not enter flowSim or the feature maps, so scenarios that differ
/// only in workload indices dedupe to one forward pass.
pub fn scenario_fingerprint(data: &PathScenarioData, spec: &[f32], use_context: bool) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(data.link_bw.len() as u64);
    for &bw in &data.link_bw {
        h.write_u64(bw);
    }
    for &d in &data.link_delay {
        h.write_u64(d);
    }
    let write_flows = |h: &mut Fnv, flows: &[crate::pathsim::PathFlow]| {
        h.write_u64(flows.len() as u64);
        for f in flows {
            h.write_u64(f.size);
            h.write_u64(f.arrival);
            h.write_u64(f.first_hop as u64);
            h.write_u64(f.last_hop as u64);
            h.write_u64(f.nic_cap);
            h.write_u64(f.latency);
            h.write_u64(f.ideal_fct);
        }
    };
    write_flows(&mut h, &data.fg);
    write_flows(&mut h, &data.bg);
    h.write_u64(data.fg_base_rtt);
    h.write_u64(data.fg_bottleneck);
    h.write_u64(spec.len() as u64);
    for &v in spec {
        h.write_u32(v.to_bits());
    }
    h.write_u8(use_context as u8);
    h.finish()
}

struct Entry {
    dist: PathDistribution,
    last_used: u64,
}

/// In-memory LRU cache of per-path predictions keyed by
/// (scenario fingerprint, model fingerprint).
///
/// Recency is tracked with a monotonic tick; eviction scans for the
/// smallest tick, which is O(len) but runs only on insertion into a full
/// cache — negligible next to the flowSim run a miss implies. Ticks are
/// unique, so eviction order is deterministic.
pub struct ScenarioCache {
    capacity: usize,
    tick: u64,
    map: HashMap<(u64, u64), Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time counters of a [`ScenarioCache`], for health/stats
/// snapshots. Counters are cumulative over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Entries currently resident.
    pub len: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed to make room (LRU) or after failing integrity
    /// checks.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            return 0.0;
        }
        self.hits as f64 / (self.hits + self.misses) as f64
    }
}

impl ScenarioCache {
    /// A cache holding at most `capacity` path distributions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ScenarioCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a prediction, marking it most-recently-used on hit.
    pub fn get(&mut self, scenario: u64, model: u64) -> Option<PathDistribution> {
        self.tick += 1;
        match self.map.get_mut(&(scenario, model)) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(e.dist.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a prediction, evicting the least-recently-used entry if full.
    pub fn insert(&mut self, scenario: u64, model: u64, dist: PathDistribution) {
        self.tick += 1;
        let key = (scenario, model);
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        let tick = self.tick;
        self.map
            .entry(key)
            .and_modify(|e| {
                e.dist = dist.clone();
                e.last_used = tick;
            })
            .or_insert(Entry {
                dist,
                last_used: tick,
            });
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted so far (LRU pressure plus integrity removals).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Counter snapshot for health/stats reporting.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            len: self.map.len(),
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Fraction of lookups answered from the cache (NaN before any lookup).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses) as f64
    }

    /// Evict a specific entry, e.g. one that failed an integrity check.
    /// Returns true if the entry was present.
    pub fn remove(&mut self, scenario: u64, model: u64) -> bool {
        let removed = self.map.remove(&(scenario, model)).is_some();
        if removed {
            self.evictions += 1;
        }
        removed
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// A cloneable, thread-safe handle to a [`ScenarioCache`], for sharing one
/// cache across the workers of an estimation service (and across service
/// restarts within a process: clone the handle, hand it to the next
/// incarnation, and its warm entries survive).
///
/// The lock is held only for the cache probe and insert phases of an
/// estimate, never across flowSim or the forward pass, so concurrent jobs
/// serialize only on the (cheap) map operations. A panic while the lock is
/// held cannot poison correctness — the cache is a performance layer whose
/// entries are integrity-checked on every hit — so lock poisoning is
/// deliberately ignored.
#[derive(Clone)]
pub struct SharedScenarioCache {
    inner: Arc<Mutex<ScenarioCache>>,
}

impl SharedScenarioCache {
    /// A fresh shared cache holding at most `capacity` path distributions.
    pub fn new(capacity: usize) -> Self {
        SharedScenarioCache {
            inner: Arc::new(Mutex::new(ScenarioCache::new(capacity))),
        }
    }

    /// Wrap an existing cache (keeps its entries and counters).
    pub fn from_cache(cache: ScenarioCache) -> Self {
        SharedScenarioCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// Lock the underlying cache. Recovers from poisoning (see type docs).
    pub fn lock(&self) -> MutexGuard<'_, ScenarioCache> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Counter snapshot without holding the lock beyond the read.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::NUM_OUTPUT_BUCKETS;

    fn dist(tag: f64) -> PathDistribution {
        PathDistribution {
            buckets: vec![vec![tag]; NUM_OUTPUT_BUCKETS],
            counts: [1; NUM_OUTPUT_BUCKETS],
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = ScenarioCache::new(8);
        assert!(c.get(1, 1).is_none());
        c.insert(1, 1, dist(2.0));
        let d = c.get(1, 1).expect("hit");
        assert_eq!(d.buckets[0], vec![2.0]);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn model_fingerprint_partitions_keys() {
        let mut c = ScenarioCache::new(8);
        c.insert(7, 100, dist(1.0));
        assert!(c.get(7, 200).is_none(), "other model must miss");
        assert!(c.get(7, 100).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ScenarioCache::new(2);
        c.insert(1, 0, dist(1.0));
        c.insert(2, 0, dist(2.0));
        c.get(1, 0); // refresh 1 -> victim is 2
        c.insert(3, 0, dist(3.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(2, 0).is_none(), "entry 2 was LRU");
        assert!(c.get(1, 0).is_some());
        assert!(c.get(3, 0).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = ScenarioCache::new(2);
        c.insert(1, 0, dist(1.0));
        c.insert(1, 0, dist(9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, 0).unwrap().buckets[0], vec![9.0]);
    }

    #[test]
    fn remove_evicts_only_the_named_entry() {
        let mut c = ScenarioCache::new(8);
        c.insert(1, 0, dist(1.0));
        c.insert(2, 0, dist(2.0));
        assert!(c.remove(1, 0));
        assert!(!c.remove(1, 0), "second removal is a no-op");
        assert!(c.get(1, 0).is_none());
        assert!(c.get(2, 0).is_some(), "other entries untouched");
    }

    #[test]
    fn poisoned_entry_fails_sanity_and_can_be_evicted() {
        // A corrupt distribution (NaN percentile) must be detectable via
        // is_sane() so the estimator can evict and recompute it.
        let mut c = ScenarioCache::new(8);
        let mut bad = dist(1.0);
        bad.buckets[0][0] = f64::NAN;
        assert!(!bad.is_sane());
        c.insert(5, 9, bad);
        let fetched = c.get(5, 9).expect("poisoned entry is stored verbatim");
        assert!(!fetched.is_sane());
        assert!(c.remove(5, 9));
        assert!(c.get(5, 9).is_none(), "evicted, forcing recomputation");

        // Inconsistent count/bucket pairing is also insane.
        let mut skew = dist(1.0);
        skew.counts[0] = 0; // bucket 0 still has a sample
        assert!(!skew.is_sane());
        // A legitimate distribution is sane.
        assert!(dist(3.0).is_sane());
    }

    #[test]
    fn eviction_counters_track_lru_and_integrity_removals() {
        let mut c = ScenarioCache::new(2);
        c.insert(1, 0, dist(1.0));
        c.insert(2, 0, dist(2.0));
        assert_eq!(c.evictions(), 0);
        c.insert(3, 0, dist(3.0)); // LRU eviction
        assert_eq!(c.evictions(), 1);
        assert!(c.remove(3, 0)); // integrity-style removal
        assert_eq!(c.evictions(), 2);
        assert!(!c.remove(3, 0), "absent entry is not an eviction");
        assert_eq!(c.evictions(), 2);
        let s = c.stats();
        assert_eq!((s.len, s.evictions), (1, 2));
    }

    #[test]
    fn shared_cache_is_safe_and_consistent_across_threads() {
        let shared = SharedScenarioCache::new(1024);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let key = t * 1000 + i;
                    h.lock().insert(key, 0, dist(key as f64));
                    let got = h.lock().get(key, 0).expect("own insert visible");
                    assert_eq!(got.buckets[0], vec![key as f64]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = shared.stats();
        assert_eq!(s.len, 800);
        assert_eq!(s.hits, 800);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_sensitive_to_content() {
        use crate::pathsim::{PathFlow, PathScenarioData};
        let flow = PathFlow {
            global_idx: 0,
            size: 1000,
            arrival: 5,
            first_hop: 0,
            last_hop: 1,
            nic_cap: 10_000_000_000,
            latency: 2000,
            ideal_fct: 3000,
        };
        let base = PathScenarioData {
            link_bw: vec![10_000_000_000; 2],
            link_delay: vec![1000; 2],
            fg: vec![flow.clone()],
            bg: vec![],
            fg_base_rtt: 8000,
            fg_bottleneck: 10_000_000_000,
        };
        let spec = vec![0.5f32; 4];
        let a = scenario_fingerprint(&base, &spec, true);
        assert_eq!(a, scenario_fingerprint(&base, &spec, true), "stable");
        assert_ne!(a, scenario_fingerprint(&base, &spec, false), "ablation");
        assert_ne!(
            a,
            scenario_fingerprint(&base, &[0.6f32, 0.5, 0.5, 0.5], true),
            "spec (config) change"
        );
        let mut bigger = base.clone();
        bigger.fg[0].size = 2000;
        assert_ne!(a, scenario_fingerprint(&bigger, &spec, true), "flow size");
        // global_idx is excluded on purpose: same content, different
        // workload index, same key.
        let mut renumbered = base.clone();
        renumbered.fg[0].global_idx = 42;
        assert_eq!(a, scenario_fingerprint(&renumbered, &spec, true));
        // fg/bg boundary matters even with identical flat flow lists.
        let mut moved = base.clone();
        moved.bg = std::mem::take(&mut moved.fg);
        assert_ne!(a, scenario_fingerprint(&moved, &spec, true));
    }
}
