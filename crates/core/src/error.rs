//! Typed error taxonomy for the estimation pipeline.
//!
//! Every way an estimate can fail is classified by the *stage* where it
//! happened and the *kind* of fault, so callers can distinguish "your input
//! is malformed" from "a resource ceiling tripped" from "a compute stage
//! misbehaved" without parsing strings. The same (stage, fault) pairs label
//! entries in [`crate::aggregate::DegradationReport`] when the estimator is
//! configured to degrade instead of failing.

use m3_netsim::prelude::{FlowSpec, SimConfig, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Pipeline stage where a fault originated (Fig. 4 stages plus the
/// surrounding plumbing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Input validation before any work is done.
    Validate,
    /// Path decomposition and weighted sampling.
    Decompose,
    /// Per-path flowSim (max-min fluid) simulation.
    FlowSim,
    /// Feature-map construction.
    Features,
    /// Transformer+MLP forward pass.
    Forward,
    /// Aggregation of path distributions.
    Aggregate,
    /// Scenario-cache bookkeeping.
    Cache,
    /// Model checkpoint I/O.
    Checkpoint,
    /// Supervised worker execution outside any pipeline stage (the worker
    /// thread itself crashed; the faulting stage is unknown).
    Worker,
}

impl Stage {
    pub fn name(self) -> &'static str {
        match self {
            Stage::Validate => "validate",
            Stage::Decompose => "decompose",
            Stage::FlowSim => "flowsim",
            Stage::Features => "features",
            Stage::Forward => "forward",
            Stage::Aggregate => "aggregate",
            Stage::Cache => "cache",
            Stage::Checkpoint => "checkpoint",
            Stage::Worker => "worker",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What went wrong, independent of where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A precondition on the stage's input did not hold.
    InvalidInput,
    /// A computation produced NaN/infinity where a finite value is required.
    NonFinite,
    /// An event-count or wall-clock ceiling tripped.
    BudgetExceeded,
    /// The stage panicked and was isolated.
    Panic,
    /// Stored state (cache entry, checkpoint) failed integrity checks.
    Corruption,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::InvalidInput => "invalid-input",
            FaultKind::NonFinite => "non-finite",
            FaultKind::BudgetExceeded => "budget-exceeded",
            FaultKind::Panic => "panic",
            FaultKind::Corruption => "corruption",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a fault is worth retrying.
///
/// *Transient* faults depend on circumstances that can change between
/// attempts (resource ceilings, panics whose trigger may not recur);
/// *persistent* faults are properties of the input or stored state and will
/// reproduce on every attempt, so retrying them only wastes capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    Transient,
    Persistent,
}

impl FaultKind {
    /// Retry classification of this fault kind. Budget trips and panics are
    /// transient; malformed input, non-finite math, and corrupt stored
    /// state are persistent (deterministically reproducible).
    pub fn class(self) -> FaultClass {
        match self {
            FaultKind::BudgetExceeded | FaultKind::Panic => FaultClass::Transient,
            FaultKind::InvalidInput | FaultKind::NonFinite | FaultKind::Corruption => {
                FaultClass::Persistent
            }
        }
    }
}

/// Top-level error type for the estimation pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum M3Error {
    /// An input (config, workload, model) failed validation.
    InvalidSpec { stage: Stage, reason: String },
    /// A pipeline stage faulted and the policy was to fail fast.
    StageFault {
        stage: Stage,
        fault: FaultKind,
        detail: String,
    },
    /// Under a `Degrade` policy, more samples faulted than the policy allows.
    DegradationLimitExceeded {
        degraded: usize,
        total: usize,
        max_frac: f64,
    },
    /// Every sampled path faulted; there is nothing to aggregate.
    NoUsableSamples { total: usize },
    /// A caller-imposed deadline expired before the work finished.
    DeadlineExceeded { deadline_ms: u64, elapsed_ms: u64 },
}

impl M3Error {
    /// Is this error worth retrying? Stage faults inherit their
    /// [`FaultKind::class`]; widespread-degradation errors are transient
    /// (the underlying per-sample faults may clear on a retry); malformed
    /// specs and expired deadlines are persistent.
    pub fn is_transient(&self) -> bool {
        match self {
            M3Error::StageFault { fault, .. } => fault.class() == FaultClass::Transient,
            M3Error::DegradationLimitExceeded { .. } | M3Error::NoUsableSamples { .. } => true,
            M3Error::InvalidSpec { .. } | M3Error::DeadlineExceeded { .. } => false,
        }
    }
}

impl fmt::Display for M3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            M3Error::InvalidSpec { stage, reason } => {
                write!(f, "invalid spec at {stage}: {reason}")
            }
            M3Error::StageFault {
                stage,
                fault,
                detail,
            } => write!(f, "{fault} fault in {stage} stage: {detail}"),
            M3Error::DegradationLimitExceeded {
                degraded,
                total,
                max_frac,
            } => write!(
                f,
                "{degraded}/{total} samples degraded, exceeding the allowed fraction {max_frac}"
            ),
            M3Error::NoUsableSamples { total } => {
                write!(f, "all {total} path samples faulted; no usable samples")
            }
            M3Error::DeadlineExceeded {
                deadline_ms,
                elapsed_ms,
            } => write!(
                f,
                "deadline of {deadline_ms} ms exceeded ({elapsed_ms} ms elapsed)"
            ),
        }
    }
}

impl std::error::Error for M3Error {}

/// Validation of user-supplied specifications before the pipeline runs.
///
/// Implementations must be total (never panic) and cheap relative to the
/// work the spec gates.
pub trait SpecValidation {
    fn validate_spec(&self) -> Result<(), M3Error>;
}

fn invalid(reason: impl Into<String>) -> M3Error {
    M3Error::InvalidSpec {
        stage: Stage::Validate,
        reason: reason.into(),
    }
}

impl SpecValidation for SimConfig {
    fn validate_spec(&self) -> Result<(), M3Error> {
        if self.mtu == 0 {
            return Err(invalid("mtu must be positive"));
        }
        if self.ack_size == 0 {
            return Err(invalid("ack_size must be positive"));
        }
        if self.init_window < self.mtu {
            return Err(invalid(format!(
                "init_window ({}) must be at least one MTU ({})",
                self.init_window, self.mtu
            )));
        }
        if self.buffer_size < self.mtu {
            return Err(invalid(format!(
                "buffer_size ({}) must hold at least one MTU ({})",
                self.buffer_size, self.mtu
            )));
        }
        if self.pfc_enabled {
            if self.pfc_threshold == 0 {
                return Err(invalid("pfc_threshold must be positive when PFC is on"));
            }
            if self.pfc_resume_gap > self.pfc_threshold {
                return Err(invalid(format!(
                    "pfc_resume_gap ({}) must not exceed pfc_threshold ({})",
                    self.pfc_resume_gap, self.pfc_threshold
                )));
            }
        }
        if self.rto == 0 {
            return Err(invalid("rto must be positive"));
        }
        let p = &self.params;
        if !(p.hpcc_eta > 0.0 && p.hpcc_eta <= 1.0) {
            return Err(invalid(format!(
                "hpcc_eta ({}) must be in (0, 1]",
                p.hpcc_eta
            )));
        }
        if p.hpcc_rate_ai == 0 {
            return Err(invalid("hpcc_rate_ai must be positive"));
        }
        if p.dcqcn_k_min >= p.dcqcn_k_max {
            return Err(invalid(format!(
                "dcqcn_k_min ({}) must be below dcqcn_k_max ({})",
                p.dcqcn_k_min, p.dcqcn_k_max
            )));
        }
        if p.timely_t_low >= p.timely_t_high {
            return Err(invalid(format!(
                "timely_t_low ({}) must be below timely_t_high ({})",
                p.timely_t_low, p.timely_t_high
            )));
        }
        if p.dctcp_k == 0 {
            return Err(invalid("dctcp_k must be positive"));
        }
        Ok(())
    }
}

/// Validate a workload against its topology: every flow must reference
/// existing nodes and carry a non-empty path of links that exist.
pub fn validate_workload(topo: &Topology, flows: &[FlowSpec]) -> Result<(), M3Error> {
    if flows.is_empty() {
        return Err(invalid("workload has no flows"));
    }
    let num_nodes = topo.node_count();
    let num_links = topo.link_count();
    for f in flows {
        if f.src.index() >= num_nodes || f.dst.index() >= num_nodes {
            return Err(invalid(format!(
                "flow {}: endpoint out of range (src {}, dst {}, {} nodes)",
                f.id,
                f.src.index(),
                f.dst.index(),
                num_nodes
            )));
        }
        if f.src == f.dst {
            return Err(invalid(format!(
                "flow {}: src equals dst ({})",
                f.id,
                f.src.index()
            )));
        }
        if f.path.is_empty() {
            return Err(invalid(format!("flow {}: empty path", f.id)));
        }
        if let Some(&l) = f.path.iter().find(|&&l| l.index() >= num_links) {
            return Err(invalid(format!(
                "flow {}: path references link {} but topology has {}",
                f.id,
                l.index(),
                num_links
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_netsim::prelude::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SimConfig::default().validate_spec().is_ok());
    }

    #[test]
    fn bad_configs_are_rejected_with_reasons() {
        let c = SimConfig {
            mtu: 0,
            ..SimConfig::default()
        };
        assert!(matches!(
            c.validate_spec(),
            Err(M3Error::InvalidSpec {
                stage: Stage::Validate,
                ..
            })
        ));

        let mut c = SimConfig::default();
        c.buffer_size = c.mtu - 1;
        let err = c.validate_spec().unwrap_err();
        assert!(err.to_string().contains("buffer_size"), "{err}");

        let mut c = SimConfig::default();
        c.pfc_enabled = true;
        c.pfc_resume_gap = c.pfc_threshold + 1;
        assert!(c.validate_spec().is_err());

        let mut c = SimConfig::default();
        c.params.hpcc_eta = f64::NAN;
        assert!(c.validate_spec().is_err());

        let mut c = SimConfig::default();
        c.params.dcqcn_k_min = c.params.dcqcn_k_max;
        assert!(c.validate_spec().is_err());
    }

    #[test]
    fn workload_validation_catches_malformed_flows() {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let s = topo.add_switch();
        let b = topo.add_host();
        let l1 = topo.add_link(a, s, GBPS, USEC);
        let l2 = topo.add_link(s, b, GBPS, USEC);

        assert!(validate_workload(&topo, &[]).is_err());

        let good = FlowSpec {
            id: 0,
            src: a,
            dst: b,
            size: 1000,
            arrival: 0,
            path: vec![l1, l2],
        };
        assert!(validate_workload(&topo, std::slice::from_ref(&good)).is_ok());

        let mut bad = good.clone();
        bad.src = NodeId(99);
        assert!(validate_workload(&topo, &[bad]).is_err());

        let mut bad = good.clone();
        bad.path = vec![];
        assert!(validate_workload(&topo, &[bad]).is_err());

        let mut bad = good.clone();
        bad.path = vec![LinkId(42)];
        assert!(validate_workload(&topo, &[bad]).is_err());

        let mut bad = good;
        bad.dst = bad.src;
        assert!(validate_workload(&topo, &[bad]).is_err());
    }

    #[test]
    fn fault_classes_partition_retryability() {
        use FaultClass::*;
        assert_eq!(FaultKind::BudgetExceeded.class(), Transient);
        assert_eq!(FaultKind::Panic.class(), Transient);
        assert_eq!(FaultKind::InvalidInput.class(), Persistent);
        assert_eq!(FaultKind::NonFinite.class(), Persistent);
        assert_eq!(FaultKind::Corruption.class(), Persistent);

        let transient = M3Error::StageFault {
            stage: Stage::FlowSim,
            fault: FaultKind::BudgetExceeded,
            detail: String::new(),
        };
        assert!(transient.is_transient());
        let persistent = M3Error::StageFault {
            stage: Stage::FlowSim,
            fault: FaultKind::InvalidInput,
            detail: String::new(),
        };
        assert!(!persistent.is_transient());
        assert!(!M3Error::InvalidSpec {
            stage: Stage::Validate,
            reason: String::new()
        }
        .is_transient());
        assert!(M3Error::NoUsableSamples { total: 3 }.is_transient());
        let deadline = M3Error::DeadlineExceeded {
            deadline_ms: 10,
            elapsed_ms: 25,
        };
        assert!(!deadline.is_transient());
        assert!(deadline.to_string().contains("10 ms"), "{deadline}");
    }

    #[test]
    fn errors_render_informatively() {
        let e = M3Error::StageFault {
            stage: Stage::FlowSim,
            fault: FaultKind::BudgetExceeded,
            detail: "event budget 3 exceeded".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("flowsim") && s.contains("budget-exceeded"),
            "{s}"
        );

        let e = M3Error::DegradationLimitExceeded {
            degraded: 3,
            total: 4,
            max_frac: 0.25,
        };
        assert!(e.to_string().contains("3/4"), "{e}");
    }
}
