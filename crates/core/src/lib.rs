//! # m3-core
//!
//! The m3 system (SIGCOMM 2024): fast, accurate flow-level performance
//! estimation for data center networks.
//!
//! Pipeline (Fig. 4): given a workload and topology, m3
//! 1. decomposes the network into *paths* and weight-samples k of them
//!    ([`decompose`]),
//! 2. runs the max-min fluid simulator flowSim per path and summarizes the
//!    slowdowns into 10x100 percentile feature maps ([`pathsim`],
//!    [`features`]),
//! 3. corrects the foreground estimate with a transformer+MLP conditioned
//!    on per-hop background context and the network configuration
//!    ([`spec`], [`pipeline::M3Estimator`]), and
//! 4. aggregates the k path distributions into network-wide slowdown
//!    statistics ([`aggregate`]).
//!
//! Training on synthetic parking-lot scenarios lives in [`trainer`].
//!
//! ```no_run
//! use m3_core::prelude::*;
//! use m3_netsim::prelude::*;
//! use m3_workload::prelude::*;
//!
//! // Train a small model on synthetic path scenarios (Table 2)...
//! let cfg = TrainConfig::default();
//! let dataset = build_dataset(&cfg);
//! let (net, _report) = train(&cfg, &dataset);
//!
//! // ...then estimate a full-network workload.
//! let ft = FatTree::build(FatTreeSpec::small(2));
//! let routing = Routing::new(&ft.topo);
//! let w = generate(&ft, &routing, &Scenario {
//!     n_flows: 10_000, matrix_name: "B".into(),
//!     sizes: SizeDistribution::web_server(),
//!     sigma: 1.0, max_load: 0.5, seed: 1,
//! });
//! let est = M3Estimator::new(net);
//! let result = est.estimate(&ft.topo, &w.flows, &SimConfig::default(), 100, 7);
//! println!("network-wide p99 slowdown: {:.2}", result.p99());
//! ```

// Robustness policy: non-test library code must not unwrap/expect — errors
// either propagate as typed Results or use an explicitly justified panic.
// scripts/check.sh runs clippy with -D warnings, making these hard errors.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod aggregate;
pub mod cache;
pub mod decompose;
pub mod error;
pub mod faultinject;
pub mod features;
pub mod metrics;
pub mod optimizer;
pub mod pathsim;
pub mod pipeline;
pub mod spec;
pub mod trainer;

pub mod prelude {
    pub use crate::aggregate::{
        DegradationEvent, DegradationReport, NetworkEstimate, PathDistribution, StageTimings,
        NUM_OUTPUT_BUCKETS,
    };
    pub use crate::cache::{scenario_fingerprint, CacheStats, ScenarioCache, SharedScenarioCache};
    pub use crate::decompose::{flow_ports, PathGroup, PathIndex};
    pub use crate::error::{
        validate_workload, FaultClass, FaultKind, M3Error, SpecValidation, Stage,
    };
    pub use crate::faultinject::{FaultPlan, InjectedFault};
    pub use crate::features::{
        feature_bucket, output_bucket, FeatureMap, FEAT_DIM, OUTPUT_BUCKETS, OUT_DIM, SIZE_BUCKETS,
    };
    pub use crate::metrics::{names as metric_names, PipelineMetrics};
    pub use crate::optimizer::{
        bucket_p99_objective, golden_section_search, sweep_knob, Knob, PreparedWorkload,
        SweepPoint, SweepResult,
    };
    pub use crate::pathsim::{FlowsimResult, PathFlow, PathScenarioData};
    pub use crate::pipeline::{
        flowsim_estimate, flowsim_estimate_sliced, global_flowsim_estimate, ground_truth_estimate,
        ns3_path_estimate, DegradationPolicy, EstimateOptions, M3Estimator, PathSlice, StageBudget,
    };
    pub use crate::spec::{path_base_rtt, spec_vector, SPEC_DIM};
    pub use crate::trainer::{
        build_dataset, evaluate, make_example, scenario_features, stage_seed, train,
        training_point_with_hops, training_points, try_train, try_train_with_metrics, TrainConfig,
        TrainExample, TrainReport,
    };
}
