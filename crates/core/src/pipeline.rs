//! End-to-end estimators over a full-network workload:
//!
//! * [`M3Estimator`] — the complete m3 pipeline: decompose, sample k paths,
//!   flowSim features, ML correction, aggregate (Fig. 4).
//! * [`flowsim_estimate`] — the no-ML ablation: flowSim's foreground
//!   slowdowns aggregated directly.
//! * [`ns3_path_estimate`] — per-path *packet-level* simulation (the paper's
//!   "ns-3-path" upper bound, §2.1).
//! * [`ground_truth_estimate`] — the exact network-wide distribution from a
//!   full packet-level simulation.

use crate::aggregate::{
    DegradationEvent, DegradationReport, NetworkEstimate, PathDistribution, StageTimings,
    NUM_OUTPUT_BUCKETS,
};
use crate::cache::{scenario_fingerprint, ScenarioCache, SharedScenarioCache};
use crate::decompose::PathIndex;
use crate::error::{validate_workload, FaultKind, M3Error, SpecValidation, Stage};
use crate::faultinject::InjectedFault;
use crate::features::output_bucket;
use crate::metrics::PipelineMetrics;
use crate::pathsim::{FlowsimResult, PathScenarioData};
use crate::spec::spec_vector;
use m3_flowsim::prelude::{
    try_simulate_fluid_traced, FluidBudget, FluidError, FluidProbe, FluidProbeSink, FluidRunStats,
    FluidWorkspace,
};
use m3_flowsim::types::FluidFctRecord;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use m3_telemetry::trace::{TraceCtx, TraceSpan};
use m3_telemetry::MetricsRegistry;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Output-bucket counts of a foreground flow set.
fn fg_counts(data: &PathScenarioData) -> [usize; NUM_OUTPUT_BUCKETS] {
    let mut counts = [0usize; NUM_OUTPUT_BUCKETS];
    for f in &data.fg {
        counts[output_bucket(f.size)] += 1;
    }
    counts
}

/// What the estimator does when a pipeline stage faults on a path sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DegradationPolicy {
    /// The first fault aborts the whole estimate with a typed [`M3Error`].
    FailFast,
    /// Absorb per-sample faults: a forward-stage fault falls back to the
    /// sample's uncorrected flowSim distribution, a flowSim-stage fault
    /// drops the sample (there is nothing to fall back on). Every fallback
    /// is recorded in the estimate's [`DegradationReport`]. If more than
    /// `max_degraded_frac` of the samples lose the full m3 treatment, the
    /// estimate aborts with [`M3Error::DegradationLimitExceeded`].
    Degrade { max_degraded_frac: f64 },
}

impl Default for DegradationPolicy {
    /// Absorb isolated faults, but refuse to answer when more than a
    /// quarter of the samples degraded.
    fn default() -> Self {
        DegradationPolicy::Degrade {
            max_degraded_frac: 0.25,
        }
    }
}

/// A contiguous slice `[start, end)` of the k sampled paths to process —
/// the unit of scatter when a cluster coordinator splits one large
/// scenario's independent path sub-work across shards. Path sampling is a
/// pure function of `(workload, k_paths, seed)` and each path's
/// distribution is independent of which other paths share the batch
/// (batched forward is bit-exact versus per-sample), so concatenating the
/// per-slice aggregates and re-sorting reproduces the unsliced estimate
/// bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSlice {
    /// First sampled-path index (inclusive).
    pub start: usize,
    /// Last sampled-path index (exclusive). Clamped to the number of
    /// sampled paths, so a chunking caller need not know the exact count.
    pub end: usize,
}

impl PathSlice {
    /// Split `total` paths into contiguous chunks of at most `chunk`.
    pub fn chunks(total: usize, chunk: usize) -> Vec<PathSlice> {
        if chunk == 0 || total == 0 {
            return vec![PathSlice {
                start: 0,
                end: total,
            }];
        }
        (0..total)
            .step_by(chunk)
            .map(|start| PathSlice {
                start,
                end: (start + chunk).min(total),
            })
            .collect()
    }
}

/// Per-stage resource ceilings for one estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageBudget {
    /// Budget for each per-path flowSim run. The default (100 M events, no
    /// wall-clock limit) is orders of magnitude above any real path
    /// scenario, so fault-free runs never trip it.
    pub flowsim: FluidBudget,
}

/// Knobs of the fallible estimate entry points. `Default` reproduces the
/// classic pipeline bit for bit on fault-free inputs.
#[derive(Debug, Clone, Default)]
pub struct EstimateOptions {
    pub policy: DegradationPolicy,
    pub budget: StageBudget,
    /// Deterministic fault injection for robustness tests and benches;
    /// `None` (the default) injects nothing and adds no overhead.
    pub fault_plan: Option<crate::faultinject::FaultPlan>,
    /// Process only this contiguous slice of the k sampled paths. `None`
    /// (the default) processes all of them. Sampling always covers the
    /// full k so the slice indexes a stable sequence; only
    /// materialization, flowSim, the forward pass, and the aggregate are
    /// restricted to the slice.
    pub path_slice: Option<PathSlice>,
    /// Long-lived telemetry registry to accumulate this call's metrics
    /// into (counters and stage timers under the `pipeline.`/`flowsim.`
    /// prefixes). The pipeline records into a private per-call registry
    /// either way — that is what populates `NetworkEstimate::timings` —
    /// and absorbs the call's snapshot into this one on success, so
    /// concurrent estimates never contend on shared atomics mid-flight.
    /// `None` (or a [`MetricsRegistry::noop`]) adds no observable cost.
    pub metrics: Option<MetricsRegistry>,
    /// Causal-tracing context. When backed by an enabled
    /// [`TraceRecorder`](m3_telemetry::trace::TraceRecorder), the pipeline
    /// records a span tree (root `estimate`, one child per stage, one
    /// per-slot flowSim span) with cache/degradation/fault instants and
    /// per-link flowSim utilization counter tracks sampled over virtual
    /// time at [`TraceCtx::stride_ns`]. The default (noop) context costs
    /// one branch per instrumentation site and never perturbs results.
    pub trace: TraceCtx,
}

/// Forwards fluid-probe samples onto a slot's tracing span as counter
/// tracks: per-hop utilization (`flowsim.util.h{n}`) and the active-flow
/// count (`flowsim.active_flows`).
struct SlotProbeSink<'a> {
    span: &'a TraceSpan,
    util_tracks: Vec<Arc<str>>,
    active_track: Arc<str>,
}

impl SlotProbeSink<'_> {
    fn new(span: &TraceSpan, hops: usize) -> SlotProbeSink<'_> {
        SlotProbeSink {
            span,
            util_tracks: (0..hops)
                .map(|h| Arc::from(format!("flowsim.util.h{h}")))
                .collect(),
            active_track: Arc::from("flowsim.active_flows"),
        }
    }
}

impl FluidProbeSink for SlotProbeSink<'_> {
    fn on_link(&self, vts_ns: u64, link: u16, utilization: f64) {
        if let Some(track) = self.util_tracks.get(link as usize) {
            self.span.counter(track, vts_ns, utilization);
        }
    }

    fn on_active_flows(&self, vts_ns: u64, active: u64) {
        self.span.counter(&self.active_track, vts_ns, active as f64);
    }
}

/// Classify a fluid-simulator error for degradation accounting.
fn fluid_fault_kind(e: &FluidError) -> FaultKind {
    match e {
        FluidError::InvalidInput { .. } => FaultKind::InvalidInput,
        FluidError::NonFiniteEventTime { .. } | FluidError::Stalled { .. } => FaultKind::NonFinite,
        FluidError::EventBudgetExceeded { .. } | FluidError::WallClockExceeded { .. } => {
            FaultKind::BudgetExceeded
        }
    }
}

/// Best-effort string form of a caught panic payload.
fn panic_detail(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// How an estimate call reaches its scenario cache: not at all, through an
/// exclusive borrow, or through a thread-safe shared handle. The shared
/// variant locks only around the probe and insert phases, so concurrent
/// estimates (e.g. service workers) overlap everywhere else.
enum CacheRef<'a> {
    None,
    Excl(&'a mut ScenarioCache),
    Shared(&'a SharedScenarioCache),
}

impl CacheRef<'_> {
    fn present(&self) -> bool {
        !matches!(self, CacheRef::None)
    }

    /// Run `f` against the cache (locking the shared variant for the
    /// duration of `f` only). `None` when no cache is attached.
    fn with<R>(&mut self, f: impl FnOnce(&mut ScenarioCache) -> R) -> Option<R> {
        match self {
            CacheRef::None => None,
            CacheRef::Excl(c) => Some(f(c)),
            CacheRef::Shared(h) => Some(f(&mut h.lock())),
        }
    }
}

/// The m3 estimator: a trained network plus inference options.
pub struct M3Estimator {
    pub net: M3Net,
    /// When false, zero the background context ("m3 w/o context", Fig. 16).
    pub use_context: bool,
    /// Warm fluid-engine workspaces (one per concurrent flowSim slot):
    /// repeated estimates reuse the engine's internal collections instead
    /// of reallocating them per scenario. Lost entries (slot panic while a
    /// workspace is checked out) are replaced lazily by `Default`.
    fluid_scratch: Mutex<Vec<(FluidWorkspace, Vec<FluidFctRecord>)>>,
    /// Warm tensor arenas for the batched forward pass; see
    /// [`m3_nn::arena::ArenaPool`].
    arena_pool: ArenaPool,
}

impl M3Estimator {
    pub fn new(net: M3Net) -> Self {
        M3Estimator {
            net,
            use_context: true,
            fluid_scratch: Mutex::new(Vec::new()),
            arena_pool: ArenaPool::new(),
        }
    }

    /// Predict one already-materialized path scenario.
    pub fn predict_path(&self, data: &PathScenarioData, config: &SimConfig) -> PathDistribution {
        let sim = data.run_flowsim();
        let (fg_map, bg_maps) = data.features(&sim);
        let spec = spec_vector(config, data.fg_base_rtt, data.fg_bottleneck);
        let sample = SampleInput {
            fg: fg_map.encode_log(),
            bg: bg_maps.iter().map(|m| m.encode_log()).collect(),
            spec,
            use_context: self.use_context,
        };
        let out = self.net.predict(&sample);
        let decoded = crate::features::decode_log(&out);
        PathDistribution::from_model_output(&decoded, fg_counts(data))
    }

    /// Full pipeline: decompose the workload, sample `k_paths` paths, run
    /// flowSim on the deduplicated scenarios in parallel, answer them all
    /// with one batched forward pass, aggregate. Panics on any
    /// [`M3Error`]; use [`try_estimate`](Self::try_estimate) to handle
    /// faults as values.
    pub fn estimate(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        config: &SimConfig,
        k_paths: usize,
        seed: u64,
    ) -> NetworkEstimate {
        match self.try_estimate(
            topo,
            flows,
            config,
            k_paths,
            seed,
            &EstimateOptions::default(),
        ) {
            Ok(e) => e,
            Err(e) => panic!("estimate failed: {e}"),
        }
    }

    /// [`estimate`](Self::estimate) backed by a cross-run [`ScenarioCache`]:
    /// scenarios whose (content, spec, model) fingerprints were answered in
    /// an earlier call skip both flowSim and the network. The result is
    /// bit-identical to an uncached run — only `timings` differ.
    pub fn estimate_with_cache(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        config: &SimConfig,
        k_paths: usize,
        seed: u64,
        cache: &mut ScenarioCache,
    ) -> NetworkEstimate {
        match self.try_estimate_with_cache(
            topo,
            flows,
            config,
            k_paths,
            seed,
            cache,
            &EstimateOptions::default(),
        ) {
            Ok(e) => e,
            Err(e) => panic!("estimate failed: {e}"),
        }
    }

    /// Fallible estimate: validates the inputs up front, meters every
    /// flowSim run against `options.budget`, isolates per-sample panics,
    /// and — under a [`DegradationPolicy::Degrade`] policy — absorbs
    /// per-sample faults into the estimate's [`DegradationReport`] instead
    /// of failing. With default options and fault-free inputs the result
    /// is bit-identical to [`estimate`](Self::estimate).
    pub fn try_estimate(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        config: &SimConfig,
        k_paths: usize,
        seed: u64,
        options: &EstimateOptions,
    ) -> Result<NetworkEstimate, M3Error> {
        self.estimate_inner(topo, flows, config, k_paths, seed, CacheRef::None, options)
    }

    /// [`try_estimate`](Self::try_estimate) backed by a [`ScenarioCache`].
    /// Cached entries are integrity-checked before use: a corrupt entry is
    /// evicted and recomputed (recorded in the report, zero samples
    /// affected), never aggregated. Degraded fallback distributions are
    /// never inserted into the cache.
    #[allow(clippy::too_many_arguments)]
    pub fn try_estimate_with_cache(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        config: &SimConfig,
        k_paths: usize,
        seed: u64,
        cache: &mut ScenarioCache,
        options: &EstimateOptions,
    ) -> Result<NetworkEstimate, M3Error> {
        self.estimate_inner(
            topo,
            flows,
            config,
            k_paths,
            seed,
            CacheRef::Excl(cache),
            options,
        )
    }

    /// [`try_estimate_with_cache`](Self::try_estimate_with_cache) against a
    /// thread-safe [`SharedScenarioCache`]: the cache lock is held only for
    /// the probe and insert phases, so concurrent estimates (e.g. the
    /// workers of an estimation service) share warm entries without
    /// serializing their flowSim or forward-pass work. Results are
    /// bit-identical to the exclusive-cache path.
    #[allow(clippy::too_many_arguments)]
    pub fn try_estimate_with_shared_cache(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        config: &SimConfig,
        k_paths: usize,
        seed: u64,
        cache: &SharedScenarioCache,
        options: &EstimateOptions,
    ) -> Result<NetworkEstimate, M3Error> {
        self.estimate_inner(
            topo,
            flows,
            config,
            k_paths,
            seed,
            CacheRef::Shared(cache),
            options,
        )
    }

    /// One slot's flowSim run, with injected faults applied. Runs inside
    /// `catch_unwind`, so a panic here (injected or real) is isolated to
    /// the slot. Successful runs also return their deterministic budget
    /// consumption for telemetry. When a tracing span is attached, the
    /// fluid engine's per-hop utilization is sampled onto it at
    /// `stride_ns` of virtual time.
    fn run_flowsim_slot(
        &self,
        data: &PathScenarioData,
        slot: usize,
        options: &EstimateOptions,
        span: Option<&TraceSpan>,
        stride_ns: u64,
    ) -> Result<(FlowsimResult, FluidRunStats), (FaultKind, String)> {
        let sink = span.map(|sp| SlotProbeSink::new(sp, data.num_hops()));
        let probe = sink.as_ref().map(|s| FluidProbe::new(stride_ns, s));
        let plan = options.fault_plan.as_ref();
        if plan.is_some_and(|p| p.hits(InjectedFault::FlowsimPanic, slot)) {
            panic!("injected flowSim panic at slot {slot}");
        }
        let budget = if plan.is_some_and(|p| p.hits(InjectedFault::FlowsimBudget, slot)) {
            FluidBudget::events(1)
        } else {
            options.budget.flowsim
        };
        let classify = |e: FluidError| (fluid_fault_kind(&e), e.to_string());
        if plan.is_some_and(|p| p.hits(InjectedFault::FlowsimNan, slot)) {
            // Poison one input flow the way a corrupt workload would.
            let (ftopo, mut fflows) = data.to_fluid();
            if let Some(f0) = fflows.first_mut() {
                f0.rate_cap_bps = f64::NAN;
            }
            let (records, stats) =
                try_simulate_fluid_traced(&ftopo, &fflows, &budget, probe.as_ref())
                    .map_err(classify)?;
            return Ok((data.split_records(&records), stats));
        }
        // Check a warm workspace out of the pool (fresh one if the pool is
        // empty or poisoned); a panic mid-run simply loses the checkout.
        let (mut ws, mut raw_records) = match self.fluid_scratch.lock() {
            Ok(mut pool) => pool.pop().unwrap_or_default(),
            Err(_) => Default::default(),
        };
        let result = data
            .try_run_flowsim_traced_into(&budget, probe.as_ref(), &mut ws, &mut raw_records)
            .map_err(classify);
        if let Ok(mut pool) = self.fluid_scratch.lock() {
            pool.push((ws, raw_records));
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn estimate_inner(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        config: &SimConfig,
        k_paths: usize,
        seed: u64,
        mut cache: CacheRef<'_>,
        options: &EstimateOptions,
    ) -> Result<NetworkEstimate, M3Error> {
        // All instrumentation goes through a private per-call registry: it
        // backs the `timings` compatibility view, and its snapshot is
        // absorbed into `options.metrics` (if any) on success. Keeping the
        // hot path on call-local atomics means concurrent estimates never
        // contend on a shared registry.
        let call_metrics = MetricsRegistry::new();
        let m = PipelineMetrics::register(&call_metrics);
        // Causal trace: one root span for the whole call, one child per
        // stage, one per-slot flowSim span. All no-ops when the context is
        // disabled; closed by Drop on every early-return path.
        let troot = options.trace.root("estimate");
        let tracing = troot.is_enabled();
        let stride_ns = options.trace.stride_ns();
        let mut report = DegradationReport::default();
        let fail_fast = matches!(options.policy, DegradationPolicy::FailFast);

        // Stage 0: validate every input before spending any work.
        config.validate_spec()?;
        validate_workload(topo, flows)?;
        if k_paths == 0 {
            return Err(M3Error::InvalidSpec {
                stage: Stage::Validate,
                reason: "k_paths must be at least 1".into(),
            });
        }

        // Stage 1: decompose, sample, materialize scenarios in parallel.
        let span = m.decompose.span();
        let tspan = troot.child("decompose");
        let index = PathIndex::build(topo, flows);
        tspan.finish();
        let tspan = troot.child("sample");
        let sampled = index.sample_paths(k_paths, seed);
        if sampled.is_empty() {
            return Err(M3Error::InvalidSpec {
                stage: Stage::Decompose,
                reason: "workload has no populated paths to sample".into(),
            });
        }
        // Scatter support: restrict to the requested slice of the sampled
        // sequence. The sample itself is always drawn over the full k, so
        // slice indices mean the same thing on every shard.
        let sampled = match options.path_slice {
            None => sampled,
            Some(sl) => {
                if sl.start >= sl.end || sl.start >= sampled.len() {
                    return Err(M3Error::InvalidSpec {
                        stage: Stage::Decompose,
                        reason: format!(
                            "path slice [{}, {}) is empty or out of range (sampled {})",
                            sl.start,
                            sl.end,
                            sampled.len()
                        ),
                    });
                }
                sampled[sl.start..sl.end.min(sampled.len())].to_vec()
            }
        };
        let datas: Vec<PathScenarioData> = sampled
            .par_iter()
            .map(|&g| PathScenarioData::from_group(topo, flows, &index, g, config))
            .collect();
        let specs: Vec<Vec<f32>> = datas
            .iter()
            .map(|d| spec_vector(config, d.fg_base_rtt, d.fg_bottleneck))
            .collect();
        tspan.finish();
        span.finish();
        m.sampled_paths.add(datas.len() as u64);
        report.total_samples = datas.len();

        // Dedupe by content hash: sampling with replacement and symmetric
        // topologies both produce repeated scenarios, which need only one
        // flowSim run and one forward-pass row each. `slot_of[i]` maps
        // sampled path i to its unique-scenario slot (first-occurrence
        // order, so everything downstream stays deterministic).
        let keys: Vec<u64> = datas
            .iter()
            .zip(&specs)
            .map(|(d, s)| scenario_fingerprint(d, s, self.use_context))
            .collect();
        let mut slot_by_key: HashMap<u64, usize> = HashMap::new();
        let mut uniq: Vec<usize> = Vec::new(); // slot -> first index into datas
        let mut slot_of: Vec<usize> = Vec::with_capacity(datas.len());
        for (i, &k) in keys.iter().enumerate() {
            let slot = *slot_by_key.entry(k).or_insert_with(|| {
                uniq.push(i);
                uniq.len() - 1
            });
            slot_of.push(slot);
        }
        m.unique_scenarios.add(uniq.len() as u64);
        // Sampled paths represented by each unique slot (degradation of a
        // slot affects this many of the k samples).
        let mut multiplicity = vec![0usize; uniq.len()];
        for &s in &slot_of {
            multiplicity[s] += 1;
        }

        // Cache probe. The model fingerprint is only computed when a cache
        // is present — it hashes every parameter, which is not free. Hits
        // are integrity-checked: a corrupt entry is evicted and recomputed
        // (exact repair, so it neither counts against the degradation
        // budget nor aborts a fail-fast run).
        let model_fp = cache.present().then(|| self.net.fingerprint());
        let mut resolved: Vec<Option<PathDistribution>> = vec![None; uniq.len()];
        if let Some(fp) = model_fp {
            // One lock (shared variant) spans the whole probe loop: the
            // map lookups are cheap next to the flowSim runs a miss costs.
            let events = &mut report.events;
            cache.with(|c| {
                for (slot, &i) in uniq.iter().enumerate() {
                    match c.get(keys[i], fp) {
                        Some(d) if d.is_sane() => resolved[slot] = Some(d),
                        Some(_) => {
                            c.remove(keys[i], fp);
                            events.push(DegradationEvent {
                                stage: Stage::Cache,
                                fault: FaultKind::Corruption,
                                scenario: slot,
                                samples_affected: 0,
                                detail: "cached distribution failed integrity check; \
                                         evicted and recomputed"
                                    .into(),
                            });
                        }
                        None => {}
                    }
                }
            });
        }
        m.cache_hits
            .add(resolved.iter().filter(|r| r.is_some()).count() as u64);
        let todo: Vec<usize> = (0..uniq.len()).filter(|&s| resolved[s].is_none()).collect();
        if cache.present() {
            m.cache_misses.add(todo.len() as u64);
        }
        if tracing {
            for (slot, r) in resolved.iter().enumerate() {
                if r.is_some() {
                    troot.instant("cache_hit", format!("slot {slot}"));
                }
            }
            for e in report.events.iter() {
                if matches!(e.stage, Stage::Cache) {
                    troot.instant("cache_evict", format!("slot {}: {}", e.scenario, e.detail));
                }
            }
        }

        // Stage 2: flowSim the unresolved unique scenarios in parallel,
        // each isolated (budget + panic barrier). Each slot gets its own
        // trace span on lane `1 + slot` with an explicit child index, so
        // span IDs stay deterministic under rayon scheduling.
        let span = m.flowsim.span();
        let tflow = troot.child("flowsim");
        let sims: Vec<Result<(FlowsimResult, FluidRunStats), (FaultKind, String)>> = todo
            .par_iter()
            .map(|&s| {
                let slot_span =
                    tracing.then(|| tflow.child_on_lane("slot", s as u32, 1 + s as u32));
                catch_unwind(AssertUnwindSafe(|| {
                    self.run_flowsim_slot(
                        &datas[uniq[s]],
                        s,
                        options,
                        slot_span.as_ref(),
                        stride_ns,
                    )
                }))
                .unwrap_or_else(|p| Err((FaultKind::Panic, panic_detail(p))))
            })
            .collect();
        tflow.finish();
        span.finish();
        m.flowsim_runs.add(todo.len() as u64);
        // Budget consumption, summed sequentially over the (deterministic)
        // slot order so the totals are independent of rayon scheduling.
        let mut fluid_stats = FluidRunStats::default();
        for (_, s) in sims.iter().flatten() {
            fluid_stats.add(*s);
        }
        m.flowsim_events.add(fluid_stats.events);
        m.flowsim_wall_checks.add(fluid_stats.wall_checks);

        // Classify flowSim faults. A faulted slot has no distribution to
        // fall back on, so its samples are dropped from the aggregate.
        for (j, r) in sims.iter().enumerate() {
            if let Err((fault, detail)) = r {
                if fail_fast {
                    return Err(M3Error::StageFault {
                        stage: Stage::FlowSim,
                        fault: *fault,
                        detail: detail.clone(),
                    });
                }
                let s = todo[j];
                report.dropped_samples += multiplicity[s];
                if tracing {
                    troot.instant("fault", format!("flowsim slot {s}: {detail}"));
                }
                report.events.push(DegradationEvent {
                    stage: Stage::FlowSim,
                    fault: *fault,
                    scenario: s,
                    samples_affected: multiplicity[s],
                    detail: detail.clone(),
                });
            }
        }

        // Stage 3: feature maps + encoding for the surviving slots.
        let span = m.features.span();
        let tspan = troot.child("features");
        let ok: Vec<usize> = (0..todo.len()).filter(|&j| sims[j].is_ok()).collect();
        let sim_of = |j: usize| -> &FlowsimResult {
            match &sims[j] {
                Ok((s, _)) => s,
                Err(_) => unreachable!("only surviving slots are consulted"),
            }
        };
        let inputs: Vec<SampleInput> = ok
            .par_iter()
            .map(|&j| {
                let i = uniq[todo[j]];
                let (fg_map, bg_maps) = datas[i].features(sim_of(j));
                SampleInput {
                    fg: fg_map.encode_log(),
                    bg: bg_maps.iter().map(|m| m.encode_log()).collect(),
                    spec: specs[i].clone(),
                    use_context: self.use_context,
                }
            })
            .collect();
        tspan.finish();
        span.finish();

        // Stage 4: one batched forward pass over the surviving scenarios,
        // behind a panic barrier. Slots whose forward output is unusable
        // (panic, injected poisoning, non-finite values) fall back to the
        // uncorrected flowSim distribution; only fully-corrected results
        // are cacheable.
        let span = m.forward.span();
        let tspan = troot.child("forward");
        let plan = options.fault_plan.as_ref();
        let mut cacheable: Vec<usize> = Vec::new();
        match catch_unwind(AssertUnwindSafe(|| {
            self.net.predict_batch_pooled(&inputs, &self.arena_pool)
        })) {
            Err(p) => {
                let detail = panic_detail(p);
                if fail_fast {
                    return Err(M3Error::StageFault {
                        stage: Stage::Forward,
                        fault: FaultKind::Panic,
                        detail,
                    });
                }
                for &j in &ok {
                    let s = todo[j];
                    resolved[s] = Some(PathDistribution::from_samples(&sim_of(j).fg));
                    report.degraded_samples += multiplicity[s];
                    if tracing {
                        troot.instant("degraded", format!("forward panic: slot {s}: {detail}"));
                    }
                    report.events.push(DegradationEvent {
                        stage: Stage::Forward,
                        fault: FaultKind::Panic,
                        scenario: s,
                        samples_affected: multiplicity[s],
                        detail: detail.clone(),
                    });
                }
            }
            Ok(outputs) => {
                for (row, out) in outputs.iter().enumerate() {
                    let j = ok[row];
                    let s = todo[j];
                    let poisoned = plan.is_some_and(|p| p.hits(InjectedFault::ForwardPoison, s));
                    if !poisoned && out.iter().all(|v| v.is_finite()) {
                        let decoded = crate::features::decode_log(out);
                        let i = uniq[s];
                        resolved[s] = Some(PathDistribution::from_model_output(
                            &decoded,
                            fg_counts(&datas[i]),
                        ));
                        cacheable.push(s);
                    } else {
                        let detail = if poisoned {
                            format!("injected forward-pass poisoning at slot {s}")
                        } else {
                            "forward pass produced non-finite output".to_string()
                        };
                        if fail_fast {
                            return Err(M3Error::StageFault {
                                stage: Stage::Forward,
                                fault: FaultKind::NonFinite,
                                detail,
                            });
                        }
                        resolved[s] = Some(PathDistribution::from_samples(&sim_of(j).fg));
                        report.degraded_samples += multiplicity[s];
                        if tracing {
                            troot.instant(
                                "degraded",
                                format!("forward fallback: slot {s}: {detail}"),
                            );
                        }
                        report.events.push(DegradationEvent {
                            stage: Stage::Forward,
                            fault: FaultKind::NonFinite,
                            scenario: s,
                            samples_affected: multiplicity[s],
                            detail,
                        });
                    }
                }
            }
        }
        if let Some(fp) = model_fp {
            let evicted = cache
                .with(|c| {
                    let before = c.evictions();
                    for &s in &cacheable {
                        if let Some(dist) = resolved[s].clone() {
                            c.insert(keys[uniq[s]], fp, dist);
                        }
                    }
                    c.evictions() - before
                })
                .unwrap_or(0);
            m.cache_evictions.add(evicted);
        }
        tspan.finish();
        span.finish();

        // Enforce the degradation ceiling before aggregating.
        let affected = report.degraded_samples + report.dropped_samples;
        if let DegradationPolicy::Degrade { max_degraded_frac } = options.policy {
            if affected > 0 && affected as f64 / report.total_samples as f64 > max_degraded_frac {
                return Err(M3Error::DegradationLimitExceeded {
                    degraded: affected,
                    total: report.total_samples,
                    max_frac: max_degraded_frac,
                });
            }
        }

        // Stage 5: fan the unique distributions back out to the sampled
        // paths (duplicates keep their pooling weight; dropped slots are
        // skipped) and aggregate.
        let span = m.aggregate.span();
        let tspan = troot.child("aggregate");
        let dists: Vec<PathDistribution> = slot_of
            .iter()
            .filter_map(|&s| resolved[s].clone())
            .collect();
        if dists.is_empty() {
            return Err(M3Error::NoUsableSamples {
                total: report.total_samples,
            });
        }
        report.events.sort_by_key(|e| e.scenario);
        let mut est = NetworkEstimate::aggregate(&dists);
        tspan.finish();
        span.finish();
        m.degraded_samples.add(report.degraded_samples as u64);
        m.dropped_samples.add(report.dropped_samples as u64);

        // The compatibility view is derived from the call's snapshot; the
        // caller's long-lived registry (if any) absorbs it only on success.
        let snapshot = call_metrics.snapshot();
        est.timings = StageTimings::from_snapshot(&snapshot);
        est.degradation = report;
        if let Some(ext) = &options.metrics {
            ext.absorb(&snapshot);
        }
        troot.finish();
        Ok(est)
    }
}

/// flowSim-only estimate over sampled paths (the "no ML" ablation).
pub fn flowsim_estimate(
    topo: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
    k_paths: usize,
    seed: u64,
) -> NetworkEstimate {
    flowsim_estimate_sliced(topo, flows, config, k_paths, seed, None)
}

/// [`flowsim_estimate`] restricted to a [`PathSlice`] of the k sampled
/// paths — the degraded-path twin of the sliced full pipeline, so a
/// breaker-degraded scatter child still answers for exactly its slice.
pub fn flowsim_estimate_sliced(
    topo: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
    k_paths: usize,
    seed: u64,
    slice: Option<PathSlice>,
) -> NetworkEstimate {
    let index = PathIndex::build(topo, flows);
    let sampled = index.sample_paths(k_paths, seed);
    let sampled = match slice {
        None => sampled,
        Some(sl) => {
            let end = sl.end.min(sampled.len());
            let start = sl.start.min(end);
            if start >= end {
                // A degenerate slice has nothing to estimate over; answer
                // for the full sample rather than panic in a worker (the
                // full pipeline rejects such a slice with a typed error
                // long before the degraded path is reached).
                sampled
            } else {
                sampled[start..end].to_vec()
            }
        }
    };
    let dists: Vec<PathDistribution> = sampled
        .par_iter()
        .map(|&g| {
            let data = PathScenarioData::from_group(topo, flows, &index, g, config);
            let sim = data.run_flowsim();
            PathDistribution::from_samples(&sim.fg)
        })
        .collect();
    NetworkEstimate::aggregate(&dists)
}

/// Path-level *packet* simulation per sampled path (ns-3-path): isolates the
/// error of the path-decomposition assumption from the ML approximation.
pub fn ns3_path_estimate(
    topo: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
    k_paths: usize,
    seed: u64,
) -> NetworkEstimate {
    let index = PathIndex::build(topo, flows);
    let sampled = index.sample_paths(k_paths, seed);
    let dists: Vec<PathDistribution> = sampled
        .par_iter()
        .map(|&g| {
            let data = PathScenarioData::from_group(topo, flows, &index, g, config);
            PathDistribution::from_samples(&data.run_ns3_path(*config))
        })
        .collect();
    NetworkEstimate::aggregate(&dists)
}

/// Exact network-wide distribution from full ground-truth records.
pub fn ground_truth_estimate(records: &[FctRecord]) -> NetworkEstimate {
    let mut bucket_samples: Vec<Vec<f64>> = vec![Vec::new(); NUM_OUTPUT_BUCKETS];
    let mut bucket_counts = [0usize; NUM_OUTPUT_BUCKETS];
    for r in records {
        let b = output_bucket(r.size);
        bucket_samples[b].push(r.slowdown());
        bucket_counts[b] += 1;
    }
    for v in bucket_samples.iter_mut() {
        v.sort_by(|a, b| a.total_cmp(b));
    }
    NetworkEstimate {
        bucket_samples,
        bucket_counts,
        timings: StageTimings::default(),
        degradation: DegradationReport::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SPEC_DIM;
    use m3_workload::prelude::*;

    fn small_workload(n: usize) -> (FatTree, Vec<FlowSpec>, SimConfig) {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let sc = Scenario {
            n_flows: n,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.4,
            seed: 17,
        };
        (
            ft.clone(),
            generate(&ft, &routing, &sc).flows,
            SimConfig::default(),
        )
    }

    fn untrained_estimator() -> M3Estimator {
        let cfg = ModelConfig {
            embed: 16,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            mlp_hidden: 32,
            ..ModelConfig::repro_default(SPEC_DIM)
        };
        M3Estimator::new(M3Net::new(cfg, 3))
    }

    #[test]
    fn m3_pipeline_produces_estimate() {
        let (ft, flows, cfg) = small_workload(1500);
        let est = untrained_estimator();
        let e = est.estimate(&ft.topo, &flows, &cfg, 20, 1);
        let p99 = e.p99();
        assert!(p99.is_finite() && p99 >= 1.0, "p99 {p99}");
    }

    #[test]
    fn flowsim_estimate_close_to_truth_for_long_flows() {
        let (ft, flows, cfg) = small_workload(1200);
        let fs = flowsim_estimate(&ft.topo, &flows, &cfg, 30, 2);
        // Long-flow bucket (>=50 KB) should be predicted within a loose
        // factor even without ML (§3.3's observation).
        let gt = ground_truth_estimate(&run_simulation(&ft.topo, cfg, flows.clone()).records);
        let b = 3;
        if gt.bucket_counts[b] > 10 && fs.bucket_counts[b] > 10 {
            let (a, c) = (fs.bucket_p99(b), gt.bucket_p99(b));
            assert!(a / c < 4.0 && c / a < 4.0, "flowSim {a} vs truth {c}");
        }
    }

    #[test]
    fn ns3_path_estimate_tracks_ground_truth() {
        let (ft, flows, cfg) = small_workload(1200);
        let gt_out = run_simulation(&ft.topo, cfg, flows.clone());
        let gt = ground_truth_estimate(&gt_out.records);
        let np = ns3_path_estimate(&ft.topo, &flows, &cfg, 40, 3);
        let (a, c) = (np.p99(), gt.p99());
        let err = ((a - c) / c).abs();
        assert!(
            err < 0.6,
            "ns-3-path p99 {a} should be near ground truth {c} (err {err})"
        );
    }

    #[test]
    fn ground_truth_estimate_counts_everything() {
        let (ft, flows, cfg) = small_workload(400);
        let out = run_simulation(&ft.topo, cfg, flows);
        let gt = ground_truth_estimate(&out.records);
        assert_eq!(gt.bucket_counts.iter().sum::<usize>(), out.records.len());
    }

    /// Bitwise equality of the value-carrying fields (timings excluded).
    fn assert_estimates_bit_identical(a: &NetworkEstimate, b: &NetworkEstimate) {
        assert_eq!(a.bucket_counts, b.bucket_counts);
        assert_eq!(a.bucket_samples.len(), b.bucket_samples.len());
        for (x, y) in a.bucket_samples.iter().zip(&b.bucket_samples) {
            let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
            assert_eq!(xb, yb);
        }
    }

    #[test]
    fn estimate_deterministic() {
        let (ft, flows, cfg) = small_workload(800);
        let est = untrained_estimator();
        let a = est.estimate(&ft.topo, &flows, &cfg, 10, 5);
        let b = est.estimate(&ft.topo, &flows, &cfg, 10, 5);
        assert_estimates_bit_identical(&a, &b);
    }

    #[test]
    fn batched_estimate_matches_per_path_pipeline() {
        // The dedupe + batched-forward path must reproduce the naive
        // per-path predict loop bit for bit.
        let (ft, flows, cfg) = small_workload(800);
        let est = untrained_estimator();
        let index = PathIndex::build(&ft.topo, &flows);
        let sampled = index.sample_paths(10, 5);
        let dists: Vec<PathDistribution> = sampled
            .iter()
            .map(|&g| {
                let data = PathScenarioData::from_group(&ft.topo, &flows, &index, g, &cfg);
                est.predict_path(&data, &cfg)
            })
            .collect();
        let legacy = NetworkEstimate::aggregate(&dists);
        let batched = est.estimate(&ft.topo, &flows, &cfg, 10, 5);
        assert_estimates_bit_identical(&legacy, &batched);
    }

    #[test]
    fn warm_cache_skips_flowsim_and_is_identical() {
        let (ft, flows, cfg) = small_workload(800);
        let est = untrained_estimator();
        let mut cache = crate::cache::ScenarioCache::new(256);

        let uncached = est.estimate(&ft.topo, &flows, &cfg, 10, 5);
        let cold = est.estimate_with_cache(&ft.topo, &flows, &cfg, 10, 5, &mut cache);
        assert!(cold.timings.flowsim_runs > 0, "cold run must simulate");
        assert_eq!(cold.timings.cache_hits, 0);
        assert_estimates_bit_identical(&uncached, &cold);

        let warm = est.estimate_with_cache(&ft.topo, &flows, &cfg, 10, 5, &mut cache);
        assert_eq!(warm.timings.flowsim_runs, 0, "warm run must skip flowSim");
        assert_eq!(warm.timings.cache_hits, warm.timings.unique_scenarios);
        assert_estimates_bit_identical(&cold, &warm);

        assert_eq!(warm.timings.sampled_paths, 10);
        assert!(warm.timings.unique_scenarios <= warm.timings.sampled_paths);
    }

    #[test]
    fn shared_cache_matches_exclusive_cache_bit_for_bit() {
        let (ft, flows, cfg) = small_workload(800);
        let est = untrained_estimator();
        let opts = EstimateOptions::default();

        let mut excl = crate::cache::ScenarioCache::new(256);
        let excl_cold = est
            .try_estimate_with_cache(&ft.topo, &flows, &cfg, 10, 5, &mut excl, &opts)
            .expect("cold exclusive run");

        let shared = crate::cache::SharedScenarioCache::new(256);
        let shared_cold = est
            .try_estimate_with_shared_cache(&ft.topo, &flows, &cfg, 10, 5, &shared, &opts)
            .expect("cold shared run");
        assert_estimates_bit_identical(&excl_cold, &shared_cold);
        assert_eq!(shared_cold.timings.cache_hits, 0);
        assert_eq!(
            shared_cold.timings.cache_misses,
            shared_cold.timings.unique_scenarios
        );

        let shared_warm = est
            .try_estimate_with_shared_cache(&ft.topo, &flows, &cfg, 10, 5, &shared, &opts)
            .expect("warm shared run");
        assert_eq!(
            shared_warm.timings.flowsim_runs, 0,
            "warm run skips flowSim"
        );
        assert_eq!(shared_warm.timings.cache_misses, 0);
        assert_eq!(
            shared_warm.timings.cache_hits,
            shared_warm.timings.unique_scenarios
        );
        assert_estimates_bit_identical(&shared_cold, &shared_warm);

        let s = shared.stats();
        assert_eq!(s.misses as usize, shared_cold.timings.unique_scenarios);
        assert_eq!(s.hits as usize, shared_warm.timings.cache_hits);
    }

    #[test]
    fn cache_eviction_counter_appears_in_timings_under_pressure() {
        // A one-entry cache forces LRU evictions on any multi-scenario run.
        let (ft, flows, cfg) = small_workload(800);
        let est = untrained_estimator();
        let mut cache = crate::cache::ScenarioCache::new(1);
        let e = est
            .try_estimate_with_cache(
                &ft.topo,
                &flows,
                &cfg,
                10,
                5,
                &mut cache,
                &EstimateOptions::default(),
            )
            .expect("fault-free run");
        if e.timings.unique_scenarios > 1 {
            assert_eq!(e.timings.cache_evictions, e.timings.unique_scenarios - 1);
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_misses_when_config_or_model_changes() {
        let (ft, flows, cfg) = small_workload(600);
        let est = untrained_estimator();
        let mut cache = crate::cache::ScenarioCache::new(256);
        est.estimate_with_cache(&ft.topo, &flows, &cfg, 6, 5, &mut cache);

        // A different candidate config changes the spec vector -> all miss.
        let mut cfg2 = cfg;
        cfg2.init_window *= 2;
        let other_cfg = est.estimate_with_cache(&ft.topo, &flows, &cfg2, 6, 5, &mut cache);
        assert_eq!(other_cfg.timings.cache_hits, 0, "config change must miss");

        // A different model changes the model fingerprint -> all miss.
        let est2 = {
            let cfg_m = ModelConfig {
                embed: 16,
                heads: 2,
                layers: 1,
                ff_hidden: 16,
                mlp_hidden: 32,
                ..ModelConfig::repro_default(SPEC_DIM)
            };
            M3Estimator::new(M3Net::new(cfg_m, 4))
        };
        let other_model = est2.estimate_with_cache(&ft.topo, &flows, &cfg, 6, 5, &mut cache);
        assert_eq!(other_model.timings.cache_hits, 0, "model change must miss");
    }

    #[test]
    fn try_estimate_default_options_matches_estimate_bit_for_bit() {
        let (ft, flows, cfg) = small_workload(800);
        let est = untrained_estimator();
        let classic = est.estimate(&ft.topo, &flows, &cfg, 10, 5);
        for policy in [
            DegradationPolicy::default(),
            DegradationPolicy::FailFast,
            DegradationPolicy::Degrade {
                max_degraded_frac: 0.0,
            },
        ] {
            let opts = EstimateOptions {
                policy,
                ..EstimateOptions::default()
            };
            let robust = est
                .try_estimate(&ft.topo, &flows, &cfg, 10, 5, &opts)
                .expect("fault-free run succeeds under every policy");
            assert_estimates_bit_identical(&classic, &robust);
            assert!(robust.degradation.is_clean(), "{:?}", robust.degradation);
            assert_eq!(robust.degradation.total_samples, 10);
            assert_eq!(robust.degradation.degraded_frac(), 0.0);
        }
    }

    #[test]
    fn try_estimate_rejects_bad_inputs_with_typed_errors() {
        let (ft, flows, cfg) = small_workload(300);
        let est = untrained_estimator();
        let opts = EstimateOptions::default();

        let mut bad_cfg = cfg;
        bad_cfg.mtu = 0;
        assert!(matches!(
            est.try_estimate(&ft.topo, &flows, &bad_cfg, 5, 1, &opts),
            Err(M3Error::InvalidSpec { .. })
        ));

        assert!(matches!(
            est.try_estimate(&ft.topo, &[], &cfg, 5, 1, &opts),
            Err(M3Error::InvalidSpec { .. })
        ));

        assert!(matches!(
            est.try_estimate(&ft.topo, &flows, &cfg, 0, 1, &opts),
            Err(M3Error::InvalidSpec { .. })
        ));
    }

    #[test]
    fn timings_are_populated_and_consistent() {
        let (ft, flows, cfg) = small_workload(800);
        let est = untrained_estimator();
        let e = est.estimate(&ft.topo, &flows, &cfg, 10, 5);
        let t = &e.timings;
        assert_eq!(t.sampled_paths, 10);
        assert!(t.unique_scenarios >= 1 && t.unique_scenarios <= 10);
        assert_eq!(t.flowsim_runs, t.unique_scenarios, "no cache: all simulate");
        assert_eq!(t.cache_hits, 0);
        assert!(t.total_s() > 0.0 && t.total_s().is_finite());
    }
}

/// Global flowSim baseline (extension experiment): fluid-simulate the
/// *entire network at once* — every flow over its directed channels — and
/// aggregate all slowdowns. Unlike [`flowsim_estimate`] there is no path
/// sampling and no decomposition error, only the fluid approximation.
pub fn global_flowsim_estimate(
    topo: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
) -> NetworkEstimate {
    use m3_flowsim::prelude::{simulate_fluid_general, GeneralFluidFlow};
    // One fluid link per directed channel.
    let mut caps = vec![0.0f64; topo.link_count() * 2];
    for (l, link) in topo.links() {
        caps[l.index() * 2] = link.bandwidth as f64;
        caps[l.index() * 2 + 1] = link.bandwidth as f64;
    }
    let fluid: Vec<GeneralFluidFlow> = flows
        .iter()
        .map(|f| {
            let ideal = topo.ideal_fct(&f.path, f.size, config.mtu);
            let bottleneck = topo.bottleneck_bandwidth(&f.path) as f64;
            let ser = (f.size.max(1) as f64 * 8e9 / bottleneck).ceil() as Nanos;
            GeneralFluidFlow {
                id: f.id,
                size: f.size,
                arrival: f.arrival,
                links: crate::decompose::flow_ports(topo, f)
                    .into_iter()
                    .map(|p| p as u32)
                    .collect(),
                rate_cap_bps: f64::INFINITY,
                latency: ideal.saturating_sub(ser),
                ideal_fct: ideal,
            }
        })
        .collect();
    let records = simulate_fluid_general(&caps, &fluid);
    let mut bucket_samples: Vec<Vec<f64>> = vec![Vec::new(); NUM_OUTPUT_BUCKETS];
    let mut bucket_counts = [0usize; NUM_OUTPUT_BUCKETS];
    for r in &records {
        let b = output_bucket(r.size);
        bucket_samples[b].push(r.slowdown());
        bucket_counts[b] += 1;
    }
    for v in bucket_samples.iter_mut() {
        v.sort_by(|a, b| a.total_cmp(b));
    }
    NetworkEstimate {
        bucket_samples,
        bucket_counts,
        timings: StageTimings::default(),
        degradation: DegradationReport::default(),
    }
}

#[cfg(test)]
mod global_tests {
    use super::*;
    use m3_workload::prelude::*;

    #[test]
    fn global_flowsim_covers_all_flows() {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let w = generate(
            &ft,
            &routing,
            &Scenario {
                n_flows: 1_000,
                matrix_name: "B".into(),
                sizes: SizeDistribution::web_server(),
                sigma: 1.0,
                max_load: 0.4,
                seed: 2,
            },
        );
        let est = global_flowsim_estimate(&ft.topo, &w.flows, &SimConfig::default());
        assert_eq!(est.bucket_counts.iter().sum::<usize>(), 1_000);
        let p99 = est.p99();
        assert!(p99.is_finite() && p99 >= 1.0 - 1e-6, "p99 {p99}");
    }

    #[test]
    fn global_flowsim_underestimates_like_path_flowsim() {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let w = generate(
            &ft,
            &routing,
            &Scenario {
                n_flows: 1_500,
                matrix_name: "B".into(),
                sizes: SizeDistribution::web_server(),
                sigma: 1.0,
                max_load: 0.5,
                seed: 4,
            },
        );
        let cfg = SimConfig::default();
        let gt = ground_truth_estimate(&run_simulation(&ft.topo, cfg, w.flows.clone()).records);
        let gfs = global_flowsim_estimate(&ft.topo, &w.flows, &cfg);
        // Fluid models lack queueing: the small-flow tail must be below truth.
        assert!(
            gfs.bucket_p99(0) <= gt.bucket_p99(0) * 1.1 || gt.bucket_counts[0] < 20,
            "global flowSim small-flow p99 {} vs truth {}",
            gfs.bucket_p99(0),
            gt.bucket_p99(0)
        );
    }
}
