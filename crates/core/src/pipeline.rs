//! End-to-end estimators over a full-network workload:
//!
//! * [`M3Estimator`] — the complete m3 pipeline: decompose, sample k paths,
//!   flowSim features, ML correction, aggregate (Fig. 4).
//! * [`flowsim_estimate`] — the no-ML ablation: flowSim's foreground
//!   slowdowns aggregated directly.
//! * [`ns3_path_estimate`] — per-path *packet-level* simulation (the paper's
//!   "ns-3-path" upper bound, §2.1).
//! * [`ground_truth_estimate`] — the exact network-wide distribution from a
//!   full packet-level simulation.

use crate::aggregate::{NetworkEstimate, PathDistribution, NUM_OUTPUT_BUCKETS};
use crate::decompose::PathIndex;
use crate::features::output_bucket;
use crate::pathsim::PathScenarioData;
use crate::spec::spec_vector;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use rayon::prelude::*;

/// Output-bucket counts of a foreground flow set.
fn fg_counts(data: &PathScenarioData) -> [usize; NUM_OUTPUT_BUCKETS] {
    let mut counts = [0usize; NUM_OUTPUT_BUCKETS];
    for f in &data.fg {
        counts[output_bucket(f.size)] += 1;
    }
    counts
}

/// The m3 estimator: a trained network plus inference options.
pub struct M3Estimator {
    pub net: M3Net,
    /// When false, zero the background context ("m3 w/o context", Fig. 16).
    pub use_context: bool,
}

impl M3Estimator {
    pub fn new(net: M3Net) -> Self {
        M3Estimator {
            net,
            use_context: true,
        }
    }

    /// Predict one already-materialized path scenario.
    pub fn predict_path(&self, data: &PathScenarioData, config: &SimConfig) -> PathDistribution {
        let sim = data.run_flowsim();
        let (fg_map, bg_maps) = data.features(&sim);
        let spec = spec_vector(config, data.fg_base_rtt, data.fg_bottleneck);
        let sample = SampleInput {
            fg: fg_map.encode_log(),
            bg: bg_maps.iter().map(|m| m.encode_log()).collect(),
            spec,
            use_context: self.use_context,
        };
        let out = self.net.predict(&sample);
        let decoded = crate::features::decode_log(&out);
        PathDistribution::from_model_output(&decoded, fg_counts(data))
    }

    /// Full pipeline: decompose the workload, sample `k_paths` paths, run
    /// flowSim + ML per path in parallel, aggregate.
    pub fn estimate(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        config: &SimConfig,
        k_paths: usize,
        seed: u64,
    ) -> NetworkEstimate {
        let index = PathIndex::build(topo, flows);
        let sampled = index.sample_paths(k_paths, seed);
        let dists: Vec<PathDistribution> = sampled
            .par_iter()
            .map(|&g| {
                let data = PathScenarioData::from_group(topo, flows, &index, g, config);
                self.predict_path(&data, config)
            })
            .collect();
        NetworkEstimate::aggregate(&dists)
    }
}

/// flowSim-only estimate over sampled paths (the "no ML" ablation).
pub fn flowsim_estimate(
    topo: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
    k_paths: usize,
    seed: u64,
) -> NetworkEstimate {
    let index = PathIndex::build(topo, flows);
    let sampled = index.sample_paths(k_paths, seed);
    let dists: Vec<PathDistribution> = sampled
        .par_iter()
        .map(|&g| {
            let data = PathScenarioData::from_group(topo, flows, &index, g, config);
            let sim = data.run_flowsim();
            PathDistribution::from_samples(&sim.fg)
        })
        .collect();
    NetworkEstimate::aggregate(&dists)
}

/// Path-level *packet* simulation per sampled path (ns-3-path): isolates the
/// error of the path-decomposition assumption from the ML approximation.
pub fn ns3_path_estimate(
    topo: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
    k_paths: usize,
    seed: u64,
) -> NetworkEstimate {
    let index = PathIndex::build(topo, flows);
    let sampled = index.sample_paths(k_paths, seed);
    let dists: Vec<PathDistribution> = sampled
        .par_iter()
        .map(|&g| {
            let data = PathScenarioData::from_group(topo, flows, &index, g, config);
            PathDistribution::from_samples(&data.run_ns3_path(*config))
        })
        .collect();
    NetworkEstimate::aggregate(&dists)
}

/// Exact network-wide distribution from full ground-truth records.
pub fn ground_truth_estimate(records: &[FctRecord]) -> NetworkEstimate {
    let mut bucket_samples: Vec<Vec<f64>> = vec![Vec::new(); NUM_OUTPUT_BUCKETS];
    let mut bucket_counts = [0usize; NUM_OUTPUT_BUCKETS];
    for r in records {
        let b = output_bucket(r.size);
        bucket_samples[b].push(r.slowdown());
        bucket_counts[b] += 1;
    }
    for v in bucket_samples.iter_mut() {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
    NetworkEstimate {
        bucket_samples,
        bucket_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SPEC_DIM;
    use m3_workload::prelude::*;

    fn small_workload(n: usize) -> (FatTree, Vec<FlowSpec>, SimConfig) {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let sc = Scenario {
            n_flows: n,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.4,
            seed: 17,
        };
        (ft.clone(), generate(&ft, &routing, &sc).flows, SimConfig::default())
    }

    fn untrained_estimator() -> M3Estimator {
        let cfg = ModelConfig {
            embed: 16,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            mlp_hidden: 32,
            ..ModelConfig::repro_default(SPEC_DIM)
        };
        M3Estimator::new(M3Net::new(cfg, 3))
    }

    #[test]
    fn m3_pipeline_produces_estimate() {
        let (ft, flows, cfg) = small_workload(1500);
        let est = untrained_estimator();
        let e = est.estimate(&ft.topo, &flows, &cfg, 20, 1);
        let p99 = e.p99();
        assert!(p99.is_finite() && p99 >= 1.0, "p99 {p99}");
    }

    #[test]
    fn flowsim_estimate_close_to_truth_for_long_flows() {
        let (ft, flows, cfg) = small_workload(1200);
        let fs = flowsim_estimate(&ft.topo, &flows, &cfg, 30, 2);
        // Long-flow bucket (>=50 KB) should be predicted within a loose
        // factor even without ML (§3.3's observation).
        let gt = ground_truth_estimate(&run_simulation(&ft.topo, cfg, flows.clone()).records);
        let b = 3;
        if gt.bucket_counts[b] > 10 && fs.bucket_counts[b] > 10 {
            let (a, c) = (fs.bucket_p99(b), gt.bucket_p99(b));
            assert!(a / c < 4.0 && c / a < 4.0, "flowSim {a} vs truth {c}");
        }
    }

    #[test]
    fn ns3_path_estimate_tracks_ground_truth() {
        let (ft, flows, cfg) = small_workload(1200);
        let gt_out = run_simulation(&ft.topo, cfg, flows.clone());
        let gt = ground_truth_estimate(&gt_out.records);
        let np = ns3_path_estimate(&ft.topo, &flows, &cfg, 40, 3);
        let (a, c) = (np.p99(), gt.p99());
        let err = ((a - c) / c).abs();
        assert!(
            err < 0.6,
            "ns-3-path p99 {a} should be near ground truth {c} (err {err})"
        );
    }

    #[test]
    fn ground_truth_estimate_counts_everything() {
        let (ft, flows, cfg) = small_workload(400);
        let out = run_simulation(&ft.topo, cfg, flows);
        let gt = ground_truth_estimate(&out.records);
        assert_eq!(gt.bucket_counts.iter().sum::<usize>(), out.records.len());
    }

    #[test]
    fn estimate_deterministic() {
        let (ft, flows, cfg) = small_workload(800);
        let est = untrained_estimator();
        let a = est.estimate(&ft.topo, &flows, &cfg, 10, 5).p99();
        let b = est.estimate(&ft.topo, &flows, &cfg, 10, 5).p99();
        assert_eq!(a, b);
    }
}

/// Global flowSim baseline (extension experiment): fluid-simulate the
/// *entire network at once* — every flow over its directed channels — and
/// aggregate all slowdowns. Unlike [`flowsim_estimate`] there is no path
/// sampling and no decomposition error, only the fluid approximation.
pub fn global_flowsim_estimate(
    topo: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
) -> NetworkEstimate {
    use m3_flowsim::prelude::{simulate_fluid_general, GeneralFluidFlow};
    // One fluid link per directed channel.
    let mut caps = vec![0.0f64; topo.link_count() * 2];
    for (l, link) in topo.links() {
        caps[l.index() * 2] = link.bandwidth as f64;
        caps[l.index() * 2 + 1] = link.bandwidth as f64;
    }
    let fluid: Vec<GeneralFluidFlow> = flows
        .iter()
        .map(|f| {
            let ideal = topo.ideal_fct(&f.path, f.size, config.mtu);
            let bottleneck = topo.bottleneck_bandwidth(&f.path) as f64;
            let ser = (f.size.max(1) as f64 * 8e9 / bottleneck).ceil() as Nanos;
            GeneralFluidFlow {
                id: f.id,
                size: f.size,
                arrival: f.arrival,
                links: crate::decompose::flow_ports(topo, f)
                    .into_iter()
                    .map(|p| p as u32)
                    .collect(),
                rate_cap_bps: f64::INFINITY,
                latency: ideal.saturating_sub(ser),
                ideal_fct: ideal,
            }
        })
        .collect();
    let records = simulate_fluid_general(&caps, &fluid);
    let mut bucket_samples: Vec<Vec<f64>> = vec![Vec::new(); NUM_OUTPUT_BUCKETS];
    let mut bucket_counts = [0usize; NUM_OUTPUT_BUCKETS];
    for r in &records {
        let b = output_bucket(r.size);
        bucket_samples[b].push(r.slowdown());
        bucket_counts[b] += 1;
    }
    for v in bucket_samples.iter_mut() {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
    NetworkEstimate {
        bucket_samples,
        bucket_counts,
    }
}

#[cfg(test)]
mod global_tests {
    use super::*;
    use m3_workload::prelude::*;

    #[test]
    fn global_flowsim_covers_all_flows() {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let w = generate(
            &ft,
            &routing,
            &Scenario {
                n_flows: 1_000,
                matrix_name: "B".into(),
                sizes: SizeDistribution::web_server(),
                sigma: 1.0,
                max_load: 0.4,
                seed: 2,
            },
        );
        let est = global_flowsim_estimate(&ft.topo, &w.flows, &SimConfig::default());
        assert_eq!(est.bucket_counts.iter().sum::<usize>(), 1_000);
        let p99 = est.p99();
        assert!(p99.is_finite() && p99 >= 1.0 - 1e-6, "p99 {p99}");
    }

    #[test]
    fn global_flowsim_underestimates_like_path_flowsim() {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let w = generate(
            &ft,
            &routing,
            &Scenario {
                n_flows: 1_500,
                matrix_name: "B".into(),
                sizes: SizeDistribution::web_server(),
                sigma: 1.0,
                max_load: 0.5,
                seed: 4,
            },
        );
        let cfg = SimConfig::default();
        let gt = ground_truth_estimate(&run_simulation(&ft.topo, cfg, w.flows.clone()).records);
        let gfs = global_flowsim_estimate(&ft.topo, &w.flows, &cfg);
        // Fluid models lack queueing: the small-flow tail must be below truth.
        assert!(
            gfs.bucket_p99(0) <= gt.bucket_p99(0) * 1.1 || gt.bucket_counts[0] < 20,
            "global flowSim small-flow p99 {} vs truth {}",
            gfs.bucket_p99(0),
            gt.bucket_p99(0)
        );
    }
}
