//! The network-specification vector (§3.4, step 5): bandwidth-delay
//! product, init window, buffer size, PFC flag, a one-hot congestion-control
//! selector, and the CC parameters of Table 4, min-max normalized to their
//! sampling ranges so the model sees features in [0, 1].

use m3_netsim::prelude::*;

/// Length of the spec vector: bdp, init window, buffer, pfc + one-hot(4) +
/// 8 protocol parameters.
pub const SPEC_DIM: usize = 16;

/// Normalization constant for the BDP feature (beyond the largest BDP in
/// the paper's scenarios).
const BDP_NORM: f64 = 100_000.0;

#[inline]
fn minmax(v: f64, lo: f64, hi: f64) -> f32 {
    (((v - lo) / (hi - lo)).clamp(0.0, 1.5)) as f32
}

/// Build the spec vector for a path under a simulator configuration.
///
/// `base_rtt` and `bottleneck_bps` describe the foreground path; the BDP
/// feature is their product.
pub fn spec_vector(config: &SimConfig, base_rtt: Nanos, bottleneck_bps: Bps) -> Vec<f32> {
    let bdp_bytes = bottleneck_bps as f64 / 8e9 * base_rtt as f64;
    let p = &config.params;
    let mut v = vec![0f32; SPEC_DIM];
    v[0] = (bdp_bytes / BDP_NORM) as f32;
    v[1] = minmax(config.init_window as f64, 5_000.0, 30_000.0);
    v[2] = minmax(config.buffer_size as f64, 200_000.0, 500_000.0);
    v[3] = if config.pfc_enabled { 1.0 } else { 0.0 };
    v[4 + config.cc.index()] = 1.0;
    v[8] = minmax(p.dctcp_k as f64, 5_000.0, 20_000.0);
    v[9] = minmax(p.dcqcn_k_min as f64, 20_000.0, 50_000.0);
    v[10] = minmax(p.dcqcn_k_max as f64, 50_000.0, 100_000.0);
    v[11] = minmax(p.hpcc_eta, 0.70, 0.95);
    v[12] = minmax(p.hpcc_rate_ai as f64, 500e6, 1000e6);
    v[13] = minmax(p.timely_t_low as f64, 40_000.0, 60_000.0);
    v[14] = minmax(p.timely_t_high as f64, 100_000.0, 150_000.0);
    // Reserved: init-window-to-BDP ratio, the feature Table 5 turns on.
    v[15] = (config.init_window as f64 / bdp_bytes.max(1.0)).min(4.0) as f32 / 4.0;
    v
}

/// Base RTT of a path (one-MTU data traversal plus ACK return), matching
/// the engine's [`m3_netsim::sim`] definition.
pub fn path_base_rtt(topo: &Topology, path: &[LinkId], config: &SimConfig) -> Nanos {
    let mut rtt: Nanos = 0;
    for &l in path {
        let link = topo.link(l);
        rtt += 2 * link.delay
            + m3_netsim::units::tx_time(config.mtu, link.bandwidth)
            + m3_netsim::units::tx_time(config.ack_size, link.bandwidth);
    }
    rtt.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_is_exclusive() {
        for cc in CcProtocol::ALL {
            let cfg = SimConfig {
                cc,
                ..SimConfig::default()
            };
            let v = spec_vector(&cfg, 10_000, 10 * GBPS);
            let hot: Vec<usize> = (4..8).filter(|&i| v[i] == 1.0).collect();
            assert_eq!(hot, vec![4 + cc.index()]);
        }
    }

    #[test]
    fn normalized_ranges() {
        let cfg = SimConfig::default();
        let v = spec_vector(&cfg, 10_000, 10 * GBPS);
        assert_eq!(v.len(), SPEC_DIM);
        for (i, &x) in v.iter().enumerate() {
            assert!((0.0..=1.5).contains(&x), "feature {i} = {x}");
        }
    }

    #[test]
    fn bdp_scales_with_rtt() {
        let cfg = SimConfig::default();
        let a = spec_vector(&cfg, 10_000, 10 * GBPS);
        let b = spec_vector(&cfg, 20_000, 10 * GBPS);
        assert!(b[0] > a[0]);
    }

    #[test]
    fn window_bdp_ratio_feature_moves() {
        // Table 5's headline effect: window below vs above BDP.
        let small = SimConfig {
            init_window: 10 * KB,
            ..SimConfig::default()
        };
        let big = SimConfig {
            init_window: 18 * KB,
            ..SimConfig::default()
        };
        let rtt = 12_000; // 15 KB BDP at 10G
        let vs = spec_vector(&small, rtt, 10 * GBPS);
        let vb = spec_vector(&big, rtt, 10 * GBPS);
        assert!(vb[15] > vs[15]);
    }

    #[test]
    fn path_base_rtt_positive_and_additive() {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let s = topo.add_switch();
        let b = topo.add_host();
        let l1 = topo.add_link(a, s, 10 * GBPS, 1000);
        let l2 = topo.add_link(s, b, 10 * GBPS, 1000);
        let cfg = SimConfig::default();
        let r1 = path_base_rtt(&topo, &[l1], &cfg);
        let r2 = path_base_rtt(&topo, &[l1, l2], &cfg);
        assert!(r2 > r1);
    }
}
