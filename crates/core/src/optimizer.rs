//! Counterfactual configuration search (§5.4 operationalized): prepare the
//! workload's flowSim features once, then explore network configurations by
//! re-running only the spec vector + model inference per candidate — the
//! "live configuration exploration" the paper envisions.

use crate::aggregate::{NetworkEstimate, PathDistribution, NUM_OUTPUT_BUCKETS};
use crate::decompose::PathIndex;
use crate::features::output_bucket;
use crate::pathsim::PathScenarioData;
use crate::pipeline::M3Estimator;
use crate::spec::spec_vector;
use m3_netsim::prelude::*;
use m3_nn::prelude::SampleInput;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One sampled path's precomputed, configuration-independent model inputs.
#[derive(Debug, Clone)]
struct PreparedPath {
    fg_enc: Vec<f32>,
    bg_enc: Vec<Vec<f32>>,
    base_rtt: Nanos,
    bottleneck: Bps,
    counts: [usize; NUM_OUTPUT_BUCKETS],
}

/// A workload prepared for repeated configuration queries. flowSim features
/// depend on the workload and topology only (the fluid model has no CC or
/// buffer knobs), so they are computed once; MTU and ACK size must stay
/// fixed across the sweep (they enter the ideal-FCT normalization).
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    paths: Vec<PreparedPath>,
    pub k_paths: usize,
}

impl PreparedWorkload {
    /// Decompose, sample, and featurize once.
    pub fn prepare(
        topo: &Topology,
        flows: &[FlowSpec],
        base_config: &SimConfig,
        k_paths: usize,
        seed: u64,
    ) -> Self {
        let index = PathIndex::build(topo, flows);
        let sampled = index.sample_paths(k_paths, seed);
        let paths: Vec<PreparedPath> = sampled
            .par_iter()
            .map(|&g| {
                let data = PathScenarioData::from_group(topo, flows, &index, g, base_config);
                let sim = data.run_flowsim();
                let (fg_map, bg_maps) = data.features(&sim);
                let mut counts = [0usize; NUM_OUTPUT_BUCKETS];
                for f in &data.fg {
                    counts[output_bucket(f.size)] += 1;
                }
                PreparedPath {
                    fg_enc: fg_map.encode_log(),
                    bg_enc: bg_maps.iter().map(|m| m.encode_log()).collect(),
                    base_rtt: data.fg_base_rtt,
                    bottleneck: data.fg_bottleneck,
                    counts,
                }
            })
            .collect();
        PreparedWorkload { paths, k_paths }
    }

    /// Estimate under a candidate configuration: inference only, as one
    /// batched forward pass over all prepared paths.
    pub fn estimate(&self, estimator: &M3Estimator, config: &SimConfig) -> NetworkEstimate {
        let inputs: Vec<SampleInput> = self
            .paths
            .iter()
            .map(|p| SampleInput {
                fg: p.fg_enc.clone(),
                bg: p.bg_enc.clone(),
                spec: spec_vector(config, p.base_rtt, p.bottleneck),
                use_context: estimator.use_context,
            })
            .collect();
        let outputs = estimator.net.predict_batch(&inputs);
        let dists: Vec<PathDistribution> = outputs
            .iter()
            .zip(&self.paths)
            .map(|(out, p)| {
                let decoded = crate::features::decode_log(out);
                PathDistribution::from_model_output(&decoded, p.counts)
            })
            .collect();
        NetworkEstimate::aggregate(&dists)
    }
}

/// A tunable scalar knob of [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Knob {
    InitWindow,
    BufferSize,
    DctcpK,
    HpccEta,
    HpccRateAi,
    TimelyTLow,
    TimelyTHigh,
    DcqcnKMin,
    DcqcnKMax,
}

impl Knob {
    /// Apply a candidate value to a configuration. Values are in the knob's
    /// natural unit (bytes, ns, fraction, bps).
    pub fn apply(self, config: &SimConfig, value: f64) -> SimConfig {
        let mut c = *config;
        match self {
            Knob::InitWindow => c.init_window = value as Bytes,
            Knob::BufferSize => c.buffer_size = value as Bytes,
            Knob::DctcpK => c.params.dctcp_k = value as Bytes,
            Knob::HpccEta => c.params.hpcc_eta = value,
            Knob::HpccRateAi => c.params.hpcc_rate_ai = value as Bps,
            Knob::TimelyTLow => c.params.timely_t_low = value as Nanos,
            Knob::TimelyTHigh => c.params.timely_t_high = value as Nanos,
            Knob::DcqcnKMin => c.params.dcqcn_k_min = value as Bytes,
            Knob::DcqcnKMax => c.params.dcqcn_k_max = value as Bytes,
        }
        c
    }

    /// The Table 4 sampling range of this knob.
    pub fn table4_range(self) -> (f64, f64) {
        match self {
            Knob::InitWindow => (5_000.0, 30_000.0),
            Knob::BufferSize => (200_000.0, 500_000.0),
            Knob::DctcpK => (5_000.0, 20_000.0),
            Knob::HpccEta => (0.70, 0.95),
            Knob::HpccRateAi => (500e6, 1000e6),
            Knob::TimelyTLow => (40_000.0, 60_000.0),
            Knob::TimelyTHigh => (100_000.0, 150_000.0),
            Knob::DcqcnKMin => (20_000.0, 50_000.0),
            Knob::DcqcnKMax => (50_000.0, 100_000.0),
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    pub value: f64,
    pub objective: f64,
    pub bucket_p99: Vec<f64>,
    pub overall_p99: f64,
}

/// Result of a knob sweep or search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    pub knob: Knob,
    pub points: Vec<SweepPoint>,
    pub best: SweepPoint,
}

/// Evaluate explicit candidate values for a knob, minimizing `objective`.
pub fn sweep_knob(
    estimator: &M3Estimator,
    prepared: &PreparedWorkload,
    base_config: &SimConfig,
    knob: Knob,
    candidates: &[f64],
    objective: impl Fn(&NetworkEstimate) -> f64,
) -> SweepResult {
    assert!(!candidates.is_empty());
    let points: Vec<SweepPoint> = candidates
        .iter()
        .map(|&v| {
            let cfg = knob.apply(base_config, v);
            let est = prepared.estimate(estimator, &cfg);
            SweepPoint {
                value: v,
                objective: objective(&est),
                bucket_p99: (0..NUM_OUTPUT_BUCKETS).map(|b| est.bucket_p99(b)).collect(),
                overall_p99: est.p99(),
            }
        })
        .collect();
    let best = match points
        .iter()
        .min_by(|a, b| a.objective.total_cmp(&b.objective))
    {
        Some(p) => p.clone(),
        None => unreachable!("sweep evaluates at least one point"),
    };
    SweepResult { knob, points, best }
}

/// Golden-section search over a knob's range (assumes a roughly unimodal
/// objective; falls back to the best sampled point otherwise).
pub fn golden_section_search(
    estimator: &M3Estimator,
    prepared: &PreparedWorkload,
    base_config: &SimConfig,
    knob: Knob,
    (lo, hi): (f64, f64),
    iterations: usize,
    objective: impl Fn(&NetworkEstimate) -> f64,
) -> SweepResult {
    assert!(lo < hi);
    const PHI: f64 = 0.618_033_988_749_894_8;
    let eval = |v: f64| -> SweepPoint {
        let cfg = knob.apply(base_config, v);
        let est = prepared.estimate(estimator, &cfg);
        SweepPoint {
            value: v,
            objective: objective(&est),
            bucket_p99: (0..NUM_OUTPUT_BUCKETS).map(|b| est.bucket_p99(b)).collect(),
            overall_p99: est.p99(),
        }
    };
    let mut points = Vec::new();
    let (mut a, mut b) = (lo, hi);
    let mut c = b - PHI * (b - a);
    let mut d = a + PHI * (b - a);
    let mut fc = eval(c);
    let mut fd = eval(d);
    points.push(fc.clone());
    points.push(fd.clone());
    for _ in 0..iterations {
        if fc.objective <= fd.objective {
            b = d;
            d = c;
            fd = fc;
            c = b - PHI * (b - a);
            fc = eval(c);
            points.push(fc.clone());
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + PHI * (b - a);
            fd = eval(d);
            points.push(fd.clone());
        }
    }
    let best = match points
        .iter()
        .min_by(|x, y| x.objective.total_cmp(&y.objective))
    {
        Some(p) => p.clone(),
        None => unreachable!("search evaluates at least two points"),
    };
    SweepResult { knob, points, best }
}

/// Convenience objective: p99 slowdown of one size bucket.
pub fn bucket_p99_objective(bucket: usize) -> impl Fn(&NetworkEstimate) -> f64 {
    move |est| {
        let v = est.bucket_p99(bucket);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SPEC_DIM;
    use m3_nn::prelude::{M3Net, ModelConfig};
    use m3_workload::prelude::*;

    fn setup() -> (M3Estimator, PreparedWorkload, SimConfig) {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let w = generate(
            &ft,
            &routing,
            &Scenario {
                n_flows: 1_500,
                matrix_name: "B".into(),
                sizes: SizeDistribution::web_server(),
                sigma: 1.0,
                max_load: 0.5,
                seed: 6,
            },
        );
        let cfg = SimConfig::default();
        let prepared = PreparedWorkload::prepare(&ft.topo, &w.flows, &cfg, 12, 1);
        let net = M3Net::new(
            ModelConfig {
                embed: 16,
                heads: 2,
                layers: 1,
                ff_hidden: 16,
                mlp_hidden: 32,
                ..ModelConfig::repro_default(SPEC_DIM)
            },
            3,
        );
        (M3Estimator::new(net), prepared, cfg)
    }

    #[test]
    fn prepared_estimate_matches_direct_pipeline_shape() {
        let (est, prepared, cfg) = setup();
        let e = prepared.estimate(&est, &cfg);
        assert!(e.p99().is_finite() && e.p99() >= 1.0);
        assert!(e.bucket_counts.iter().sum::<usize>() > 0);
    }

    #[test]
    fn sweep_finds_minimum_of_candidates() {
        let (est, prepared, cfg) = setup();
        let candidates = [5_000.0, 10_000.0, 20_000.0, 30_000.0];
        let r = sweep_knob(&est, &prepared, &cfg, Knob::InitWindow, &candidates, |e| {
            e.p99()
        });
        assert_eq!(r.points.len(), 4);
        let min = r
            .points
            .iter()
            .map(|p| p.objective)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(r.best.objective, min);
        assert!(candidates.contains(&r.best.value));
    }

    #[test]
    fn golden_section_stays_in_range() {
        let (est, prepared, cfg) = setup();
        let (lo, hi) = Knob::DctcpK.table4_range();
        let r = golden_section_search(
            &est,
            &prepared,
            &cfg,
            Knob::DctcpK,
            (lo, hi),
            5,
            bucket_p99_objective(0),
        );
        for p in &r.points {
            assert!(p.value >= lo && p.value <= hi);
        }
        assert!(r.best.objective <= r.points[0].objective);
    }

    #[test]
    fn knob_apply_roundtrip() {
        let cfg = SimConfig::default();
        let c = Knob::HpccEta.apply(&cfg, 0.8);
        assert!((c.params.hpcc_eta - 0.8).abs() < 1e-12);
        let c = Knob::BufferSize.apply(&cfg, 300_000.0);
        assert_eq!(c.buffer_size, 300_000);
        // Untouched fields preserved.
        assert_eq!(c.init_window, cfg.init_window);
    }

    #[test]
    fn all_knobs_have_valid_ranges() {
        for knob in [
            Knob::InitWindow,
            Knob::BufferSize,
            Knob::DctcpK,
            Knob::HpccEta,
            Knob::HpccRateAi,
            Knob::TimelyTLow,
            Knob::TimelyTHigh,
            Knob::DcqcnKMin,
            Knob::DcqcnKMax,
        ] {
            let (lo, hi) = knob.table4_range();
            assert!(lo < hi, "{knob:?}");
        }
    }
}
