//! Path-level decomposition (§3.2, Eqs. 1-2) and weighted path sampling.
//!
//! A *path* is the full directed link sequence of some flow's route (host to
//! host). The foreground of a path is every flow with that exact route; the
//! background is every flow sharing at least one *directed* channel with it
//! (full-duplex links mean opposite-direction traffic does not contend).
//!
//! Decomposition is lazy: the index groups flows by route and inverts the
//! port -> flows mapping cheaply; background sets are only materialized for
//! the k sampled paths.

use m3_netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Directed channel index: `link * 2 + (forward ? 0 : 1)`.
#[inline]
fn port_of(topo: &Topology, link: LinkId, from: NodeId) -> usize {
    let l = topo.link(link);
    link.index() * 2 + if l.a == from { 0 } else { 1 }
}

/// The directed port sequence of a flow's path.
pub fn flow_ports(topo: &Topology, flow: &FlowSpec) -> Vec<usize> {
    let mut ports = Vec::with_capacity(flow.path.len());
    let mut cur = flow.src;
    for &l in &flow.path {
        ports.push(port_of(topo, l, cur));
        cur = topo.link(l).other(cur);
    }
    debug_assert_eq!(cur, flow.dst);
    ports
}

/// One populated path: its route and foreground flow indices.
#[derive(Debug, Clone)]
pub struct PathGroup {
    /// Indices into the global flow slice.
    pub foreground: Vec<u32>,
    /// Representative flow index (defines src/dst/route).
    pub rep: u32,
}

/// The decomposition index over a workload.
pub struct PathIndex {
    /// Populated paths, keyed by route.
    pub groups: Vec<PathGroup>,
    /// Directed port -> flow indices crossing it.
    port_to_flows: Vec<Vec<u32>>,
    /// Cached directed port sequence per flow.
    flow_ports: Vec<Vec<usize>>,
}

impl PathIndex {
    pub fn build(topo: &Topology, flows: &[FlowSpec]) -> Self {
        assert!(flows.len() < u32::MAX as usize);
        let mut by_route: HashMap<&[LinkId], Vec<u32>> = HashMap::new();
        for (i, f) in flows.iter().enumerate() {
            by_route.entry(&f.path).or_default().push(i as u32);
        }
        // Routes with identical link sets but different endpoints/direction
        // are distinguished by the port sequence below; the route key plus
        // src suffices in practice. Distinguish by (path, src) to be safe.
        let mut by_route_src: HashMap<(&[LinkId], NodeId), Vec<u32>> = HashMap::new();
        for (i, f) in flows.iter().enumerate() {
            by_route_src
                .entry((&f.path, f.src))
                .or_default()
                .push(i as u32);
        }
        let mut groups: Vec<PathGroup> = by_route_src
            .into_values()
            .map(|foreground| PathGroup {
                rep: foreground[0],
                foreground,
            })
            .collect();
        // Deterministic ordering regardless of hash iteration.
        groups.sort_by_key(|g| g.rep);

        let mut port_to_flows: Vec<Vec<u32>> = vec![Vec::new(); topo.link_count() * 2];
        let mut flow_ports_cache = Vec::with_capacity(flows.len());
        for (i, f) in flows.iter().enumerate() {
            let ports = flow_ports(topo, f);
            for &p in &ports {
                port_to_flows[p].push(i as u32);
            }
            flow_ports_cache.push(ports);
        }
        PathIndex {
            groups,
            port_to_flows,
            flow_ports: flow_ports_cache,
        }
    }

    pub fn num_paths(&self) -> usize {
        self.groups.len()
    }

    /// Weighted sampling of `k` paths with replacement, probability
    /// proportional to foreground flow count (§3.2). Returns group indices.
    pub fn sample_paths(&self, k: usize, seed: u64) -> Vec<usize> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x736d706c);
        let cumulative: Vec<u64> = self
            .groups
            .iter()
            .scan(0u64, |acc, g| {
                *acc += g.foreground.len() as u64;
                Some(*acc)
            })
            .collect();
        // No populated paths (or gen_range would reject an empty range):
        // return no samples and let the caller report the empty workload.
        let total = cumulative.last().copied().unwrap_or(0);
        if total == 0 {
            return Vec::new();
        }
        (0..k)
            .map(|_| {
                let u = rng.gen_range(0..total);
                cumulative.partition_point(|&c| c <= u)
            })
            .collect()
    }

    /// Materialize the background of one path group: flows sharing at least
    /// one directed port, with their (first, last) shared hop indices on the
    /// path. Contiguity of the shared segment is the parking-lot abstraction
    /// of §3.2; non-contiguous intersections (rare under shortest-path ECMP)
    /// are widened to their span.
    pub fn background_of(&self, group_idx: usize, flows: &[FlowSpec]) -> Vec<(u32, usize, usize)> {
        let group = &self.groups[group_idx];
        let path_ports = &self.flow_ports[group.rep as usize];
        // position of each path port for segment computation
        let port_pos: HashMap<usize, usize> = path_ports
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect();
        let mut seen: HashMap<u32, (usize, usize)> = HashMap::new();
        for (&port, &pos) in &port_pos {
            for &fi in &self.port_to_flows[port] {
                seen.entry(fi)
                    .and_modify(|(a, b)| {
                        *a = (*a).min(pos);
                        *b = (*b).max(pos);
                    })
                    .or_insert((pos, pos));
            }
        }
        let rep = &flows[group.rep as usize];
        let mut bg: Vec<(u32, usize, usize)> = seen
            .into_iter()
            .filter(|(fi, _)| {
                // Exclude foreground: identical route and direction (Eq. 2).
                let f = &flows[*fi as usize];
                !(f.path == rep.path && f.src == rep.src)
            })
            .map(|(fi, (a, b))| (fi, a, b))
            .collect();
        bg.sort_unstable();
        bg
    }

    /// Foreground flow indices of a group.
    pub fn foreground_of(&self, group_idx: usize) -> &[u32] {
        &self.groups[group_idx].foreground
    }

    /// The representative flow defining the path of a group.
    pub fn rep_flow<'f>(&self, group_idx: usize, flows: &'f [FlowSpec]) -> &'f FlowSpec {
        &flows[self.groups[group_idx].rep as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_workload::prelude::*;

    fn workload() -> (FatTree, Vec<FlowSpec>) {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let sc = Scenario {
            n_flows: 3_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.4,
            seed: 5,
        };
        let w = generate(&ft, &routing, &sc);
        (ft, w.flows)
    }

    #[test]
    fn groups_partition_flows() {
        let (ft, flows) = workload();
        let idx = PathIndex::build(&ft.topo, &flows);
        let total: usize = idx.groups.iter().map(|g| g.foreground.len()).sum();
        assert_eq!(total, flows.len(), "every flow in exactly one group");
        for g in &idx.groups {
            let rep = &flows[g.rep as usize];
            for &fi in &g.foreground {
                let f = &flows[fi as usize];
                assert_eq!(f.path, rep.path);
                assert_eq!(f.src, rep.src);
            }
        }
    }

    #[test]
    fn background_shares_a_directed_port() {
        let (ft, flows) = workload();
        let idx = PathIndex::build(&ft.topo, &flows);
        let g = idx
            .groups
            .iter()
            .enumerate()
            .max_by_key(|(_, g)| g.foreground.len())
            .unwrap()
            .0;
        let bg = idx.background_of(g, &flows);
        assert!(!bg.is_empty(), "popular path should have background");
        let rep_ports = flow_ports(&ft.topo, idx.rep_flow(g, &flows));
        for (fi, a, b) in &bg {
            assert!(a <= b && *b < rep_ports.len());
            let f = &flows[*fi as usize];
            let fp = flow_ports(&ft.topo, f);
            assert!(
                fp.iter().any(|p| rep_ports.contains(p)),
                "background flow must share a directed port"
            );
            // Background is not foreground.
            assert!(
                !(f.path == idx.rep_flow(g, &flows).path && f.src == idx.rep_flow(g, &flows).src)
            );
        }
    }

    #[test]
    fn opposite_direction_is_not_background() {
        // Two hosts, two flows in opposite directions on the same links.
        let mut topo = Topology::new();
        let a = topo.add_host();
        let s = topo.add_switch();
        let b = topo.add_host();
        let l1 = topo.add_link(a, s, 10 * GBPS, USEC);
        let l2 = topo.add_link(s, b, 10 * GBPS, USEC);
        let flows = vec![
            FlowSpec {
                id: 0,
                src: a,
                dst: b,
                size: 1000,
                arrival: 0,
                path: vec![l1, l2],
            },
            FlowSpec {
                id: 1,
                src: b,
                dst: a,
                size: 1000,
                arrival: 0,
                path: vec![l2, l1],
            },
        ];
        let idx = PathIndex::build(&topo, &flows);
        assert_eq!(idx.num_paths(), 2);
        for g in 0..2 {
            assert!(
                idx.background_of(g, &flows).is_empty(),
                "reverse traffic shares no directed channel"
            );
        }
    }

    #[test]
    fn weighted_sampling_prefers_popular_paths() {
        let (ft, flows) = workload();
        let idx = PathIndex::build(&ft.topo, &flows);
        let samples = idx.sample_paths(2000, 1);
        // The most popular group should be sampled more often than a
        // singleton group.
        let popular = idx
            .groups
            .iter()
            .enumerate()
            .max_by_key(|(_, g)| g.foreground.len())
            .unwrap();
        let singleton = idx
            .groups
            .iter()
            .enumerate()
            .find(|(_, g)| g.foreground.len() == 1)
            .map(|(i, _)| i);
        let count_pop = samples.iter().filter(|&&s| s == popular.0).count();
        if let Some(single) = singleton {
            let count_single = samples.iter().filter(|&&s| s == single).count();
            assert!(count_pop >= count_single);
        }
        assert!(count_pop >= 1);
    }

    #[test]
    fn sampling_is_deterministic() {
        let (ft, flows) = workload();
        let idx = PathIndex::build(&ft.topo, &flows);
        assert_eq!(idx.sample_paths(50, 7), idx.sample_paths(50, 7));
        assert_ne!(idx.sample_paths(50, 7), idx.sample_paths(50, 8));
    }
}
