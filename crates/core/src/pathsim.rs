//! Materialization of one sampled path into the three path-level artifacts
//! m3 needs (§3.2-§3.4):
//!
//! 1. the **fluid model** consumed by flowSim (feature extraction),
//! 2. the **parking-lot packet topology** ("ns-3-path"): the same
//!    foreground path rebuilt with private attachment hosts for background
//!    flows, used for ground truth and the Fig. 2/15 ablations,
//! 3. the **feature maps** (foreground map + one background map per hop).

use crate::decompose::PathIndex;
use crate::features::FeatureMap;
use m3_flowsim::prelude::*;
use m3_netsim::prelude::*;

/// One flow mapped onto a path: its span `[first_hop, last_hop]` over the
/// path's links, and enough of its original identity to compute slowdowns.
#[derive(Debug, Clone)]
pub struct PathFlow {
    /// Index into the original workload's flow slice.
    pub global_idx: u32,
    pub size: Bytes,
    pub arrival: Nanos,
    pub first_hop: usize,
    pub last_hop: usize,
    /// min(src NIC, dst NIC) of the original endpoints.
    pub nic_cap: Bps,
    /// Propagation latency of the original full route.
    pub latency: Nanos,
    /// Ideal FCT over the original full route (slowdown denominator).
    pub ideal_fct: Nanos,
}

/// A fully materialized path-level scenario.
#[derive(Debug, Clone)]
pub struct PathScenarioData {
    /// Bandwidth and delay of each path link, in order.
    pub link_bw: Vec<Bps>,
    pub link_delay: Vec<Nanos>,
    /// Foreground flows (all spanning the whole path).
    pub fg: Vec<PathFlow>,
    /// Background flows with partial spans.
    pub bg: Vec<PathFlow>,
    /// Base RTT and bottleneck of the foreground path (spec vector inputs).
    pub fg_base_rtt: Nanos,
    pub fg_bottleneck: Bps,
}

/// Result of running flowSim on a path scenario: (size, slowdown) samples.
#[derive(Debug, Clone)]
pub struct FlowsimResult {
    pub fg: Vec<(u64, f64)>,
    /// Background samples grouped per hop (a flow appears at every hop it
    /// crosses, matching the per-link background maps of §3.4).
    pub bg_per_hop: Vec<Vec<(u64, f64)>>,
}

impl PathScenarioData {
    /// Build from a decomposition group.
    pub fn from_group(
        topo: &Topology,
        flows: &[FlowSpec],
        index: &PathIndex,
        group_idx: usize,
        config: &SimConfig,
    ) -> Self {
        let rep = index.rep_flow(group_idx, flows);
        let n = rep.path.len();
        let link_bw: Vec<Bps> = rep.path.iter().map(|&l| topo.link(l).bandwidth).collect();
        let link_delay: Vec<Nanos> = rep.path.iter().map(|&l| topo.link(l).delay).collect();
        let mk = |fi: u32, first: usize, last: usize| {
            let f = &flows[fi as usize];
            PathFlow {
                global_idx: fi,
                size: f.size,
                arrival: f.arrival,
                first_hop: first,
                last_hop: last,
                nic_cap: topo
                    .host_nic_bandwidth(f.src)
                    .min(topo.host_nic_bandwidth(f.dst)),
                latency: f.path.iter().map(|&l| topo.link(l).delay).sum(),
                ideal_fct: topo.ideal_fct(&f.path, f.size, config.mtu),
            }
        };
        let fg: Vec<PathFlow> = index
            .foreground_of(group_idx)
            .iter()
            .map(|&fi| mk(fi, 0, n - 1))
            .collect();
        let bg: Vec<PathFlow> = index
            .background_of(group_idx, flows)
            .into_iter()
            .map(|(fi, a, b)| mk(fi, a, b))
            .collect();
        PathScenarioData {
            fg_base_rtt: crate::spec::path_base_rtt(topo, &rep.path, config),
            fg_bottleneck: topo.bottleneck_bandwidth(&rep.path),
            link_bw,
            link_delay,
            fg,
            bg,
        }
    }

    pub fn num_hops(&self) -> usize {
        self.link_bw.len()
    }

    /// The fluid model: one fluid link per path link; foreground flows span
    /// everything, background flows their segment with a NIC rate cap.
    ///
    /// Each flow's fixed latency term is `ideal_fct - bottleneck
    /// serialization` (Appendix A's "topology-specific end-to-end latency
    /// factor"): it folds propagation *and* per-hop packet pipelining into a
    /// constant, so an unloaded fluid flow has slowdown exactly 1.
    pub fn to_fluid(&self) -> (FluidTopology, Vec<FluidFlow>) {
        let topo = FluidTopology::new(self.link_bw.iter().map(|&b| b as f64).collect());
        let mut flows = Vec::with_capacity(self.fg.len() + self.bg.len());
        for (i, f) in self.fg.iter().chain(self.bg.iter()).enumerate() {
            let is_fg = i < self.fg.len();
            let cap = if is_fg {
                f64::INFINITY // foreground endpoints are the path's own links
            } else {
                f.nic_cap as f64
            };
            let seg_bw = self.link_bw[f.first_hop..=f.last_hop]
                .iter()
                .copied()
                .min()
                .unwrap_or(GBPS);
            let bottleneck = (seg_bw as f64).min(cap);
            let ser = (f.size.max(1) as f64 * 8e9 / bottleneck).ceil() as Nanos;
            flows.push(FluidFlow {
                id: i as u32,
                size: f.size,
                arrival: f.arrival,
                first_link: f.first_hop as u16,
                last_link: f.last_hop as u16,
                rate_cap_bps: cap,
                latency: f.ideal_fct.saturating_sub(ser),
                ideal_fct: f.ideal_fct,
            });
        }
        (topo, flows)
    }

    /// Run flowSim and split the samples into foreground and per-hop
    /// background sets. Panics on invalid input or an exhausted default
    /// budget; the pipeline uses [`try_run_flowsim`](Self::try_run_flowsim).
    pub fn run_flowsim(&self) -> FlowsimResult {
        match self.try_run_flowsim(&FluidBudget::UNLIMITED) {
            Ok(r) => r,
            Err(e) => panic!("flowSim failed: {e}"),
        }
    }

    /// Fallible flowSim under a resource budget: invalid flows, non-finite
    /// event times, and budget exhaustion come back as typed
    /// [`FluidError`]s instead of panics.
    pub fn try_run_flowsim(&self, budget: &FluidBudget) -> Result<FlowsimResult, FluidError> {
        self.try_run_flowsim_stats(budget).map(|(r, _)| r)
    }

    /// [`try_run_flowsim`](Self::try_run_flowsim) plus the run's
    /// deterministic budget-consumption stats (event count, wall checks),
    /// which the pipeline feeds into its telemetry registry.
    pub fn try_run_flowsim_stats(
        &self,
        budget: &FluidBudget,
    ) -> Result<(FlowsimResult, FluidRunStats), FluidError> {
        self.try_run_flowsim_traced(budget, None)
    }

    /// [`try_run_flowsim_stats`](Self::try_run_flowsim_stats) with an
    /// optional virtual-time [`FluidProbe`]: per-link utilization and
    /// active-flow counts are sampled at the probe's stride (for the
    /// tracing flight recorder). The probe only observes — records are
    /// identical to the unprobed entry points.
    pub fn try_run_flowsim_traced(
        &self,
        budget: &FluidBudget,
        probe: Option<&FluidProbe<'_>>,
    ) -> Result<(FlowsimResult, FluidRunStats), FluidError> {
        let (topo, flows) = self.to_fluid();
        let (records, stats) = try_simulate_fluid_traced(&topo, &flows, budget, probe)?;
        Ok((self.split_records(&records), stats))
    }

    /// [`try_run_flowsim_traced`](Self::try_run_flowsim_traced) with
    /// caller-owned fluid-engine scratch: the simulation's internal
    /// collections come from `ws` and the raw records land in `records`, so
    /// repeated runs across scenarios reuse capacity instead of
    /// reallocating. Results are bit-identical to the owning entry points.
    pub fn try_run_flowsim_traced_into(
        &self,
        budget: &FluidBudget,
        probe: Option<&FluidProbe<'_>>,
        ws: &mut FluidWorkspace,
        records: &mut Vec<FluidFctRecord>,
    ) -> Result<(FlowsimResult, FluidRunStats), FluidError> {
        let (topo, flows) = self.to_fluid();
        let stats = try_simulate_fluid_traced_into(&topo, &flows, budget, probe, ws, records)?;
        Ok((self.split_records(records), stats))
    }

    /// Split raw fluid records into the foreground sample set and one
    /// background set per hop (a background flow contributes to every hop
    /// it crosses).
    pub(crate) fn split_records(&self, records: &[FluidFctRecord]) -> FlowsimResult {
        let n_fg = self.fg.len();
        let mut fg = Vec::with_capacity(n_fg);
        let mut bg_per_hop: Vec<Vec<(u64, f64)>> = vec![Vec::new(); self.num_hops()];
        for r in records {
            let i = r.id as usize;
            if i < n_fg {
                fg.push((r.size, r.slowdown()));
            } else {
                let f = &self.bg[i - n_fg];
                for hop in &mut bg_per_hop[f.first_hop..=f.last_hop] {
                    hop.push((r.size, r.slowdown()));
                }
            }
        }
        FlowsimResult { fg, bg_per_hop }
    }

    /// Feature maps from a flowSim result: the foreground 10x100 map and one
    /// background map per hop.
    pub fn features(&self, sim: &FlowsimResult) -> (FeatureMap, Vec<FeatureMap>) {
        let fg_map = FeatureMap::feature(&sim.fg);
        let bg_maps = sim
            .bg_per_hop
            .iter()
            .map(|samples| FeatureMap::feature(samples))
            .collect();
        (fg_map, bg_maps)
    }

    /// Rebuild the parking-lot packet topology ("ns-3-path", §2.1): path
    /// nodes are [src host, switches..., dst host]; each background flow
    /// joins/leaves through private attachment links with its original NIC
    /// capacity. Returns the topology, the flow list (foreground first) and
    /// a parallel is-foreground flag vector. Flow ids index into fg ++ bg.
    pub fn to_netsim(&self) -> (Topology, Vec<FlowSpec>, Vec<bool>) {
        let n = self.num_hops();
        assert!(n >= 2, "host-to-host paths have at least two links");
        let mut topo = Topology::new();
        // node 0 = fg src host; nodes 1..n-1 switches; node n = fg dst host.
        let src_host = topo.add_host();
        let mut nodes = vec![src_host];
        for _ in 1..n {
            nodes.push(topo.add_switch());
        }
        let dst_host = topo.add_host();
        nodes.push(dst_host);
        let mut path = Vec::with_capacity(n);
        for i in 0..n {
            path.push(topo.add_link(nodes[i], nodes[i + 1], self.link_bw[i], self.link_delay[i]));
        }
        let mut flows = Vec::with_capacity(self.fg.len() + self.bg.len());
        let mut is_fg = Vec::with_capacity(flows.capacity());
        for (i, f) in self.fg.iter().enumerate() {
            flows.push(FlowSpec {
                id: i as FlowId,
                src: src_host,
                dst: dst_host,
                size: f.size,
                arrival: f.arrival,
                path: path.clone(),
            });
            is_fg.push(true);
        }
        let attach_delay = USEC;
        for (j, f) in self.bg.iter().enumerate() {
            // Entry node index = first_hop; exit node index = last_hop + 1.
            let (src, mut p) = if f.first_hop == 0 {
                (src_host, Vec::new())
            } else {
                let h = topo.add_host();
                let l = topo.add_link(h, nodes[f.first_hop], f.nic_cap, attach_delay);
                (h, vec![l])
            };
            p.extend_from_slice(&path[f.first_hop..=f.last_hop]);
            let dst = if f.last_hop == n - 1 {
                dst_host
            } else {
                let h = topo.add_host();
                let l = topo.add_link(h, nodes[f.last_hop + 1], f.nic_cap, attach_delay);
                p.push(l);
                h
            };
            flows.push(FlowSpec {
                id: (self.fg.len() + j) as FlowId,
                src,
                dst,
                size: f.size,
                arrival: f.arrival,
                path: p,
            });
            is_fg.push(false);
        }
        (topo, flows, is_fg)
    }

    /// Run the path-level packet simulation and return foreground
    /// (size, slowdown) samples — slowdowns computed against the *original*
    /// full-network ideal FCTs so they are comparable with ground truth.
    pub fn run_ns3_path(&self, config: SimConfig) -> Vec<(u64, f64)> {
        let (topo, flows, is_fg) = self.to_netsim();
        let out = run_simulation(&topo, config, flows);
        out.records
            .iter()
            .filter(|r| is_fg[r.id as usize])
            .map(|r| {
                let orig_ideal = self.fg[r.id as usize].ideal_fct.max(1);
                (r.size, r.fct as f64 / orig_ideal as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::PathIndex;
    use m3_workload::prelude::*;

    fn scenario() -> (FatTree, Vec<FlowSpec>, SimConfig) {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let sc = Scenario {
            n_flows: 2_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.4,
            seed: 3,
        };
        let w = generate(&ft, &routing, &sc);
        (ft, w.flows, SimConfig::default())
    }

    fn busiest_group(idx: &PathIndex) -> usize {
        idx.groups
            .iter()
            .enumerate()
            .max_by_key(|(_, g)| g.foreground.len())
            .unwrap()
            .0
    }

    #[test]
    fn materialization_shapes() {
        let (ft, flows, cfg) = scenario();
        let idx = PathIndex::build(&ft.topo, &flows);
        let g = busiest_group(&idx);
        let data = PathScenarioData::from_group(&ft.topo, &flows, &idx, g, &cfg);
        assert!(!data.fg.is_empty());
        assert!(data.num_hops() >= 2);
        for f in &data.fg {
            assert_eq!(f.first_hop, 0);
            assert_eq!(f.last_hop, data.num_hops() - 1);
        }
        for f in &data.bg {
            assert!(f.last_hop < data.num_hops());
            assert!(f.ideal_fct > 0);
        }
    }

    #[test]
    fn fluid_and_features() {
        let (ft, flows, cfg) = scenario();
        let idx = PathIndex::build(&ft.topo, &flows);
        let g = busiest_group(&idx);
        let data = PathScenarioData::from_group(&ft.topo, &flows, &idx, g, &cfg);
        let sim = data.run_flowsim();
        assert_eq!(sim.fg.len(), data.fg.len(), "every fg flow completes");
        assert_eq!(sim.bg_per_hop.len(), data.num_hops());
        let (fg_map, bg_maps) = data.features(&sim);
        assert_eq!(fg_map.data.len(), crate::features::FEAT_DIM);
        assert_eq!(bg_maps.len(), data.num_hops());
        assert_eq!(fg_map.total_flows(), data.fg.len());
        for (_, s) in &sim.fg {
            assert!(*s >= 1.0 - 1e-6, "fluid slowdown {} below 1", s);
        }
    }

    #[test]
    fn ns3_path_reconstruction_runs() {
        let (ft, flows, cfg) = scenario();
        let idx = PathIndex::build(&ft.topo, &flows);
        let g = busiest_group(&idx);
        let data = PathScenarioData::from_group(&ft.topo, &flows, &idx, g, &cfg);
        let fg_samples = data.run_ns3_path(cfg);
        assert_eq!(fg_samples.len(), data.fg.len());
        for (size, sldn) in &fg_samples {
            assert!(*size > 0);
            assert!(*sldn > 0.5, "slowdown {} suspicious", sldn);
        }
    }

    #[test]
    fn reconstruction_preserves_fg_path_characteristics() {
        let (ft, flows, cfg) = scenario();
        let idx = PathIndex::build(&ft.topo, &flows);
        let g = busiest_group(&idx);
        let data = PathScenarioData::from_group(&ft.topo, &flows, &idx, g, &cfg);
        let (topo, nflows, is_fg) = data.to_netsim();
        // Foreground path in the reconstruction has the same bandwidths and
        // delays as the original.
        let fg_flow = nflows.iter().zip(&is_fg).find(|(_, &f)| f).unwrap().0;
        let bws: Vec<Bps> = fg_flow
            .path
            .iter()
            .map(|&l| topo.link(l).bandwidth)
            .collect();
        assert_eq!(bws, data.link_bw);
        let ideal_orig = data.fg[fg_flow.id as usize].ideal_fct;
        let ideal_recon = topo.ideal_fct(&fg_flow.path, fg_flow.size, cfg.mtu);
        assert_eq!(ideal_orig, ideal_recon, "fg ideal FCT must be identical");
    }
}
