//! flowSim-derived feature maps (§3.4, Eq. 3).
//!
//! A feature map is a 10 x 100 matrix: flows are split into 10 size buckets
//! (from single-packet flows under 250 B to >200 kB) and each bucket's FCT
//! slowdown distribution is summarized at 100 fixed percentiles (1%..100%).
//! The foreground map is the model's primary input; one background map per
//! hop provides the context sequence.

use m3_netsim::stats::{percentile, NUM_PERCENTILES};
use serde::{Deserialize, Serialize};

/// Upper bounds (inclusive) of the 10 feature size buckets, in bytes.
/// The final bucket is unbounded.
pub const SIZE_BUCKETS: [u64; 10] = [
    250,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    200_000,
    u64::MAX,
];

/// Upper bounds (inclusive) of the 4 output size buckets (§3.4):
/// (0,1KB], (1KB,10KB], (10KB,50KB], (50KB,inf).
pub const OUTPUT_BUCKETS: [u64; 4] = [1_000, 10_000, 50_000, u64::MAX];

/// Number of feature buckets x percentiles = flattened map width.
pub const FEAT_DIM: usize = SIZE_BUCKETS.len() * NUM_PERCENTILES;
/// Output width: 4 buckets x 100 percentiles.
pub const OUT_DIM: usize = OUTPUT_BUCKETS.len() * NUM_PERCENTILES;

/// Value stored for buckets with no flows: distinguishable from any real
/// slowdown (which is >= 1).
pub const EMPTY_BUCKET_VALUE: f32 = 0.0;

/// Index of the feature bucket for a flow size. The last bound is
/// `u64::MAX`, so the fallback is unreachable but keeps this total.
pub fn feature_bucket(size: u64) -> usize {
    SIZE_BUCKETS
        .iter()
        .position(|&ub| size <= ub)
        .unwrap_or(SIZE_BUCKETS.len() - 1)
}

/// Index of the output bucket for a flow size (total; see
/// [`feature_bucket`]).
pub fn output_bucket(size: u64) -> usize {
    OUTPUT_BUCKETS
        .iter()
        .position(|&ub| size <= ub)
        .unwrap_or(OUTPUT_BUCKETS.len() - 1)
}

/// A slowdown distribution summarized per size bucket at 100 percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMap {
    /// `buckets x NUM_PERCENTILES`, row-major; empty buckets hold
    /// [`EMPTY_BUCKET_VALUE`].
    pub data: Vec<f32>,
    /// Flows per bucket (used downstream for weighted aggregation).
    pub counts: Vec<usize>,
}

impl FeatureMap {
    /// Build a map over the given bucket bounds from (size, slowdown) samples.
    pub fn build(samples: &[(u64, f64)], bucket_bounds: &[u64]) -> Self {
        let nb = bucket_bounds.len();
        let mut per_bucket: Vec<Vec<f64>> = vec![Vec::new(); nb];
        for &(size, sldn) in samples {
            let b = bucket_bounds
                .iter()
                .position(|&ub| size <= ub)
                .unwrap_or(nb - 1);
            per_bucket[b].push(sldn);
        }
        let mut data = vec![EMPTY_BUCKET_VALUE; nb * NUM_PERCENTILES];
        let mut counts = vec![0usize; nb];
        for (b, mut v) in per_bucket.into_iter().enumerate() {
            counts[b] = v.len();
            if v.is_empty() {
                continue;
            }
            v.sort_by(|a, b| a.total_cmp(b));
            for p in 0..NUM_PERCENTILES {
                data[b * NUM_PERCENTILES + p] = percentile(&v, (p + 1) as f64) as f32;
            }
        }
        FeatureMap { data, counts }
    }

    /// The standard 10-bucket feature map.
    pub fn feature(samples: &[(u64, f64)]) -> Self {
        Self::build(samples, &SIZE_BUCKETS)
    }

    /// The 4-bucket output map (used to form training targets).
    pub fn output(samples: &[(u64, f64)]) -> Self {
        Self::build(samples, &OUTPUT_BUCKETS)
    }

    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Percentile row of one bucket.
    pub fn bucket(&self, b: usize) -> &[f32] {
        &self.data[b * NUM_PERCENTILES..(b + 1) * NUM_PERCENTILES]
    }

    /// Value at (bucket, percentile index 0-based = p-1).
    pub fn at(&self, b: usize, p_idx: usize) -> f32 {
        self.data[b * NUM_PERCENTILES + p_idx]
    }

    /// p99 slowdown of a bucket (NaN if empty).
    pub fn p99(&self, b: usize) -> f64 {
        if self.counts[b] == 0 {
            f64::NAN
        } else {
            self.at(b, 98) as f64
        }
    }

    pub fn total_flows(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Encode the map for model consumption: log-slowdown space.
    /// Slowdowns are >= 1 with heavy tails, so ln(s) compresses the range
    /// and makes the L1 objective behave like relative error. Empty
    /// buckets map to [`LOG_EMPTY`], distinguishable from ln(1) = 0.
    pub fn encode_log(&self) -> Vec<f32> {
        self.data
            .iter()
            .map(|&v| if v <= 0.0 { LOG_EMPTY } else { v.max(1.0).ln() })
            .collect()
    }
}

/// Marker for empty buckets in the model's log-slowdown space.
pub const LOG_EMPTY: f32 = -1.0;

/// Decode a model output vector from log-slowdown back to slowdowns.
pub fn decode_log(out: &[f32]) -> Vec<f32> {
    out.iter().map(|&v| v.max(0.0).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(feature_bucket(1), 0);
        assert_eq!(feature_bucket(250), 0);
        assert_eq!(feature_bucket(251), 1);
        assert_eq!(feature_bucket(50_000), 7);
        assert_eq!(feature_bucket(10_000_000), 9);
        assert_eq!(output_bucket(1_000), 0);
        assert_eq!(output_bucket(1_001), 1);
        assert_eq!(output_bucket(u64::MAX), 3);
    }

    #[test]
    fn map_shape_and_counts() {
        let samples = vec![(100, 1.5), (100, 2.0), (5_000, 3.0), (1_000_000, 4.0)];
        let m = FeatureMap::feature(&samples);
        assert_eq!(m.data.len(), FEAT_DIM);
        assert_eq!(m.counts[0], 2);
        assert_eq!(m.counts[4], 1);
        assert_eq!(m.counts[9], 1);
        assert_eq!(m.total_flows(), 4);
    }

    #[test]
    fn percentile_rows_monotone() {
        let samples: Vec<(u64, f64)> = (0..1000).map(|i| (100, 1.0 + (i as f64) / 100.0)).collect();
        let m = FeatureMap::feature(&samples);
        let row = m.bucket(0);
        for w in row.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // p100 = max sample.
        assert!((row[99] - 10.99).abs() < 0.05);
    }

    #[test]
    fn empty_buckets_marked() {
        let m = FeatureMap::feature(&[(100, 2.0)]);
        for b in 1..10 {
            assert_eq!(m.bucket(b), &[EMPTY_BUCKET_VALUE; NUM_PERCENTILES]);
            assert!(m.p99(b).is_nan());
        }
        assert!((m.p99(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_fills_row() {
        let m = FeatureMap::output(&[(5_000, 3.5)]);
        let row = m.bucket(1);
        assert!(row.iter().all(|&v| (v - 3.5).abs() < 1e-6));
    }

    #[test]
    fn out_dim_is_400() {
        assert_eq!(OUT_DIM, 400);
        assert_eq!(FEAT_DIM, 1000);
    }
}

#[cfg(test)]
mod log_tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let e = std::f64::consts::E;
        let samples = vec![(100u64, 1.0), (100, e * e), (5_000, e)];
        let m = FeatureMap::feature(&samples);
        let enc = m.encode_log();
        // Bucket 0, p100 = ln(e^2) = 2.
        assert!((enc[99] - 2.0).abs() < 1e-3);
        let dec = decode_log(&enc);
        assert!((dec[99] as f64 - e * e).abs() < 1e-2);
    }

    #[test]
    fn empty_buckets_get_marker() {
        let m = FeatureMap::feature(&[(100, 2.0)]);
        let enc = m.encode_log();
        assert_eq!(enc[100], LOG_EMPTY, "bucket 1 empty");
        assert!(enc[0] > 0.0, "bucket 0 has data");
    }

    #[test]
    fn decode_clamps_to_slowdown_one() {
        let dec = decode_log(&[-5.0, 0.0, 1.0]);
        assert!((dec[0] - 1.0).abs() < 1e-6);
        assert!((dec[1] - 1.0).abs() < 1e-6);
    }
}
