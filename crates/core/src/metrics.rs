//! Telemetry surface of the estimation pipeline.
//!
//! [`PipelineMetrics`] bundles every counter and stage timer the pipeline
//! emits, registered under stable dotted names. `estimate_inner` records
//! into a call-local registry (always enabled — it is what backs the
//! `NetworkEstimate::timings` compatibility view) and then absorbs the
//! call's snapshot into the caller-supplied registry, if any, so
//! long-lived registries (a service, the CLI) accumulate across calls
//! without the hot path ever sharing atomics between concurrent estimates.

use m3_telemetry::{Counter, MetricsRegistry, Timer};

/// Stable metric names emitted by the pipeline (`pipeline.` prefix) and by
/// the per-scenario flowSim runs it drives (`flowsim.` prefix).
pub mod names {
    /// Paths sampled for the estimate.
    pub const SAMPLED_PATHS: &str = "pipeline.sampled_paths";
    /// Distinct scenarios after content-hash deduplication.
    pub const UNIQUE_SCENARIOS: &str = "pipeline.unique_scenarios";
    /// flowSim simulations actually executed.
    pub const FLOWSIM_RUNS: &str = "pipeline.flowsim_runs";
    /// Scenarios answered from the scenario cache.
    pub const CACHE_HITS: &str = "pipeline.cache_hits";
    /// Scenarios probed but absent from the cache.
    pub const CACHE_MISSES: &str = "pipeline.cache_misses";
    /// Cache entries evicted while inserting this call's results.
    pub const CACHE_EVICTIONS: &str = "pipeline.cache_evictions";
    /// Samples that fell back to the uncorrected flowSim distribution.
    pub const DEGRADED_SAMPLES: &str = "pipeline.degraded_samples";
    /// Samples dropped entirely (flowSim-stage faults).
    pub const DROPPED_SAMPLES: &str = "pipeline.dropped_samples";
    /// Outer fluid event-loop iterations across this call's flowSim runs.
    pub const FLOWSIM_EVENTS: &str = "flowsim.events";
    /// Wall-clock budget checks performed by those runs.
    pub const FLOWSIM_WALL_CHECKS: &str = "flowsim.wall_checks";
    /// Stage wall-clock timers (seconds).
    pub const DECOMPOSE_SECONDS: &str = "pipeline.decompose_seconds";
    /// flowSim stage wall-clock timer (seconds).
    pub const FLOWSIM_SECONDS: &str = "pipeline.flowsim_seconds";
    /// Feature-extraction stage wall-clock timer (seconds).
    pub const FEATURES_SECONDS: &str = "pipeline.features_seconds";
    /// Forward-pass stage wall-clock timer (seconds).
    pub const FORWARD_SECONDS: &str = "pipeline.forward_seconds";
    /// Aggregation stage wall-clock timer (seconds).
    pub const AGGREGATE_SECONDS: &str = "pipeline.aggregate_seconds";
}

/// Handles to every pipeline metric, registered once per estimate call.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// `pipeline.sampled_paths`.
    pub sampled_paths: Counter,
    /// `pipeline.unique_scenarios`.
    pub unique_scenarios: Counter,
    /// `pipeline.flowsim_runs`.
    pub flowsim_runs: Counter,
    /// `pipeline.cache_hits`.
    pub cache_hits: Counter,
    /// `pipeline.cache_misses`.
    pub cache_misses: Counter,
    /// `pipeline.cache_evictions`.
    pub cache_evictions: Counter,
    /// `pipeline.degraded_samples`.
    pub degraded_samples: Counter,
    /// `pipeline.dropped_samples`.
    pub dropped_samples: Counter,
    /// `flowsim.events`.
    pub flowsim_events: Counter,
    /// `flowsim.wall_checks`.
    pub flowsim_wall_checks: Counter,
    /// `pipeline.decompose_seconds`.
    pub decompose: Timer,
    /// `pipeline.flowsim_seconds`.
    pub flowsim: Timer,
    /// `pipeline.features_seconds`.
    pub features: Timer,
    /// `pipeline.forward_seconds`.
    pub forward: Timer,
    /// `pipeline.aggregate_seconds`.
    pub aggregate: Timer,
}

impl PipelineMetrics {
    /// Register every pipeline metric on `registry` and return the handle
    /// bundle. Registering on a no-op registry yields inert handles.
    pub fn register(registry: &MetricsRegistry) -> Self {
        PipelineMetrics {
            sampled_paths: registry.counter(names::SAMPLED_PATHS),
            unique_scenarios: registry.counter(names::UNIQUE_SCENARIOS),
            flowsim_runs: registry.counter(names::FLOWSIM_RUNS),
            cache_hits: registry.counter(names::CACHE_HITS),
            cache_misses: registry.counter(names::CACHE_MISSES),
            cache_evictions: registry.counter(names::CACHE_EVICTIONS),
            degraded_samples: registry.counter(names::DEGRADED_SAMPLES),
            dropped_samples: registry.counter(names::DROPPED_SAMPLES),
            flowsim_events: registry.counter(names::FLOWSIM_EVENTS),
            flowsim_wall_checks: registry.counter(names::FLOWSIM_WALL_CHECKS),
            decompose: registry.timer(names::DECOMPOSE_SECONDS),
            flowsim: registry.timer(names::FLOWSIM_SECONDS),
            features: registry.timer(names::FEATURES_SECONDS),
            forward: registry.timer(names::FORWARD_SECONDS),
            aggregate: registry.timer(names::AGGREGATE_SECONDS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_creates_all_counters_and_timers() {
        let reg = MetricsRegistry::new();
        let m = PipelineMetrics::register(&reg);
        m.sampled_paths.add(3);
        m.flowsim.add_seconds(0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::SAMPLED_PATHS), Some(3));
        assert_eq!(snap.counter(names::FLOWSIM_RUNS), Some(0));
        assert_eq!(snap.timer_seconds(names::FLOWSIM_SECONDS), Some(0.5));
        assert_eq!(snap.counters.len(), 10);
        assert_eq!(snap.timers.len(), 5);
    }
}
