//! Hot-path kernel/arena benchmark and regression gate.
//!
//! Measures the two stages the register-blocked kernels and preallocated
//! workspaces rewrote, comparing the *retained reference implementations*
//! against the new paths inside one binary — a machine-independent ratio:
//!
//! * **forward**: per-sample `predict_reference` (reference-mode tape:
//!   scalar kernels, per-op heap allocation, parameter-value clones — the
//!   pre-overhaul cost model) vs the no-tape, arena-backed
//!   `predict_batch_pooled`. This ratio is **gated**: the new path must be
//!   at least [`MIN_FORWARD_SPEEDUP`]x faster, and its outputs must match
//!   the reference bit for bit. The batched tape reference is also timed,
//!   informationally — it already shares the tape's internal arena.
//! * **flowsim**: fresh-allocation runs (`try_run_flowsim_traced`, new
//!   collections per scenario) vs warm-workspace runs
//!   (`try_run_flowsim_traced_into` reusing one [`FluidWorkspace`] across
//!   all scenarios). Reported, not gated — the engine was already
//!   group-structured, so the workspace mainly removes allocator traffic.
//!
//! The end-to-end cold-estimate latency is also reported for context. As in
//! the other gates, comparisons use *interleaved minimum* times: mean-of-N
//! between two code paths at this run length is dominated by scheduler
//! noise. Results go to `BENCH_hotpath.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use m3_core::prelude::*;
use m3_flowsim::prelude::*;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use m3_workload::prelude::*;
use std::hint::black_box;
use std::time::Instant;

const K_PATHS: usize = 100;
const SEED: u64 = 13;
/// The forward hot path must beat the retained tape reference by this much.
const MIN_FORWARD_SPEEDUP: f64 = 4.0;
/// Interleaved A/B measurement pairs (after warmup) for the gated compare.
const GATE_PAIRS: usize = 12;

struct Setup {
    net: M3Net,
    datas: Vec<PathScenarioData>,
    inputs: Vec<SampleInput>,
    est: M3Estimator,
    topo: Topology,
    flows: Vec<FlowSpec>,
    cfg: SimConfig,
}

fn setup() -> Setup {
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 4_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 23,
        },
    );
    let cfg = SimConfig::default();
    let net = M3Net::new(ModelConfig::repro_default(SPEC_DIM), 7);

    // Materialize the same unique scenarios the pipeline would: decompose,
    // sample, dedupe by content, then flowSim + features for the forward
    // inputs.
    let index = PathIndex::build(&ft.topo, &w.flows);
    let sampled = index.sample_paths(K_PATHS, SEED);
    let mut datas: Vec<PathScenarioData> = sampled
        .iter()
        .map(|&g| PathScenarioData::from_group(&ft.topo, &w.flows, &index, g, &cfg))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut specs: Vec<Vec<f32>> = Vec::new();
    datas.retain(|d| {
        let spec = spec_vector(&cfg, d.fg_base_rtt, d.fg_bottleneck);
        let key = scenario_fingerprint(d, &spec, true);
        let fresh = seen.insert(key);
        if fresh {
            specs.push(spec);
        }
        fresh
    });
    let inputs: Vec<SampleInput> = datas
        .iter()
        .zip(&specs)
        .map(|(d, spec)| {
            let sim = d.run_flowsim();
            let (fg_map, bg_maps) = d.features(&sim);
            SampleInput {
                fg: fg_map.encode_log(),
                bg: bg_maps.iter().map(|m| m.encode_log()).collect(),
                spec: spec.clone(),
                use_context: true,
            }
        })
        .collect();

    let est = M3Estimator::new(M3Net::new(ModelConfig::repro_default(SPEC_DIM), 7));
    Setup {
        net,
        datas,
        inputs,
        est,
        topo: ft.topo.clone(),
        flows: w.flows,
        cfg,
    }
}

/// One timed invocation (ns).
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos() as f64
}

/// Interleaved minimum of two closures over `GATE_PAIRS` pairs, after one
/// warmup call each. Returns (a_min_ns, b_min_ns).
fn interleaved_min<A: FnMut(), B: FnMut()>(mut a: A, mut b: B) -> (f64, f64) {
    a();
    b();
    let (mut a_min, mut b_min) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..GATE_PAIRS {
        a_min = a_min.min(time_once(&mut a));
        b_min = b_min.min(time_once(&mut b));
    }
    (a_min, b_min)
}

fn bench_hotpath(c: &mut Criterion) {
    let s = setup();
    let budget = FluidBudget::UNLIMITED;

    // --- bit-identity check: the gate is meaningless if the fast path
    // computes something else ---
    let reference = s.net.predict_batch_reference(&s.inputs);
    let pool = ArenaPool::new();
    let fast = s.net.predict_batch_pooled(&s.inputs, &pool);
    assert_eq!(reference.len(), fast.len());
    for ((r, f), inp) in reference.iter().zip(&fast).zip(&s.inputs) {
        let rb: Vec<u32> = r.iter().map(|v| v.to_bits()).collect();
        let fb: Vec<u32> = f.iter().map(|v| v.to_bits()).collect();
        assert_eq!(rb, fb, "fast forward pass diverged from tape reference");
        let per_sample: Vec<u32> = s
            .net
            .predict_reference(inp)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(per_sample, fb, "per-sample reference diverged from batch");
    }

    // --- criterion views (mean-based, informational) ---
    c.bench_function("hotpath/forward_reference", |b| {
        b.iter(|| black_box(s.net.predict_batch_reference(&s.inputs)))
    });
    c.bench_function("hotpath/forward_pooled", |b| {
        b.iter(|| black_box(s.net.predict_batch_pooled(&s.inputs, &pool)))
    });
    c.bench_function("hotpath/flowsim_warm_workspace", |b| {
        let mut ws = FluidWorkspace::new();
        let mut records = Vec::new();
        b.iter(|| {
            for d in &s.datas {
                black_box(
                    d.try_run_flowsim_traced_into(&budget, None, &mut ws, &mut records)
                        .expect("flowsim"),
                );
            }
        })
    });

    // --- gated compare: per-sample tape reference vs pooled batch ---
    let (fwd_ref_min, fwd_fast_min) = interleaved_min(
        || {
            for inp in &s.inputs {
                black_box(s.net.predict_reference(inp));
            }
        },
        || {
            black_box(s.net.predict_batch_pooled(&s.inputs, &pool));
        },
    );
    let forward_speedup = fwd_ref_min / fwd_fast_min;
    // Informational: the batched tape reference (already shares the blocked
    // kernels and the tape's internal arena).
    let (fwd_batch_ref_min, _) = interleaved_min(
        || {
            black_box(s.net.predict_batch_reference(&s.inputs));
        },
        || {
            black_box(s.net.predict_batch_pooled(&s.inputs, &pool));
        },
    );

    // --- reported compare: flowsim fresh collections vs warm workspace ---
    let mut ws = FluidWorkspace::new();
    let mut records = Vec::new();
    let (flowsim_fresh_min, flowsim_warm_min) = interleaved_min(
        || {
            for d in &s.datas {
                black_box(d.try_run_flowsim_traced(&budget, None).expect("flowsim"));
            }
        },
        || {
            for d in &s.datas {
                black_box(
                    d.try_run_flowsim_traced_into(&budget, None, &mut ws, &mut records)
                        .expect("flowsim"),
                );
            }
        },
    );
    let flowsim_speedup = flowsim_fresh_min / flowsim_warm_min;

    // --- end-to-end cold estimate (context; no old pipeline to compare) ---
    let opts = EstimateOptions::default();
    let mut run_estimate = || {
        black_box(
            s.est
                .try_estimate(&s.topo, &s.flows, &s.cfg, K_PATHS, SEED, &opts)
                .expect("estimate"),
        );
    };
    run_estimate();
    let mut estimate_min = f64::INFINITY;
    for _ in 0..GATE_PAIRS {
        estimate_min = estimate_min.min(time_once(&mut run_estimate));
    }

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"k_paths\": {K_PATHS},\n  \
         \"unique_scenarios\": {},\n  \
         \"forward_reference_min_ms\": {:.3},\n  \
         \"forward_batch_reference_min_ms\": {:.3},\n  \
         \"forward_pooled_min_ms\": {:.3},\n  \
         \"forward_speedup\": {:.2},\n  \
         \"min_forward_speedup\": {MIN_FORWARD_SPEEDUP},\n  \
         \"flowsim_fresh_min_ms\": {:.3},\n  \
         \"flowsim_warm_min_ms\": {:.3},\n  \
         \"flowsim_speedup\": {:.2},\n  \
         \"estimate_cold_min_ms\": {:.3}\n}}\n",
        s.datas.len(),
        fwd_ref_min / 1e6,
        fwd_batch_ref_min / 1e6,
        fwd_fast_min / 1e6,
        forward_speedup,
        flowsim_fresh_min / 1e6,
        flowsim_warm_min / 1e6,
        flowsim_speedup,
        estimate_min / 1e6,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[hotpath] wrote {path}:\n{json}"),
        Err(e) => eprintln!("[hotpath] could not write {path}: {e}"),
    }
    assert!(
        forward_speedup >= MIN_FORWARD_SPEEDUP,
        "forward hot path speedup {forward_speedup:.2}x below the \
         {MIN_FORWARD_SPEEDUP}x gate"
    );
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
