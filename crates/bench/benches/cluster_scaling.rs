//! Cluster fan-out scaling benchmark and regression gate.
//!
//! Drains the same batch of estimation jobs through clusters of 1, 2, 4,
//! and 8 shards and gates on the aggregate speedup at 8 shards. Each
//! shard runs one worker whose per-attempt cost is dominated by
//! [`ServiceConfig::simulated_io`] — a deterministic sleep modeling the
//! blocking RPC/I-O component of a remote estimation shard — so the
//! measurement is machine-independent: shards scale by *overlapping*
//! blocking time, which works identically on one core or sixteen, and
//! the tiny compute share keeps the CPU out of the critical path.
//!
//! The job batch is stratified for the 8-shard layout (requests are
//! drawn so rendezvous routing spreads them evenly at 8 shards — the
//! balanced-workload regime a production cluster reaches when job count
//! far exceeds shard count). Intermediate shard counts are reported
//! informationally; hash placement at 2/4 shards of a batch stratified
//! for 8 may skew, which is honest sub-linearity, not noise.
//!
//! The gate is meaningless if sharding changes results, so the 8-shard
//! estimates are also checked bit-identical to the 1-shard ones.
//! Results go to `BENCH_cluster_scaling.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use m3_core::prelude::*;
use m3_nn::prelude::{M3Net, ModelConfig};
use m3_serve::prelude::*;
use std::time::{Duration, Instant};

/// Jobs per drain (8 per shard at the widest layout).
const JOBS: usize = 64;
/// Shard counts measured; the last one is gated.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Synthetic per-attempt shard I/O (the unit of overlap).
const SIM_IO: Duration = Duration::from_millis(25);
/// Required aggregate speedup of 8 shards over 1.
const MIN_CLUSTER_SPEEDUP: f64 = 6.0;
/// Timed drains per shard count (minimum taken).
const REPS: usize = 3;

fn tiny_net() -> M3Net {
    let cfg = ModelConfig {
        embed: 16,
        heads: 2,
        layers: 1,
        ff_hidden: 16,
        mlp_hidden: 32,
        ..ModelConfig::repro_default(SPEC_DIM)
    };
    M3Net::new(cfg, 3)
}

fn request(seed: u64) -> EstimateRequest {
    EstimateRequest::new(
        ScenarioSpec {
            topology: TopoSpec::FatTreeSmall { oversub: 2 },
            workload: WorkloadSpec {
                n_flows: 30,
                matrix: "B".into(),
                sizes: "WebServer".into(),
                sigma: 1.0,
                max_load: 0.4,
            },
            config: ConfigSpec::default(),
        },
        1,
        seed,
    )
}

/// Draw requests whose rendezvous placement is even at 8 shards: for each
/// shard, keep the first `JOBS / 8` candidate seeds routing to it.
fn stratified_requests() -> Vec<EstimateRequest> {
    let widest = *SHARD_COUNTS.last().unwrap_or(&8);
    let live: Vec<usize> = (0..widest).collect();
    let per_shard = JOBS / widest;
    let mut buckets: Vec<Vec<EstimateRequest>> = vec![Vec::new(); widest];
    let mut seed = 0u64;
    while buckets.iter().any(|b| b.len() < per_shard) {
        let req = request(seed);
        if let Some(shard) = route(routing_key(&req), &live) {
            if buckets[shard].len() < per_shard {
                buckets[shard].push(req);
            }
        }
        seed += 1;
    }
    // Interleave buckets so submission order does not burst one shard.
    let mut out = Vec::with_capacity(JOBS);
    for i in 0..per_shard {
        for b in &buckets {
            out.push(b[i].clone());
        }
    }
    out
}

fn cluster_config(shards: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        shard: ServiceConfig {
            workers: 1,
            queue_capacity: JOBS + 8,
            simulated_io: SIM_IO,
            ..ServiceConfig::default()
        },
        journal_dir: None,
        heartbeat_every: Duration::from_millis(2),
        // The fan-out measurement must never churn shards: a loaded
        // machine stalling a supervisor briefly is not a death.
        suspect_misses: 500,
        dead_misses: 1000,
        ..ClusterConfig::default()
    }
}

/// Drain the batch once through `cluster`; returns (elapsed, estimates in
/// submission order).
fn drain(cluster: &Cluster, jobs: &[EstimateRequest]) -> (Duration, Vec<NetworkEstimate>) {
    let start = Instant::now();
    let ids: Vec<u64> = jobs
        .iter()
        .map(|r| cluster.submit(r.clone()).expect("cluster accepts"))
        .collect();
    assert!(
        cluster.wait_idle(Duration::from_secs(600)),
        "cluster failed to drain"
    );
    let elapsed = start.elapsed();
    let estimates = ids
        .iter()
        .map(|&id| match cluster.outcome(id) {
            Some(JobOutcome::Completed { estimate, .. }) => estimate,
            other => panic!("job {id} did not complete: {other:?}"),
        })
        .collect();
    (elapsed, estimates)
}

fn assert_bit_identical(a: &[NetworkEstimate], b: &[NetworkEstimate]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.bucket_counts, y.bucket_counts, "job {i} counts");
        for (bx, by) in x.bucket_samples.iter().zip(&y.bucket_samples) {
            let xb: Vec<u64> = bx.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u64> = by.iter().map(|v| v.to_bits()).collect();
            assert_eq!(xb, yb, "job {i}: sharding changed the estimate");
        }
    }
}

fn bench_cluster_scaling(_c: &mut Criterion) {
    let jobs = stratified_requests();
    let mut min_drain_s = Vec::with_capacity(SHARD_COUNTS.len());
    let mut reference: Option<Vec<NetworkEstimate>> = None;
    for &shards in &SHARD_COUNTS {
        let cluster = Cluster::start(tiny_net(), cluster_config(shards)).expect("start cluster");
        let mut best = f64::INFINITY;
        for rep in 0..REPS {
            let (elapsed, estimates) = drain(&cluster, &jobs);
            best = best.min(elapsed.as_secs_f64());
            if rep == 0 {
                match &reference {
                    None => reference = Some(estimates),
                    Some(r) if shards == *SHARD_COUNTS.last().unwrap_or(&8) => {
                        assert_bit_identical(&estimates, r)
                    }
                    Some(_) => {}
                }
            }
        }
        let stats = cluster.stats();
        assert_eq!(stats.shard_deaths, 0, "no shard may die in the bench");
        cluster.shutdown();
        eprintln!(
            "[cluster_scaling] {shards} shard(s): min drain {:.1} ms ({:.1} jobs/s)",
            best * 1e3,
            JOBS as f64 / best
        );
        min_drain_s.push(best);
    }

    let speedups: Vec<f64> = min_drain_s.iter().map(|&t| min_drain_s[0] / t).collect();
    let gated = speedups[SHARD_COUNTS.len() - 1];
    let json = format!(
        "{{\n  \"bench\": \"cluster_scaling\",\n  \"jobs\": {JOBS},\n  \
         \"simulated_io_ms\": {},\n  \
         \"shard_counts\": [{}],\n  \
         \"min_drain_ms\": [{}],\n  \
         \"throughput_jobs_per_s\": [{}],\n  \
         \"speedup_vs_one_shard\": [{}],\n  \
         \"gated_speedup_at_8_shards\": {:.2},\n  \
         \"min_cluster_speedup\": {MIN_CLUSTER_SPEEDUP}\n}}\n",
        SIM_IO.as_millis(),
        SHARD_COUNTS.map(|s| s.to_string()).join(", "),
        min_drain_s
            .iter()
            .map(|t| format!("{:.3}", t * 1e3))
            .collect::<Vec<_>>()
            .join(", "),
        min_drain_s
            .iter()
            .map(|t| format!("{:.2}", JOBS as f64 / t))
            .collect::<Vec<_>>()
            .join(", "),
        speedups
            .iter()
            .map(|s| format!("{s:.2}"))
            .collect::<Vec<_>>()
            .join(", "),
        gated,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_cluster_scaling.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[cluster_scaling] wrote {path}:\n{json}"),
        Err(e) => eprintln!("[cluster_scaling] could not write {path}: {e}"),
    }
    assert!(
        gated >= MIN_CLUSTER_SPEEDUP,
        "8-shard aggregate speedup {gated:.2}x below the {MIN_CLUSTER_SPEEDUP}x gate"
    );
}

criterion_group!(benches, bench_cluster_scaling);
criterion_main!(benches);
