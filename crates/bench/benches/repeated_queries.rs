//! Repeated-query benchmark for the batched + cached estimate path.
//!
//! The workload of §5.4 is many `estimate` calls over the same network —
//! counterfactual sweeps and what-if queries. This bench measures:
//!
//! * `cold_estimate` — the full pipeline (decompose, flowSim, batched
//!   forward, aggregate) with no cross-run cache,
//! * `warm_cached_estimate` — the same query against a pre-warmed
//!   [`ScenarioCache`], which skips flowSim and the network,
//! * `prepared_batched_query` — the optimizer's spec-only re-query path
//!   (flowSim features fixed, one batched forward per candidate config).
//!
//! The cold/warm mean times and their speedup are written to
//! `BENCH_batched_cache.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use m3_workload::prelude::*;
use std::hint::black_box;

const K_PATHS: usize = 100;
const SEED: u64 = 11;

fn setup() -> (M3Estimator, FatTree, Vec<FlowSpec>, SimConfig) {
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 8_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 21,
        },
    );
    let net = M3Net::new(ModelConfig::repro_default(SPEC_DIM), 7);
    (M3Estimator::new(net), ft, w.flows, SimConfig::default())
}

fn bench_repeated_queries(c: &mut Criterion) {
    let (est, ft, flows, cfg) = setup();

    c.bench_function("repeated_queries/cold_estimate", |b| {
        b.iter(|| black_box(est.estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED)))
    });
    let cold_ns = c.last_mean_ns();

    let mut cache = ScenarioCache::new(4096);
    // Warm the cache with one full run; every later identical query hits.
    let warm_ref = est.estimate_with_cache(&ft.topo, &flows, &cfg, K_PATHS, SEED, &mut cache);
    assert!(warm_ref.p99().is_finite());
    c.bench_function("repeated_queries/warm_cached_estimate", |b| {
        b.iter(|| {
            black_box(est.estimate_with_cache(&ft.topo, &flows, &cfg, K_PATHS, SEED, &mut cache))
        })
    });
    let warm_ns = c.last_mean_ns();

    let prepared = PreparedWorkload::prepare(&ft.topo, &flows, &cfg, K_PATHS, SEED);
    c.bench_function("repeated_queries/prepared_batched_query", |b| {
        b.iter(|| black_box(prepared.estimate(&est, &cfg)))
    });
    let prepared_ns = c.last_mean_ns();

    // Confirm the warm path really skipped the expensive stages before
    // publishing numbers.
    let check = est.estimate_with_cache(&ft.topo, &flows, &cfg, K_PATHS, SEED, &mut cache);
    assert_eq!(check.timings.flowsim_runs, 0, "warm run must not simulate");

    let speedup = cold_ns / warm_ns;
    let json = format!(
        "{{\n  \"bench\": \"repeated_queries\",\n  \"k_paths\": {K_PATHS},\n  \
         \"cold_estimate_ms\": {:.3},\n  \"warm_cached_estimate_ms\": {:.3},\n  \
         \"prepared_batched_query_ms\": {:.3},\n  \"warm_speedup\": {:.2},\n  \
         \"cache_entries\": {},\n  \"cache_hit_rate\": {:.4}\n}}\n",
        cold_ns / 1e6,
        warm_ns / 1e6,
        prepared_ns / 1e6,
        speedup,
        cache.len(),
        cache.hit_rate(),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_batched_cache.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[repeated_queries] wrote {path}:\n{json}"),
        Err(e) => eprintln!("[repeated_queries] could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_repeated_queries);
criterion_main!(benches);
