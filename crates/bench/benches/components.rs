//! Criterion micro/meso benchmarks of every stage in the m3 pipeline and of
//! the substrates, mirroring the paper's performance claims:
//!
//! * flowSim throughput (the "800k flows in ~1s, 687x over ns-3" claim),
//! * packet-level simulator event throughput (the ns-3 stand-in),
//! * feature-map extraction,
//! * transformer+MLP inference latency (CPU, §4),
//! * end-to-end per-path m3 prediction,
//! * aggregation of k path distributions,
//! * one Parsimon link-level simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use m3_core::prelude::*;
use m3_flowsim::prelude::*;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use m3_workload::prelude::*;
use std::hint::black_box;

fn path_scenario(n_fg: usize, n_bg: usize, seed: u64) -> PathScenario {
    PathScenario::generate(&PathScenarioSpec {
        n_foreground: n_fg,
        n_background: n_bg,
        seed,
        ..PathScenarioSpec::default()
    })
}

fn bench_flowsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("flowsim");
    g.sample_size(10);
    for &n in &[10_000usize, 50_000, 200_000] {
        let ps = path_scenario(n / 4, n - n / 4, 1);
        let (topo, flows) = ps.to_fluid(1000);
        g.bench_with_input(BenchmarkId::new("simulate", n), &n, |b, _| {
            b.iter(|| black_box(simulate_fluid(&topo, &flows)))
        });
    }
    g.finish();
}

fn bench_netsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    g.sample_size(10);
    let ps = path_scenario(200, 600, 2);
    g.bench_function("path_scenario_800_flows", |b| {
        b.iter(|| black_box(ps.ground_truth(SimConfig::default())))
    });
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 5_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 3,
        },
    );
    g.bench_function("fat_tree_5k_flows", |b| {
        b.iter(|| {
            black_box(run_simulation(
                &ft.topo,
                SimConfig::default(),
                w.flows.clone(),
            ))
        })
    });
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    let mut g = c.benchmark_group("features");
    let samples: Vec<(u64, f64)> = (0..100_000)
        .map(|i| (50 + (i * 7919) % 1_000_000, 1.0 + (i % 997) as f64 / 100.0))
        .collect();
    g.bench_function("feature_map_100k_samples", |b| {
        b.iter(|| black_box(FeatureMap::feature(&samples)))
    });
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");
    let net = M3Net::new(ModelConfig::repro_default(SPEC_DIM), 7);
    let sample = SampleInput {
        fg: vec![0.5; FEAT_DIM],
        bg: vec![vec![0.3; FEAT_DIM]; 6],
        spec: vec![0.4; SPEC_DIM],
        use_context: true,
    };
    g.bench_function("m3net_predict_6hops", |b| {
        b.iter(|| black_box(net.predict(&sample)))
    });
    g.finish();
}

fn bench_per_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("per_path");
    g.sample_size(10);
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 20_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 5,
        },
    );
    let cfg = SimConfig::default();
    let index = PathIndex::build(&ft.topo, &w.flows);
    let g_idx = index.sample_paths(1, 1)[0];
    let data = PathScenarioData::from_group(&ft.topo, &w.flows, &index, g_idx, &cfg);
    let est = M3Estimator::new(M3Net::new(ModelConfig::repro_default(SPEC_DIM), 7));
    g.bench_function("m3_predict_one_path", |b| {
        b.iter(|| black_box(est.predict_path(&data, &cfg)))
    });
    g.bench_function("decompose_20k_flows", |b| {
        b.iter(|| black_box(PathIndex::build(&ft.topo, &w.flows).num_paths()))
    });
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation");
    let dists: Vec<PathDistribution> = (0..500)
        .map(|i| {
            let samples: Vec<(u64, f64)> = (0..50)
                .map(|j| (100 + j * 999, 1.0 + ((i + j) % 37) as f64 / 5.0))
                .collect();
            PathDistribution::from_samples(&samples)
        })
        .collect();
    g.bench_function("aggregate_500_paths", |b| {
        b.iter(|| black_box(NetworkEstimate::aggregate(&dists).p99()))
    });
    g.finish();
}

fn bench_parsimon(c: &mut Criterion) {
    let mut g = c.benchmark_group("parsimon");
    g.sample_size(10);
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 5_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 6,
        },
    );
    let cfg = SimConfig::default();
    g.bench_function("parsimon_5k_flows", |b| {
        b.iter(|| black_box(m3_parsimon::parsimon_estimate(&ft.topo, &w.flows, &cfg)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_flowsim,
    bench_netsim,
    bench_features,
    bench_inference,
    bench_per_path,
    bench_aggregation,
    bench_parsimon
);
criterion_main!(benches);
