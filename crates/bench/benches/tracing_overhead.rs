//! Causal-tracing overhead benchmark.
//!
//! The trace plumbing is always present in the pipeline — a noop
//! [`TraceCtx`] costs one branch per trace point — so the gate that
//! matters is: estimates with tracing *disabled* must be indistinguishable
//! from the default-options baseline. The enforced bound mirrors the
//! telemetry gate: under 3% relative overhead.
//!
//! Mean-of-N comparisons between two identical code paths are dominated by
//! scheduler noise at this run length, so the gate compares *interleaved
//! minimum* times (best-case alternating A/B runs share the same quiet
//! windows); the criterion benches report the usual mean-based view.
//!
//! Results go to `BENCH_tracing_overhead.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use m3_telemetry::{TraceCtx, TraceRecorder};
use m3_workload::prelude::*;
use std::hint::black_box;
use std::time::Instant;

const K_PATHS: usize = 50;
const SEED: u64 = 13;
/// Maximum tolerated relative overhead of the (noop) trace plumbing.
const MAX_OVERHEAD_FRAC: f64 = 0.03;
/// Interleaved A/B measurement pairs (after warmup) for the gated compare.
const GATE_PAIRS: usize = 12;

fn setup() -> (M3Estimator, FatTree, Vec<FlowSpec>, SimConfig) {
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 4_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 23,
        },
    );
    let net = M3Net::new(ModelConfig::repro_default(SPEC_DIM), 7);
    (M3Estimator::new(net), ft, w.flows, SimConfig::default())
}

/// Minimum wall time (ns) of `f` over interleaved calls driven by the
/// caller's loop — just one timed invocation.
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos() as f64
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let (est, ft, flows, cfg) = setup();
    let run = |opts: &EstimateOptions| {
        est.try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, opts)
            .expect("estimate")
    };

    // Baseline: default options (which already carry the noop TraceCtx).
    let baseline_opts = EstimateOptions::default();
    // Disabled tracing, explicitly constructed: the gated comparison.
    let noop_opts = EstimateOptions {
        trace: TraceCtx::new(TraceRecorder::noop(), 1),
        ..EstimateOptions::default()
    };
    // Live recorder, coarse probe stride: informational, not gated.
    let recorder = TraceRecorder::new(1 << 20);
    let mut ctx = TraceCtx::new(recorder.clone(), 1);
    ctx.probe_stride_ns = 1_000_000;
    let live_opts = EstimateOptions {
        trace: ctx,
        ..EstimateOptions::default()
    };

    c.bench_function("tracing_overhead/baseline", |b| {
        b.iter(|| black_box(run(&baseline_opts)))
    });
    c.bench_function("tracing_overhead/noop_trace", |b| {
        b.iter(|| black_box(run(&noop_opts)))
    });
    c.bench_function("tracing_overhead/live_recorder", |b| {
        b.iter(|| black_box(run(&live_opts)))
    });
    assert!(
        !recorder.snapshot().events.is_empty(),
        "live recorder saw no trace events"
    );

    // Gated comparison: interleaved minimum times.
    let mut run_baseline = || {
        black_box(run(&baseline_opts));
    };
    let mut run_noop = || {
        black_box(run(&noop_opts));
    };
    run_baseline();
    run_noop();
    let (mut baseline_min, mut noop_min) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..GATE_PAIRS {
        baseline_min = baseline_min.min(time_once(&mut run_baseline));
        noop_min = noop_min.min(time_once(&mut run_noop));
    }

    let overhead_frac = (noop_min - baseline_min) / baseline_min;
    let json = format!(
        "{{\n  \"bench\": \"tracing_overhead\",\n  \"k_paths\": {K_PATHS},\n  \
         \"baseline_min_ms\": {:.3},\n  \"noop_trace_min_ms\": {:.3},\n  \
         \"overhead_frac\": {:.4},\n  \"max_overhead_frac\": {MAX_OVERHEAD_FRAC}\n}}\n",
        baseline_min / 1e6,
        noop_min / 1e6,
        overhead_frac,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_tracing_overhead.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[tracing_overhead] wrote {path}:\n{json}"),
        Err(e) => eprintln!("[tracing_overhead] could not write {path}: {e}"),
    }
    assert!(
        overhead_frac < MAX_OVERHEAD_FRAC,
        "disabled-tracing overhead {overhead_frac:.4} exceeds {MAX_OVERHEAD_FRAC}"
    );
}

criterion_group!(benches, bench_tracing_overhead);
criterion_main!(benches);
