//! Telemetry overhead benchmark.
//!
//! The estimation pipeline records into a call-local registry on every run
//! (it backs the `timings` view), so the only *optional* cost of metrics
//! is absorbing the per-call snapshot into a caller-supplied registry.
//! This bench runs the same estimate with `metrics: None` and with a live
//! long-lived registry and asserts the relative overhead stays under 2%.
//!
//! Results go to `BENCH_telemetry_overhead.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use m3_telemetry::MetricsRegistry;
use m3_workload::prelude::*;
use std::hint::black_box;

const K_PATHS: usize = 100;
const SEED: u64 = 13;
/// Maximum tolerated relative overhead of live metrics vs none.
const MAX_OVERHEAD_FRAC: f64 = 0.02;

fn setup() -> (M3Estimator, FatTree, Vec<FlowSpec>, SimConfig) {
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 8_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 23,
        },
    );
    let net = M3Net::new(ModelConfig::repro_default(SPEC_DIM), 7);
    (M3Estimator::new(net), ft, w.flows, SimConfig::default())
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let (est, ft, flows, cfg) = setup();
    let run = |opts: &EstimateOptions| {
        est.try_estimate(&ft.topo, &flows, &cfg, K_PATHS, SEED, opts)
            .expect("estimate")
    };

    let baseline_opts = EstimateOptions::default();
    c.bench_function("telemetry_overhead/no_registry", |b| {
        b.iter(|| black_box(run(&baseline_opts)))
    });
    let baseline_ns = c.last_mean_ns();

    let registry = MetricsRegistry::new();
    let live_opts = EstimateOptions {
        metrics: Some(registry.clone()),
        ..EstimateOptions::default()
    };
    c.bench_function("telemetry_overhead/live_registry", |b| {
        b.iter(|| black_box(run(&live_opts)))
    });
    let live_ns = c.last_mean_ns();

    // The live registry must actually have accumulated the runs.
    let snap = registry.snapshot();
    assert!(
        snap.counter("pipeline.sampled_paths").unwrap_or(0) >= K_PATHS as u64,
        "live registry saw no pipeline metrics"
    );

    let overhead_frac = (live_ns - baseline_ns) / baseline_ns;
    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \"k_paths\": {K_PATHS},\n  \
         \"no_registry_ms\": {:.3},\n  \"live_registry_ms\": {:.3},\n  \
         \"overhead_frac\": {:.4},\n  \"max_overhead_frac\": {MAX_OVERHEAD_FRAC}\n}}\n",
        baseline_ns / 1e6,
        live_ns / 1e6,
        overhead_frac,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_telemetry_overhead.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[telemetry_overhead] wrote {path}:\n{json}"),
        Err(e) => eprintln!("[telemetry_overhead] could not write {path}: {e}"),
    }
    assert!(
        overhead_frac < MAX_OVERHEAD_FRAC,
        "live metrics overhead {overhead_frac:.4} exceeds {MAX_OVERHEAD_FRAC}"
    );
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
