//! # m3-bench
//!
//! Shared utilities for the experiment binaries that regenerate every table
//! and figure of the paper, plus the criterion micro-benchmarks.
//!
//! Scale knobs are environment variables so a laptop run finishes in
//! minutes and a beefier machine can approach paper scale:
//!
//! | Variable        | Meaning                                   | Default |
//! |-----------------|-------------------------------------------|---------|
//! | `M3_FLOWS`      | flows per full-network scenario           | 100000  |
//! | `M3_PATHS`      | sampled paths per estimate (paper: 500)   | 100     |
//! | `M3_SCENARIOS`  | scenarios per sweep (paper: 192)          | 24      |
//! | `M3_MODEL`      | checkpoint path                           | assets/m3-model.ckpt |
//!
//! Every binary prints the paper-style rows to stdout and appends a JSON
//! record under `results/`.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Read an integer scale knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Flows per full-network scenario.
pub fn n_flows() -> usize {
    env_usize("M3_FLOWS", 100_000)
}

/// Sampled paths per estimate.
pub fn n_paths() -> usize {
    env_usize("M3_PATHS", 100)
}

/// Scenarios per sweep.
pub fn n_scenarios() -> usize {
    env_usize("M3_SCENARIOS", 24)
}

/// Checkpoint path.
pub fn model_path() -> PathBuf {
    std::env::var("M3_MODEL")
        .unwrap_or_else(|_| "assets/m3-model.ckpt".to_string())
        .into()
}

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

/// Load the trained model, or train a small fallback on the spot (slower
/// first run; the `train` binary produces the real checkpoint).
pub fn load_or_train_model() -> M3Net {
    let path = model_path();
    if path.exists() {
        match m3_nn::checkpoint::load_file(&path) {
            Ok(net) => {
                eprintln!(
                    "[m3-bench] loaded model {} ({} params)",
                    path.display(),
                    net.num_params()
                );
                return net;
            }
            Err(e) => eprintln!(
                "[m3-bench] checkpoint {} unusable ({e}); retraining",
                path.display()
            ),
        }
    }
    eprintln!(
        "[m3-bench] no checkpoint at {}; training a quick fallback model",
        path.display()
    );
    let cfg = TrainConfig {
        n_scenarios: 48,
        epochs: 12,
        ..TrainConfig::default()
    };
    let dataset = build_dataset(&cfg);
    let (net, _) = train(&cfg, &dataset);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = m3_nn::checkpoint::save_file(&net, cfg.seed, &path) {
        eprintln!("[m3-bench] could not save fallback checkpoint: {e}");
    }
    net
}

/// Simple fixed-width table printer for paper-style rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Append a JSON experiment record under results/.
pub fn write_result<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("[m3-bench] could not write {}: {e}", path.display());
            } else {
                eprintln!("[m3-bench] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("[m3-bench] serialize {name}: {e}"),
    }
}

/// Human-readable duration.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 60 {
        format!("{}m{:02}s", d.as_secs() / 60, d.as_secs() % 60)
    } else if d.as_secs() >= 1 {
        format!("{:.1}s", d.as_secs_f64())
    } else {
        format!("{}ms", d.as_millis())
    }
}

/// A materialized full-network scenario.
pub struct FullScenario {
    pub ft: FatTree,
    pub flows: Vec<FlowSpec>,
    pub config: SimConfig,
    pub label: String,
}

/// Materialize a full-network scenario from Table 3-style parameters.
#[allow(clippy::too_many_arguments)]
pub fn build_full_scenario(
    oversub: usize,
    matrix: &str,
    workload: &str,
    sigma: f64,
    max_load: f64,
    config: SimConfig,
    n: usize,
    seed: u64,
) -> FullScenario {
    use m3_workload::prelude::*;
    let ft = FatTree::build(FatTreeSpec::small(oversub));
    let routing = Routing::new(&ft.topo);
    let sc = Scenario {
        n_flows: n,
        matrix_name: matrix.to_string(),
        sizes: SizeDistribution::by_name(workload)
            .unwrap_or_else(|| panic!("unknown workload size distribution {workload:?}")),
        sigma,
        max_load,
        seed,
    };
    let w = generate(&ft, &routing, &sc);
    FullScenario {
        ft,
        flows: w.flows,
        config,
        label: format!("{matrix}/{workload}/{oversub}:1/s{sigma}/l{max_load:.2}"),
    }
}

/// p99 relative error vs ground truth, the paper's headline metric (Eq. 4).
pub fn p99_error(estimate: &NetworkEstimate, truth: &NetworkEstimate) -> f64 {
    relative_error(estimate.p99(), truth.p99())
}

/// One scenario's results in the m3-vs-Parsimon sweep (Figs. 10-11).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SweepRecord {
    pub label: String,
    pub matrix: String,
    pub workload: String,
    pub oversub: usize,
    pub sigma: f64,
    pub max_load: f64,
    pub gt_p99: f64,
    pub gt_secs: f64,
    pub m3_p99: f64,
    pub m3_secs: f64,
    pub parsimon_p99: f64,
    pub parsimon_secs: f64,
    /// Per-stage breakdown of the m3 estimate (absent in old caches).
    #[serde(default)]
    pub m3_stage_timings: StageTimings,
}

impl SweepRecord {
    pub fn m3_err(&self) -> f64 {
        relative_error(self.m3_p99, self.gt_p99)
    }
    pub fn parsimon_err(&self) -> f64 {
        relative_error(self.parsimon_p99, self.gt_p99)
    }
}

/// Run (or reuse from cache) the §5.2 DCTCP sensitivity sweep: N random
/// Table 3 scenarios, each estimated by ground truth, m3, and Parsimon.
/// Results are cached under results/sweep_cache.json keyed by scale.
pub fn dctcp_sweep(
    estimator: &M3Estimator,
    n_scen: usize,
    flows: usize,
    paths: usize,
    seed: u64,
) -> Vec<SweepRecord> {
    use m3_parsimon::parsimon_estimate;
    use m3_workload::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[derive(serde::Serialize, serde::Deserialize)]
    struct Cache {
        n_scen: usize,
        flows: usize,
        paths: usize,
        seed: u64,
        records: Vec<SweepRecord>,
    }
    let cache_path = Path::new("results/sweep_cache.json");
    if let Ok(bytes) = std::fs::read(cache_path) {
        if let Ok(c) = serde_json::from_slice::<Cache>(&bytes) {
            if (c.n_scen, c.flows, c.paths, c.seed) == (n_scen, flows, paths, seed) {
                eprintln!(
                    "[m3-bench] reusing cached sweep ({} scenarios)",
                    c.records.len()
                );
                return c.records;
            }
        }
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut records = Vec::with_capacity(n_scen);
    // Scenario cache shared across the sweep: repeated path scenarios
    // (and re-runs of the sweep in the same process) skip flowSim + NN.
    let mut scenario_cache = ScenarioCache::new(8192);
    for i in 0..n_scen {
        let p = sample_test_point(&mut rng, Some(CcProtocol::Dctcp));
        let sc = build_full_scenario(
            p.oversub,
            &p.matrix_name,
            &p.workload_name,
            p.sigma,
            p.max_load,
            p.config,
            flows,
            p.seed,
        );
        let (gt_out, gt_time) = timed(|| run_simulation(&sc.ft.topo, sc.config, sc.flows.clone()));
        let gt = ground_truth_estimate(&gt_out.records);
        let (m3_est, m3_time) = timed(|| {
            estimator.estimate_with_cache(
                &sc.ft.topo,
                &sc.flows,
                &sc.config,
                paths,
                seed ^ i as u64,
                &mut scenario_cache,
            )
        });
        let (pars, pars_time) = timed(|| parsimon_estimate(&sc.ft.topo, &sc.flows, &sc.config));
        let pars_est = {
            let samples = m3_parsimon::slowdown_samples(&pars);
            let dist = PathDistribution::from_samples(&samples);
            let mut est = NetworkEstimate::aggregate(&[dist]);
            // Parsimon sees every flow; counts are exact.
            let mut counts = [0usize; NUM_OUTPUT_BUCKETS];
            for (size, _) in &samples {
                counts[output_bucket(*size)] += 1;
            }
            est.bucket_counts = counts;
            est
        };
        let rec = SweepRecord {
            label: sc.label.clone(),
            matrix: p.matrix_name.clone(),
            workload: p.workload_name.clone(),
            oversub: p.oversub,
            sigma: p.sigma,
            max_load: p.max_load,
            gt_p99: gt.p99(),
            gt_secs: gt_time.as_secs_f64(),
            m3_p99: m3_est.p99(),
            m3_secs: m3_time.as_secs_f64(),
            parsimon_p99: pars_est.p99(),
            parsimon_secs: pars_time.as_secs_f64(),
            m3_stage_timings: m3_est.timings.clone(),
        };
        eprintln!(
            "[sweep {i:3}/{n_scen}] {} gt={:.2} m3={:.2} ({:+.1}%) pars={:.2} ({:+.1}%)",
            rec.label,
            rec.gt_p99,
            rec.m3_p99,
            rec.m3_err() * 100.0,
            rec.parsimon_p99,
            rec.parsimon_err() * 100.0
        );
        records.push(rec);
    }
    let _ = std::fs::create_dir_all("results");
    let cache = Cache {
        n_scen,
        flows,
        paths,
        seed,
        records: records.clone(),
    };
    if let Ok(s) = serde_json::to_string(&cache) {
        let _ = std::fs::write(cache_path, s);
    }
    records
}
