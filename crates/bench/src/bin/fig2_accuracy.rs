//! Fig. 2(c) and 2(e): accuracy of per-path packet simulation (ns-3-path)
//! relative to the full-network simulation, per sampled path, and its
//! robustness to path length and foreground flow count.
//!
//! For each sampled path we compare the p99 slowdown of its foreground
//! flows in the *full* simulation against the same statistic from the
//! isolated path-level simulation.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct PathError {
    mix: String,
    hops: usize,
    n_fg: usize,
    full_p99: f64,
    path_p99: f64,
    rel_err: f64,
}

fn main() {
    let n = n_flows();
    let k = env_usize("M3_ACC_PATHS", 30);
    let mixes = [
        ("Mix 1", "A", "CacheFollower", 4usize, 0.4246),
        ("Mix 2", "B", "WebServer", 1, 0.2846),
        ("Mix 3", "C", "WebServer", 2, 0.7383),
    ];
    let cfg = SimConfig::default();
    let mut all: Vec<PathError> = Vec::new();
    for (i, (name, matrix, workload, oversub, load)) in mixes.iter().enumerate() {
        eprintln!("[fig2acc] {name}: ground truth...");
        let sc = build_full_scenario(
            *oversub,
            matrix,
            workload,
            1.0,
            *load,
            cfg,
            n,
            100 + i as u64,
        );
        let gt_out = run_simulation(&sc.ft.topo, sc.config, sc.flows.clone());
        let sldn_by_id: HashMap<u32, f64> = gt_out
            .records
            .iter()
            .map(|r| (r.id, r.slowdown()))
            .collect();
        let index = PathIndex::build(&sc.ft.topo, &sc.flows);
        // Only paths with enough fg flows yield a meaningful per-path p99.
        let sampled: Vec<usize> = index
            .sample_paths(k * 4, 13)
            .into_iter()
            .filter(|&g| index.foreground_of(g).len() >= 2)
            .take(k)
            .collect();
        for &g in &sampled {
            let data = PathScenarioData::from_group(&sc.ft.topo, &sc.flows, &index, g, &cfg);
            let mut full: Vec<f64> = index
                .foreground_of(g)
                .iter()
                .filter_map(|&fi| sldn_by_id.get(&sc.flows[fi as usize].id).copied())
                .collect();
            if full.len() < 3 {
                continue;
            }
            let full_p99 = m3_netsim::stats::percentile_unsorted(&mut full, 99.0);
            let path_samples = data.run_ns3_path(cfg);
            let mut path_sldn: Vec<f64> = path_samples.iter().map(|s| s.1).collect();
            let path_p99 = m3_netsim::stats::percentile_unsorted(&mut path_sldn, 99.0);
            all.push(PathError {
                mix: name.to_string(),
                hops: data.num_hops(),
                n_fg: data.fg.len(),
                full_p99,
                path_p99,
                rel_err: relative_error(path_p99, full_p99),
            });
        }
    }
    // Fig 2(c): error CDF per mix; Fig 2(e): error grouped by hops / fg count.
    let mut rows = Vec::new();
    for (name, _, _, _, _) in &mixes {
        let errs: Vec<f64> = all
            .iter()
            .filter(|e| &e.mix == name)
            .map(|e| e.rel_err)
            .collect();
        if errs.is_empty() {
            continue;
        }
        let s = ErrorSummary::from_signed(&errs);
        rows.push(vec![
            name.to_string(),
            format!("{}", s.n),
            format!("{:.1}%", s.mean_abs * 100.0),
            format!("{:.1}%", s.median_abs * 100.0),
            format!("{:.1}%", s.max_abs * 100.0),
        ]);
    }
    print_table(
        "Fig 2(c): ns-3-path vs full simulation, per-path p99 slowdown error",
        &["Mix", "paths", "mean|err|", "median|err|", "max|err|"],
        &rows,
    );
    let mut rows = Vec::new();
    for hops in [2usize, 4, 6] {
        let errs: Vec<f64> = all
            .iter()
            .filter(|e| e.hops == hops)
            .map(|e| e.rel_err)
            .collect();
        if errs.is_empty() {
            continue;
        }
        let s = ErrorSummary::from_signed(&errs);
        rows.push(vec![
            format!("{hops} links"),
            format!("{}", s.n),
            format!("{:+.1}%", s.p25 * 100.0),
            format!("{:+.1}%", s.p50 * 100.0),
            format!("{:+.1}%", s.p75 * 100.0),
        ]);
    }
    print_table(
        "Fig 2(e): error by path length (violin quartiles)",
        &["Path length", "paths", "p25", "median", "p75"],
        &rows,
    );
    write_result("fig2_accuracy", &all);
}
