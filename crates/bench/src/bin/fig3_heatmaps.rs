//! Fig. 3: flowSim slowdown heatmaps on a single link, varying one workload
//! dimension per row — burstiness sigma, max load, and size distribution.
//! Demonstrates that flowSim feature maps are sensitive to workload
//! character (§2.2).
//!
//! Output: one 10-bucket x 10-percentile grid per panel (percentiles
//! sampled every 10th from the full 100), plus JSON with the full maps.

use m3_bench::*;
use m3_core::prelude::*;
use m3_flowsim::prelude::*;
use m3_workload::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Panel {
    label: String,
    /// 10 x 100 feature map.
    map: Vec<f32>,
}

fn single_link_map(sizes: SizeDistribution, sigma: f64, load: f64, n: usize) -> Vec<f32> {
    // Single 10G link; flows capped by 10G NICs on both sides.
    let spec = PathScenarioSpec {
        n_hops: 1,
        n_foreground: n,
        n_background: 0,
        sizes,
        sigma,
        max_load: load,
        seed: 33,
        ..PathScenarioSpec::default()
    };
    let ps = PathScenario::generate(&spec);
    let (ft, flows) = ps.to_fluid(1000);
    let recs = simulate_fluid(&ft, &flows);
    let samples: Vec<(u64, f64)> = recs.iter().map(|r| (r.size, r.slowdown())).collect();
    FeatureMap::feature(&samples).data
}

fn print_grid(label: &str, map: &[f32]) {
    println!("\n-- {label} (rows: size buckets small->large; cols: p10..p100) --");
    for b in 0..SIZE_BUCKETS.len() {
        let row: Vec<String> = (0..10)
            .map(|c| {
                let v = map[b * 100 + (c * 10 + 9)];
                if v == 0.0 {
                    "   -  ".into()
                } else {
                    format!("{v:6.2}")
                }
            })
            .collect();
        println!("b{b}: {}", row.join(" "));
    }
}

fn main() {
    let n = env_usize("M3_FIG3_FLOWS", 20_000);
    let mut panels = Vec::new();
    // Row 1: burstiness sweep (CacheFollower, 50% load).
    for sigma in [1.0, 1.5, 2.0] {
        let map = single_link_map(SizeDistribution::cache_follower(), sigma, 0.5, n);
        print_grid(&format!("sigma = {sigma}"), &map);
        panels.push(Panel {
            label: format!("sigma={sigma}"),
            map,
        });
    }
    // Row 2: load sweep (CacheFollower, sigma 1.5).
    for load in [0.2, 0.5, 0.8] {
        let map = single_link_map(SizeDistribution::cache_follower(), 1.5, load, n);
        print_grid(&format!("load = {load}"), &map);
        panels.push(Panel {
            label: format!("load={load}"),
            map,
        });
    }
    // Row 3: workload sweep (sigma 1.5, 50% load).
    for name in ["Hadoop", "CacheFollower", "WebServer"] {
        let map = single_link_map(SizeDistribution::by_name(name).unwrap(), 1.5, 0.5, n);
        print_grid(name, &map);
        panels.push(Panel {
            label: name.to_string(),
            map,
        });
    }
    // Shape checks the paper calls out: higher burstiness and higher load
    // raise tail slowdowns.
    let tail = |p: &Panel| -> f64 {
        // Mean over non-empty buckets of the p99 column.
        let vals: Vec<f64> = (0..10)
            .map(|b| p.map[b * 100 + 98] as f64)
            .filter(|&v| v > 0.0)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    println!(
        "\ntail(sigma=1) {:.2} < tail(sigma=2) {:.2}: {}",
        tail(&panels[0]),
        tail(&panels[2]),
        tail(&panels[0]) < tail(&panels[2])
    );
    println!(
        "tail(load=20%) {:.2} < tail(load=80%) {:.2}: {}",
        tail(&panels[3]),
        tail(&panels[5]),
        tail(&panels[3]) < tail(&panels[5])
    );
    write_result("fig3_heatmaps", &panels);
}
