//! Fig. 16: component ablation on held-out synthetic parking-lot scenarios
//! (Table 2 space, fresh seeds): flowSim alone vs "m3 w/o context" (trained
//! with the background context zeroed) vs full m3.
//!
//! Shape to reproduce: flowSim underestimates p99 slowdowns (errors toward
//! -80% on long paths / small flows); the ML correction removes most of the
//! error; context features improve accuracy further and cut variance.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::stats::ErrorSummary;
use serde::Serialize;

#[derive(Serialize)]
struct AblationPoint {
    hops: usize,
    flowsim_err: f64,
    noctx_err: f64,
    m3_err: f64,
}

fn main() {
    let net = load_or_train_model();
    let noctx_path = model_path().with_file_name("m3-model-noctx.ckpt");
    let noctx = match m3_nn::checkpoint::load_file(&noctx_path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("[fig16] no-context checkpoint missing ({e}); run the `train` binary first");
            std::process::exit(1);
        }
    };
    let n_eval = env_usize("M3_ABLATION_SCENARIOS", 45);
    let mut points = Vec::new();
    for i in 0..n_eval {
        let hops = [2usize, 4, 6][i % 3];
        // Fresh seeds (offset far from the training stream).
        let point = training_point_with_hops(hops, 900_000 + i as u64);
        let ex = make_example(&point, 120, 360, true);
        let truth = PathDistribution::from_samples(&ex.truth_fg);
        let truth_p99 = NetworkEstimate::aggregate(&[truth]).p99();
        let flowsim = PathDistribution::from_samples(&ex.flowsim_fg);
        let flowsim_p99 = NetworkEstimate::aggregate(&[flowsim]).p99();
        let counts = {
            let mut c = [0usize; NUM_OUTPUT_BUCKETS];
            for &(s, _) in &ex.truth_fg {
                c[output_bucket(s)] += 1;
            }
            c
        };
        let m3_p99 = {
            let out = m3_core::features::decode_log(&net.predict(&ex.input));
            let d = PathDistribution::from_model_output(&out, counts);
            NetworkEstimate::aggregate(&[d]).p99()
        };
        let noctx_p99 = {
            let mut input = ex.input.clone();
            input.use_context = false;
            let out = m3_core::features::decode_log(&noctx.predict(&input));
            let d = PathDistribution::from_model_output(&out, counts);
            NetworkEstimate::aggregate(&[d]).p99()
        };
        points.push(AblationPoint {
            hops,
            flowsim_err: m3_netsim::stats::relative_error(flowsim_p99, truth_p99),
            noctx_err: m3_netsim::stats::relative_error(noctx_p99, truth_p99),
            m3_err: m3_netsim::stats::relative_error(m3_p99, truth_p99),
        });
        eprintln!(
            "[fig16] {i:3} hops={hops} flowSim {:+.1}% noctx {:+.1}% m3 {:+.1}%",
            points.last().unwrap().flowsim_err * 100.0,
            points.last().unwrap().noctx_err * 100.0,
            points.last().unwrap().m3_err * 100.0
        );
    }
    let mut rows = Vec::new();
    let groups: Vec<(String, Vec<&AblationPoint>)> = {
        let mut g: Vec<(String, Vec<&AblationPoint>)> = [2usize, 4, 6]
            .iter()
            .map(|&h| {
                (
                    format!("{h} hops"),
                    points.iter().filter(|p| p.hops == h).collect(),
                )
            })
            .collect();
        g.push(("all".into(), points.iter().collect()));
        g
    };
    for (label, sel) in groups {
        for (method, get) in [
            (
                "flowSim",
                (|p: &AblationPoint| p.flowsim_err) as fn(&AblationPoint) -> f64,
            ),
            ("m3 w/o context", |p| p.noctx_err),
            ("m3", |p| p.m3_err),
        ] {
            let errs: Vec<f64> = sel.iter().map(|p| get(p)).collect();
            if errs.is_empty() {
                continue;
            }
            let s = ErrorSummary::from_signed(&errs);
            rows.push(vec![
                label.clone(),
                method.into(),
                format!("{:.1}%", s.mean_abs * 100.0),
                format!("{:+.1}%", s.p50 * 100.0),
                format!("{:.1}%", s.max_abs * 100.0),
            ]);
        }
    }
    print_table(
        "Fig 16: path-level p99 error (held-out Table 2 scenarios)",
        &["Paths", "Method", "mean|err|", "median", "max|err|"],
        &rows,
    );
    write_result("fig16_ablation", &points);
}
