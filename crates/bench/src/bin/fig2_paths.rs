//! Fig. 2(b) and 2(d): structure of weight-sampled paths — hop-count
//! distribution and foreground/background flow counts — on the three
//! production mixes.

use m3_bench::*;
use m3_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct MixStats {
    mix: String,
    hops_hist: Vec<(usize, usize)>,
    fg_percentiles: Vec<(u8, f64)>,
    bg_percentiles: Vec<(u8, f64)>,
    populated_paths: usize,
}

fn main() {
    let n = n_flows();
    let k = n_paths().max(200);
    let mixes = [
        ("Mix 1", "A", "CacheFollower", 4usize, 0.4246),
        ("Mix 2", "B", "WebServer", 1, 0.2846),
        ("Mix 3", "C", "WebServer", 2, 0.7383),
    ];
    let cfg = m3_netsim::prelude::SimConfig::default();
    let mut all = Vec::new();
    for (i, (name, matrix, workload, oversub, load)) in mixes.iter().enumerate() {
        let sc = build_full_scenario(
            *oversub,
            matrix,
            workload,
            1.0,
            *load,
            cfg,
            n,
            100 + i as u64,
        );
        let index = PathIndex::build(&sc.ft.topo, &sc.flows);
        let sampled = index.sample_paths(k, 11);
        let mut hops = std::collections::BTreeMap::new();
        let mut fg_counts = Vec::new();
        let mut bg_counts = Vec::new();
        for &g in &sampled {
            let rep = index.rep_flow(g, &sc.flows);
            *hops.entry(rep.path.len()).or_insert(0usize) += 1;
            fg_counts.push(index.foreground_of(g).len() as f64);
            bg_counts.push(index.background_of(g, &sc.flows).len() as f64);
        }
        fg_counts.sort_by(|a, b| a.total_cmp(b));
        bg_counts.sort_by(|a, b| a.total_cmp(b));
        let pct = |v: &[f64]| -> Vec<(u8, f64)> {
            [10u8, 25, 50, 75, 90, 99]
                .iter()
                .map(|&p| (p, m3_netsim::stats::percentile(v, p as f64)))
                .collect()
        };
        let stats = MixStats {
            mix: name.to_string(),
            hops_hist: hops.iter().map(|(&h, &c)| (h, c)).collect(),
            fg_percentiles: pct(&fg_counts),
            bg_percentiles: pct(&bg_counts),
            populated_paths: index.num_paths(),
        };
        println!(
            "\n== Fig 2(b,d): {name} ({} flows, {} sampled paths) ==",
            n, k
        );
        println!("populated paths: {}", stats.populated_paths);
        println!(
            "hop-count histogram (links per path): {:?}",
            stats.hops_hist
        );
        println!("fg flows/path percentiles: {:?}", stats.fg_percentiles);
        println!("bg flows/path percentiles: {:?}", stats.bg_percentiles);
        all.push(stats);
    }
    write_result("fig2_paths", &all);
}
