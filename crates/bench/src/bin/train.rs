//! Train the m3 correction model on synthetic Table 2 parking-lot scenarios
//! (§5.1) and save the checkpoint used by every other experiment binary.
//!
//! The paper trains on 120,000 scenarios of 20,000 foreground flows for 400
//! epochs on four A100s. The reproduction default is a few hundred
//! scenarios with 8-400 foreground flows for a few dozen epochs on CPU —
//! scaled by `M3_TRAIN_SCENARIOS`, `M3_EPOCHS`, `M3_TRAIN_FG`.
//!
//! Foreground counts are sampled log-uniformly so the model sees both
//! dense and sparse paths: full-network decomposition at reproduction scale
//! yields paths with few foreground flows (the paper's matrix C has the
//! same property, §5.2).

use m3_bench::{env_usize, fmt_dur, timed, write_result};
use m3_core::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct TrainRun {
    n_scenarios: usize,
    epochs: usize,
    params: usize,
    dataset_secs: f64,
    train_secs: f64,
    final_train_loss: f64,
    final_val_loss: f64,
    checkpoint: String,
}

fn main() {
    let n_scenarios = env_usize("M3_TRAIN_SCENARIOS", 600);
    let epochs = env_usize("M3_EPOCHS", 40);
    let max_fg = env_usize("M3_TRAIN_FG", 400);
    let seed = env_usize("M3_SEED", 1) as u64;

    let cfg = TrainConfig {
        n_scenarios,
        epochs,
        seed,
        ..TrainConfig::default()
    };

    eprintln!("[train] generating {n_scenarios} scenarios (ground truth via packet sim)...");
    let points = training_points(n_scenarios, seed);
    let mut rng = SmallRng::seed_from_u64(stage_seed(seed, "fgcounts"));
    let (dataset, gen_time) = timed(|| {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // Log-uniform foreground count in [8, max_fg]; background
                // 2-6x foreground.
                let lo = (8f64).ln();
                let hi = (max_fg as f64).ln();
                let fg = (lo + rng.gen::<f64>() * (hi - lo)).exp() as usize;
                let bg = fg * rng.gen_range(2..=6);
                if i % 50 == 0 {
                    eprintln!("[train]   scenario {i}/{n_scenarios}");
                }
                make_example(p, fg.max(4), bg, true)
            })
            .collect::<Vec<_>>()
    });
    eprintln!(
        "[train] dataset ready in {} ({} examples)",
        fmt_dur(gen_time),
        dataset.len()
    );

    let ((net, report), train_time) = timed(|| train(&cfg, &dataset));
    eprintln!(
        "[train] trained {} params in {}: loss {:.4} -> {:.4} (val {:.4})",
        net.num_params(),
        fmt_dur(train_time),
        report.train_loss.first().unwrap(),
        report.train_loss.last().unwrap(),
        report.val_loss.last().unwrap()
    );

    let path = m3_bench::model_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create assets dir");
    }
    m3_nn::checkpoint::save_file(&net, seed, &path).expect("save checkpoint");
    eprintln!("[train] saved {}", path.display());

    // Second model for the Fig. 16 ablation: identical dataset and
    // hyper-parameters, but background context zeroed during training.
    let noctx_dataset: Vec<TrainExample> = dataset
        .iter()
        .map(|ex| {
            let mut ex = ex.clone();
            ex.input.use_context = false;
            ex
        })
        .collect();
    let ((noctx_net, noctx_report), noctx_time) = timed(|| train(&cfg, &noctx_dataset));
    eprintln!(
        "[train] no-context ablation trained in {}: val {:.4}",
        fmt_dur(noctx_time),
        noctx_report.val_loss.last().unwrap()
    );
    let noctx_path = path.with_file_name("m3-model-noctx.ckpt");
    m3_nn::checkpoint::save_file(&noctx_net, seed, &noctx_path).expect("save noctx checkpoint");
    eprintln!("[train] saved {}", noctx_path.display());

    write_result(
        "train",
        &TrainRun {
            n_scenarios,
            epochs,
            params: net.num_params(),
            dataset_secs: gen_time.as_secs_f64(),
            train_secs: train_time.as_secs_f64(),
            final_train_loss: *report.train_loss.last().unwrap(),
            final_val_loss: *report.val_loss.last().unwrap(),
            checkpoint: path.display().to_string(),
        },
    );
    for (e, (t, v)) in report.train_loss.iter().zip(&report.val_loss).enumerate() {
        println!("epoch {e:3}  train_l1 {t:.4}  val_l1 {v:.4}");
    }
}
