//! Fig. 13: counterfactual search over HPCC's initial congestion window
//! (§5.4). Small topology, WebServer sizes, matrix C, 50% max load, PFC
//! enabled, 400 kB buffers, eta = 0.9.
//!
//! Shape to reproduce: m3 tracks ground truth's p99-vs-window trend per
//! flow class — in particular that larger initial windows *hurt* small
//! flows — while being orders of magnitude faster.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    window_kb: u64,
    truth_bucket_p99: Vec<f64>,
    m3_bucket_p99: Vec<f64>,
    truth_secs: f64,
    m3_secs: f64,
}

fn main() {
    let estimator = M3Estimator::new(load_or_train_model());
    let n = n_flows() / 2;
    let k = n_paths();
    let windows = [5u64, 10, 15, 20, 30];
    let mut points = Vec::new();
    // Scenario cache held across the sweep. Each window candidate changes
    // the config spec (part of the scenario fingerprint), so sweep points
    // never hit each other's entries; the cache pays off when a point is
    // re-estimated under the same config (e.g. a re-run of this binary's
    // loop body, or repeated queries in an outer search).
    let mut cache = ScenarioCache::new(8192);
    for &w_kb in &windows {
        let config = SimConfig {
            cc: CcProtocol::Hpcc,
            init_window: w_kb * KB,
            buffer_size: 400 * KB,
            pfc_enabled: true,
            params: CcParams {
                hpcc_eta: 0.90,
                ..CcParams::default()
            },
            ..SimConfig::default()
        };
        let sc = build_full_scenario(2, "C", "WebServer", 1.0, 0.5, config, n, 77);
        eprintln!("[fig13] window {w_kb}KB...");
        let (gt_out, t_gt) = timed(|| run_simulation(&sc.ft.topo, sc.config, sc.flows.clone()));
        let gt = ground_truth_estimate(&gt_out.records);
        let (m3_est, t_m3) = timed(|| {
            estimator.estimate_with_cache(&sc.ft.topo, &sc.flows, &sc.config, k, 4, &mut cache)
        });
        eprintln!(
            "[fig13]   {} paths, {} unique, {} flowSim runs, {} cache hits",
            m3_est.timings.sampled_paths,
            m3_est.timings.unique_scenarios,
            m3_est.timings.flowsim_runs,
            m3_est.timings.cache_hits
        );
        points.push(SweepPoint {
            window_kb: w_kb,
            truth_bucket_p99: (0..NUM_OUTPUT_BUCKETS).map(|b| gt.bucket_p99(b)).collect(),
            m3_bucket_p99: (0..NUM_OUTPUT_BUCKETS)
                .map(|b| m3_est.bucket_p99(b))
                .collect(),
            truth_secs: t_gt.as_secs_f64(),
            m3_secs: t_m3.as_secs_f64(),
        });
    }
    let names = ["(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"];
    for (b, name) in names.iter().enumerate() {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{}KB", p.window_kb),
                    format!("{:.2}", p.truth_bucket_p99[b]),
                    format!("{:.2}", p.m3_bucket_p99[b]),
                ]
            })
            .collect();
        print_table(
            &format!("Fig 13, bucket {}: p99 vs HPCC init window", name),
            &["Window", "packet sim", "m3"],
            &rows,
        );
    }
    let gt_total: f64 = points.iter().map(|p| p.truth_secs).sum();
    let m3_total: f64 = points.iter().map(|p| p.m3_secs).sum();
    println!(
        "\nsweep time: packet sim {:.1}s vs m3 {:.1}s ({:.0}x speedup)",
        gt_total,
        m3_total,
        gt_total / m3_total
    );
    write_result("fig13_window_sweep", &points);
}
