//! Table 1: p99 FCT slowdown and wall-clock time of full packet simulation
//! ("ns-3"), Parsimon, and per-path packet simulation ("ns-3-path") on the
//! three production mixes.
//!
//! Paper shape to reproduce: ns-3-path tracks ns-3 within a couple percent
//! while Parsimon deviates more (especially Mix 3, the high-load skewed
//! mix); Parsimon is much faster than both packet-level methods.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_parsimon::{parsimon_estimate, slowdown_samples};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mix: String,
    ns3_p99: f64,
    ns3_secs: f64,
    parsimon_p99: f64,
    parsimon_secs: f64,
    ns3path_p99: f64,
    ns3path_secs: f64,
}

fn main() {
    let n = n_flows();
    let k = n_paths();
    // (matrix, workload, oversub, max load) per Table 1.
    let mixes = [
        ("Mix 1", "A", "CacheFollower", 4usize, 0.4246),
        ("Mix 2", "B", "WebServer", 1, 0.2846),
        ("Mix 3", "C", "WebServer", 2, 0.7383),
    ];
    let cfg = SimConfig::default(); // DCTCP, §5.2 configuration
    let mut rows = Vec::new();
    let mut out_rows = Vec::new();
    for (i, (name, matrix, workload, oversub, load)) in mixes.iter().enumerate() {
        eprintln!("[table1] {name} ({matrix}/{workload}/{oversub}:1 @ {load})");
        let sc = build_full_scenario(
            *oversub,
            matrix,
            workload,
            1.0,
            *load,
            cfg,
            n,
            100 + i as u64,
        );
        let (gt_out, t_ns3) = timed(|| run_simulation(&sc.ft.topo, sc.config, sc.flows.clone()));
        let gt = ground_truth_estimate(&gt_out.records);
        let (pars, t_pars) = timed(|| parsimon_estimate(&sc.ft.topo, &sc.flows, &sc.config));
        let pars_p99 = {
            let d = PathDistribution::from_samples(&slowdown_samples(&pars));
            NetworkEstimate::aggregate(&[d]).p99()
        };
        let (np, t_np) = timed(|| ns3_path_estimate(&sc.ft.topo, &sc.flows, &sc.config, k, 7));
        let row = Row {
            mix: name.to_string(),
            ns3_p99: gt.p99(),
            ns3_secs: t_ns3.as_secs_f64(),
            parsimon_p99: pars_p99,
            parsimon_secs: t_pars.as_secs_f64(),
            ns3path_p99: np.p99(),
            ns3path_secs: t_np.as_secs_f64(),
        };
        out_rows.push(vec![
            row.mix.clone(),
            format!("{:.3}", row.ns3_p99),
            fmt_dur(t_ns3),
            format!("{:.3}", row.parsimon_p99),
            fmt_dur(t_pars),
            format!("{:.3}", row.ns3path_p99),
            fmt_dur(t_np),
        ]);
        rows.push(row);
    }
    print_table(
        &format!("Table 1 ({} flows, {} sampled paths)", n, k),
        &[
            "Scenario",
            "ns-3 p99",
            "time",
            "Parsimon p99",
            "time",
            "ns-3-path p99",
            "time",
        ],
        &out_rows,
    );
    let avg_np_err: f64 = rows
        .iter()
        .map(|r| relative_error(r.ns3path_p99, r.ns3_p99).abs())
        .sum::<f64>()
        / rows.len() as f64;
    let avg_pars_err: f64 = rows
        .iter()
        .map(|r| relative_error(r.parsimon_p99, r.ns3_p99).abs())
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "\nns-3-path avg |p99 error|: {:.1}%   Parsimon avg |p99 error|: {:.1}%",
        avg_np_err * 100.0,
        avg_pars_err * 100.0
    );
    write_result("table1", &rows);
}
