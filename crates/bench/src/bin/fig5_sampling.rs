//! Fig. 5: (left) the number of populated paths across workloads; (right)
//! how the relative p99-slowdown sampling error shrinks with the number of
//! sampled paths. Pure sampling error: ground-truth per-flow slowdowns are
//! used for the sampled paths, so the only approximation is which paths are
//! included (§3.2).

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_workload::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    populated_paths: Vec<usize>,
    /// (k, error percentiles p50/p90/p99 over scenarios x repeats)
    error_vs_k: Vec<(usize, f64, f64, f64)>,
}

fn main() {
    let n_scen = n_scenarios().min(16);
    let flows = n_flows() / 2;
    let mut rng = SmallRng::seed_from_u64(5);
    let mut populated = Vec::new();
    let mut errors_by_k: Vec<(usize, Vec<f64>)> = [10usize, 50, 100, 200, 500]
        .iter()
        .map(|&k| (k, Vec::new()))
        .collect();

    for i in 0..n_scen {
        let p = sample_test_point(&mut rng, Some(CcProtocol::Dctcp));
        let sc = build_full_scenario(
            p.oversub,
            &p.matrix_name,
            &p.workload_name,
            p.sigma,
            p.max_load,
            p.config,
            flows,
            p.seed,
        );
        eprintln!("[fig5] scenario {i}/{n_scen}: {}", sc.label);
        let gt_out = run_simulation(&sc.ft.topo, sc.config, sc.flows.clone());
        let full = ground_truth_estimate(&gt_out.records);
        let full_p99 = full.p99();
        let index = PathIndex::build(&sc.ft.topo, &sc.flows);
        populated.push(index.num_paths());
        // Per-flow ground-truth slowdowns by flow index.
        let sldn: Vec<f64> = {
            let mut v = vec![f64::NAN; sc.flows.len()];
            for r in &gt_out.records {
                v[r.id as usize] = r.slowdown();
            }
            v
        };
        for rep in 0..3u64 {
            for (k, errs) in errors_by_k.iter_mut() {
                let sampled = index.sample_paths(*k, 77 + rep * 1000 + i as u64);
                let dists: Vec<PathDistribution> = sampled
                    .iter()
                    .map(|&g| {
                        let samples: Vec<(u64, f64)> = index
                            .foreground_of(g)
                            .iter()
                            .map(|&fi| (sc.flows[fi as usize].size, sldn[fi as usize]))
                            .collect();
                        PathDistribution::from_samples(&samples)
                    })
                    .collect();
                let est = NetworkEstimate::aggregate(&dists);
                errs.push(relative_error(est.p99(), full_p99).abs());
            }
        }
    }
    let mut rows = Vec::new();
    let mut error_vs_k = Vec::new();
    for (k, mut errs) in errors_by_k {
        errs.sort_by(|a, b| a.total_cmp(b));
        let p50 = m3_netsim::stats::percentile(&errs, 50.0);
        let p90 = m3_netsim::stats::percentile(&errs, 90.0);
        let p99 = m3_netsim::stats::percentile(&errs, 99.0);
        rows.push(vec![
            format!("{k}"),
            format!("{:.1}%", p50 * 100.0),
            format!("{:.1}%", p90 * 100.0),
            format!("{:.1}%", p99 * 100.0),
        ]);
        error_vs_k.push((k, p50, p90, p99));
    }
    print_table(
        "Fig 5(right): |p99 error| vs #sampled paths",
        &["k", "median", "p90", "p99"],
        &rows,
    );
    populated.sort_unstable();
    println!(
        "\nFig 5(left): populated paths across {} workloads: min {} / median {} / max {}",
        n_scen,
        populated.first().unwrap(),
        populated[populated.len() / 2],
        populated.last().unwrap()
    );
    write_result(
        "fig5_sampling",
        &Out {
            populated_paths: populated,
            error_vs_k,
        },
    );
}
