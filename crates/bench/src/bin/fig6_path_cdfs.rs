//! Fig. 6: per-size-bucket slowdown distributions on a 4-hop parking-lot
//! path: packet-level ground truth vs flowSim vs m3. The paper's shape:
//! flowSim matches well for >= 10 kB flows but underestimates short-flow
//! tails; m3's corrected percentiles track ground truth everywhere.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_workload::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct BucketCdf {
    bucket: String,
    truth: Vec<f64>,
    flowsim: Vec<f64>,
    m3: Vec<f64>,
}

fn pct_vec(samples: &[(u64, f64)], bucket: usize) -> Vec<f64> {
    let d = PathDistribution::from_samples(samples);
    d.buckets[bucket].clone()
}

fn main() {
    let net = load_or_train_model();
    // A 4-hop Meta-workload scenario, as in the figure.
    let spec = PathScenarioSpec {
        n_hops: 4,
        n_foreground: env_usize("M3_FIG6_FG", 2_000),
        n_background: env_usize("M3_FIG6_BG", 6_000),
        sizes: SizeDistribution::cache_follower(),
        sigma: 1.5,
        max_load: 0.6,
        seed: 404,
        ..PathScenarioSpec::default()
    };
    let ps = PathScenario::generate(&spec);
    let config = SimConfig::default();

    // Ground truth.
    let gt = ps.ground_truth(config);
    let fg_ids: std::collections::HashSet<u32> = ps.foreground_ids().into_iter().collect();
    let truth_fg: Vec<(u64, f64)> = gt
        .records
        .iter()
        .filter(|r| fg_ids.contains(&r.id))
        .map(|r| (r.size, r.slowdown()))
        .collect();

    // flowSim + m3.
    let (input, flowsim_fg) = scenario_features(&ps, &config, true);
    let m3_out = m3_core::features::decode_log(&net.predict(&input));
    let counts = {
        let mut c = [0usize; NUM_OUTPUT_BUCKETS];
        for &(s, _) in &truth_fg {
            c[output_bucket(s)] += 1;
        }
        c
    };
    let m3_dist = PathDistribution::from_model_output(&m3_out, counts);

    let names = ["(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (b, name) in names.iter().enumerate() {
        let truth = pct_vec(&truth_fg, b);
        let fsim = pct_vec(&flowsim_fg, b);
        let m3v = m3_dist.buckets[b].clone();
        if truth.is_empty() {
            continue;
        }
        for p in [50usize, 90, 99] {
            rows.push(vec![
                name.to_string(),
                format!("p{p}"),
                format!("{:.2}", truth[p - 1]),
                if fsim.is_empty() {
                    "-".into()
                } else {
                    format!("{:.2}", fsim[p - 1])
                },
                if m3v.is_empty() {
                    "-".into()
                } else {
                    format!("{:.2}", m3v[p - 1])
                },
            ]);
        }
        out.push(BucketCdf {
            bucket: name.to_string(),
            truth,
            flowsim: fsim,
            m3: m3v,
        });
    }
    print_table(
        "Fig 6: slowdown percentiles on a 4-hop path (truth vs flowSim vs m3)",
        &["Bucket", "pct", "ns-3 (truth)", "flowSim", "m3"],
        &rows,
    );
    // The headline claim: flowSim underestimates the small-flow tail; m3's
    // correction is closer.
    if let Some(b0) = out.first() {
        let t = b0.truth[98];
        let f = b0.flowsim.get(98).copied().unwrap_or(f64::NAN);
        let m = b0.m3.get(98).copied().unwrap_or(f64::NAN);
        println!(
            "\nsmall-flow p99: truth {t:.2}, flowSim {f:.2} (err {:+.0}%), m3 {m:.2} (err {:+.0}%)",
            (f - t) / t * 100.0,
            (m - t) / t * 100.0
        );
    }
    write_result("fig6_path_cdfs", &out);
}
