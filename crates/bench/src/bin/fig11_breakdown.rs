//! Fig. 11: sensitivity of the p99-slowdown error distribution to workload
//! parameters — traffic matrix, flow size distribution, oversubscription,
//! and burstiness — for m3 and Parsimon. Boxplot quartiles per group.
//!
//! Reuses the cached §5.2 sweep (run `fig10_sensitivity` first, or this
//! binary will compute the sweep itself).

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::stats::ErrorSummary;

/// A labeled predicate selecting a slice of the sweep records.
type Filter = (&'static str, Box<dyn Fn(&SweepRecord) -> bool>);
type ErrFn = fn(&SweepRecord) -> f64;

fn boxplot_rows(records: &[SweepRecord], group_name: &str, groups: &[Filter]) -> Vec<Vec<String>> {
    let methods: [(&str, ErrFn); 2] = [
        ("m3", |r: &SweepRecord| r.m3_err()),
        ("Parsimon", |r: &SweepRecord| r.parsimon_err()),
    ];
    let mut rows = Vec::new();
    for (label, pred) in groups {
        for (method, err) in methods {
            let errs: Vec<f64> = records.iter().filter(|r| pred(r)).map(err).collect();
            if errs.is_empty() {
                continue;
            }
            let s = ErrorSummary::from_signed(&errs);
            rows.push(vec![
                format!("{group_name}={label}"),
                method.into(),
                format!("{}", s.n),
                format!("{:+.1}%", s.p25 * 100.0),
                format!("{:+.1}%", s.p50 * 100.0),
                format!("{:+.1}%", s.p75 * 100.0),
                format!("{:.1}%", s.max_abs * 100.0),
            ]);
        }
    }
    rows
}

fn main() {
    let estimator = M3Estimator::new(load_or_train_model());
    let records = dctcp_sweep(&estimator, n_scenarios(), n_flows(), n_paths(), 42);

    let mut all_rows = Vec::new();
    let mats: Vec<Filter> = ["A", "B", "C"]
        .iter()
        .map(|&m| {
            let m = m.to_string();
            (
                ["A", "B", "C"][["A", "B", "C"].iter().position(|&x| x == m).unwrap()],
                Box::new(move |r: &SweepRecord| r.matrix == m) as Box<dyn Fn(&SweepRecord) -> bool>,
            )
        })
        .collect();
    all_rows.extend(boxplot_rows(&records, "matrix", &mats));
    let works: Vec<Filter> = ["CacheFollower", "WebServer", "Hadoop"]
        .iter()
        .map(|&w| {
            let ws = w.to_string();
            (
                w,
                Box::new(move |r: &SweepRecord| r.workload == ws)
                    as Box<dyn Fn(&SweepRecord) -> bool>,
            )
        })
        .collect();
    all_rows.extend(boxplot_rows(&records, "workload", &works));
    let oversubs: Vec<Filter> = [(1usize, "1:1"), (2, "2:1"), (4, "4:1")]
        .iter()
        .map(|&(o, label)| {
            (
                label,
                Box::new(move |r: &SweepRecord| r.oversub == o)
                    as Box<dyn Fn(&SweepRecord) -> bool>,
            )
        })
        .collect();
    all_rows.extend(boxplot_rows(&records, "oversub", &oversubs));
    let sigmas: Vec<Filter> = [(1.0f64, "1.0"), (2.0, "2.0")]
        .iter()
        .map(|&(s, label)| {
            (
                label,
                Box::new(move |r: &SweepRecord| (r.sigma - s).abs() < 1e-9)
                    as Box<dyn Fn(&SweepRecord) -> bool>,
            )
        })
        .collect();
    all_rows.extend(boxplot_rows(&records, "sigma", &sigmas));

    print_table(
        "Fig 11: p99 error quartiles by workload dimension",
        &["Group", "Method", "n", "p25", "median", "p75", "max|err|"],
        &all_rows,
    );
    write_result("fig11_breakdown", &records);
}
