//! Fig. 10: the §5.2 sensitivity analysis — m3 vs Parsimon over a random
//! DCTCP test sweep on the 32-rack fat tree.
//!
//! (a) p99 slowdown error distribution; (b) median error per max-load
//! bucket; (c) runtime distribution; (d) runtime vs workload.

use m3_bench::*;
use m3_core::prelude::*;

fn main() {
    let estimator = M3Estimator::new(load_or_train_model());
    let records = dctcp_sweep(&estimator, n_scenarios(), n_flows(), n_paths(), 42);

    // (a) error distribution.
    let m3_errs: Vec<f64> = records.iter().map(|r| r.m3_err()).collect();
    let pars_errs: Vec<f64> = records.iter().map(|r| r.parsimon_err()).collect();
    let sm = ErrorSummaryRow::from("m3", &m3_errs);
    let sp = ErrorSummaryRow::from("Parsimon", &pars_errs);
    print_table(
        "Fig 10(a): p99 slowdown estimation error",
        &["Method", "mean|err|", "median|err|", "p90|err|", "max|err|"],
        &[sm.row(), sp.row()],
    );

    // (b) median error per load bucket.
    let mut rows = Vec::new();
    for (lo, hi) in [(0.2, 0.4), (0.4, 0.5), (0.5, 0.6), (0.6, 0.85)] {
        let in_bucket: Vec<&m3_bench::SweepRecord> = records
            .iter()
            .filter(|r| r.max_load >= lo && r.max_load < hi)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let med = |f: &dyn Fn(&m3_bench::SweepRecord) -> f64| -> f64 {
            let mut v: Vec<f64> = in_bucket.iter().map(|r| f(r).abs()).collect();
            m3_netsim::stats::percentile_unsorted(&mut v, 50.0)
        };
        rows.push(vec![
            format!("{:.0}-{:.0}%", lo * 100.0, hi * 100.0),
            format!("{}", in_bucket.len()),
            format!("{:.1}%", med(&|r| r.m3_err()) * 100.0),
            format!("{:.1}%", med(&|r| r.parsimon_err()) * 100.0),
        ]);
    }
    print_table(
        "Fig 10(b): median |p99 error| by max link load",
        &["Load", "n", "m3", "Parsimon"],
        &rows,
    );

    // (c) runtime distribution.
    let stats = |v: &mut Vec<f64>| -> (f64, f64, f64) {
        v.sort_by(|a, b| a.total_cmp(b));
        (
            m3_netsim::stats::percentile(v, 50.0),
            m3_netsim::stats::percentile(v, 90.0),
            v.iter().sum::<f64>() / v.len() as f64,
        )
    };
    let mut gt_t: Vec<f64> = records.iter().map(|r| r.gt_secs).collect();
    let mut m3_t: Vec<f64> = records.iter().map(|r| r.m3_secs).collect();
    let mut pa_t: Vec<f64> = records.iter().map(|r| r.parsimon_secs).collect();
    let (g50, g90, gm) = stats(&mut gt_t);
    let (m50, m90, mm) = stats(&mut m3_t);
    let (p50, p90, pm) = stats(&mut pa_t);
    print_table(
        "Fig 10(c): runtime (seconds)",
        &["Method", "median", "p90", "mean"],
        &[
            vec![
                "packet sim (ns-3)".into(),
                format!("{g50:.2}"),
                format!("{g90:.2}"),
                format!("{gm:.2}"),
            ],
            vec![
                "Parsimon".into(),
                format!("{p50:.2}"),
                format!("{p90:.2}"),
                format!("{pm:.2}"),
            ],
            vec![
                "m3".into(),
                format!("{m50:.2}"),
                format!("{m90:.2}"),
                format!("{mm:.2}"),
            ],
        ],
    );
    println!(
        "\nmean speedup: m3 vs packet sim {:.1}x, m3 vs Parsimon {:.1}x",
        gm / mm,
        pm / mm
    );

    // (d) runtime vs workload (flow size distribution).
    let mut rows = Vec::new();
    for w in ["WebServer", "CacheFollower", "Hadoop"] {
        let rs: Vec<&m3_bench::SweepRecord> = records.iter().filter(|r| r.workload == w).collect();
        if rs.is_empty() {
            continue;
        }
        let mean = |f: &dyn Fn(&m3_bench::SweepRecord) -> f64| {
            rs.iter().map(|r| f(r)).sum::<f64>() / rs.len() as f64
        };
        rows.push(vec![
            w.into(),
            format!("{}", rs.len()),
            format!("{:.2}s", mean(&|r| r.m3_secs)),
            format!("{:.2}s", mean(&|r| r.parsimon_secs)),
            format!("{:.2}s", mean(&|r| r.gt_secs)),
        ]);
    }
    print_table(
        "Fig 10(d): mean runtime by workload",
        &["Workload", "n", "m3", "Parsimon", "packet sim"],
        &rows,
    );
    write_result("fig10_sensitivity", &records);
}

struct ErrorSummaryRow {
    name: &'static str,
    s: m3_netsim::stats::ErrorSummary,
    p90: f64,
}

impl ErrorSummaryRow {
    fn from(name: &'static str, errs: &[f64]) -> Self {
        let mut mags: Vec<f64> = errs.iter().map(|e| e.abs()).collect();
        let p90 = m3_netsim::stats::percentile_unsorted(&mut mags, 90.0);
        ErrorSummaryRow {
            name,
            s: m3_netsim::stats::ErrorSummary::from_signed(errs),
            p90,
        }
    }
    fn row(&self) -> Vec<String> {
        vec![
            self.name.into(),
            format!("{:.1}%", self.s.mean_abs * 100.0),
            format!("{:.1}%", self.s.median_abs * 100.0),
            format!("{:.1}%", self.p90 * 100.0),
            format!("{:.1}%", self.s.max_abs * 100.0),
        ]
    }
}
