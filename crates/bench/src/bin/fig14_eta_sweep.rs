//! Fig. 14: counterfactual search over HPCC's eta (target utilization),
//! with the initial window fixed at 20 kB (§5.4). Same scenario as Fig. 13.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    eta: f64,
    truth_bucket_p99: Vec<f64>,
    m3_bucket_p99: Vec<f64>,
    truth_secs: f64,
    m3_secs: f64,
}

fn main() {
    let estimator = M3Estimator::new(load_or_train_model());
    let n = n_flows() / 2;
    let k = n_paths();
    let etas = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95];
    let mut points = Vec::new();
    // Shared scenario cache, as in fig13_window_sweep.
    let mut cache = ScenarioCache::new(8192);
    for &eta in &etas {
        let config = SimConfig {
            cc: CcProtocol::Hpcc,
            init_window: 20 * KB,
            buffer_size: 400 * KB,
            pfc_enabled: true,
            params: CcParams {
                hpcc_eta: eta,
                ..CcParams::default()
            },
            ..SimConfig::default()
        };
        let sc = build_full_scenario(2, "C", "WebServer", 1.0, 0.5, config, n, 77);
        eprintln!("[fig14] eta {eta}...");
        let (gt_out, t_gt) = timed(|| run_simulation(&sc.ft.topo, sc.config, sc.flows.clone()));
        let gt = ground_truth_estimate(&gt_out.records);
        let (m3_est, t_m3) = timed(|| {
            estimator.estimate_with_cache(&sc.ft.topo, &sc.flows, &sc.config, k, 4, &mut cache)
        });
        points.push(SweepPoint {
            eta,
            truth_bucket_p99: (0..NUM_OUTPUT_BUCKETS).map(|b| gt.bucket_p99(b)).collect(),
            m3_bucket_p99: (0..NUM_OUTPUT_BUCKETS)
                .map(|b| m3_est.bucket_p99(b))
                .collect(),
            truth_secs: t_gt.as_secs_f64(),
            m3_secs: t_m3.as_secs_f64(),
        });
    }
    let names = ["(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"];
    for (b, name) in names.iter().enumerate() {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.eta),
                    format!("{:.2}", p.truth_bucket_p99[b]),
                    format!("{:.2}", p.m3_bucket_p99[b]),
                ]
            })
            .collect();
        print_table(
            &format!("Fig 14, bucket {}: p99 vs HPCC eta", name),
            &["eta", "packet sim", "m3"],
            &rows,
        );
    }
    let gt_total: f64 = points.iter().map(|p| p.truth_secs).sum();
    let m3_total: f64 = points.iter().map(|p| p.m3_secs).sum();
    println!(
        "\nsweep time: packet sim {:.1}s vs m3 {:.1}s ({:.0}x speedup)",
        gt_total,
        m3_total,
        gt_total / m3_total
    );
    write_result("fig14_eta_sweep", &points);
}
