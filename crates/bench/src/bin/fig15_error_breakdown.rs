//! Fig. 15: error breakdown for paths' foreground flows on the small fat
//! tree. For each sampled path, the p99 slowdown of its foreground flows in
//! the full simulation is compared against: ns-3-path (isolates the
//! path-decomposition assumption), m3 (adds the flowSim+ML approximation),
//! and Parsimon (link-independence assumption).
//!
//! Shape to reproduce: ns-3-path error < m3 error (decomposition accounts
//! for less than half of m3's error) and Parsimon is strictly worse across
//! flow size buckets and path lengths.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_parsimon::parsimon_estimate;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct PathBreakdown {
    hops: usize,
    n_fg: usize,
    truth_p99: f64,
    ns3path_err: f64,
    m3_err: f64,
    parsimon_err: f64,
}

fn p99(mut v: Vec<f64>) -> f64 {
    m3_netsim::stats::percentile_unsorted(&mut v, 99.0)
}

fn main() {
    let estimator = M3Estimator::new(load_or_train_model());
    let n = n_flows();
    let k = env_usize("M3_ACC_PATHS", 30);
    let cfg = SimConfig::default();
    let sc = build_full_scenario(2, "B", "WebServer", 1.0, 0.5, cfg, n, 91);
    eprintln!("[fig15] ground truth...");
    let gt_out = run_simulation(&sc.ft.topo, sc.config, sc.flows.clone());
    let truth: HashMap<u32, f64> = gt_out
        .records
        .iter()
        .map(|r| (r.id, r.slowdown()))
        .collect();
    eprintln!("[fig15] Parsimon...");
    let pars = parsimon_estimate(&sc.ft.topo, &sc.flows, &cfg);
    let pars_sldn: HashMap<u32, f64> = pars.iter().map(|r| (r.id, r.slowdown())).collect();

    let index = PathIndex::build(&sc.ft.topo, &sc.flows);
    let sampled: Vec<usize> = index
        .sample_paths(k * 4, 23)
        .into_iter()
        .filter(|&g| index.foreground_of(g).len() >= 2)
        .take(k)
        .collect();
    let mut rows_out = Vec::new();
    for &g in &sampled {
        let data = PathScenarioData::from_group(&sc.ft.topo, &sc.flows, &index, g, &cfg);
        let fg_ids: Vec<u32> = index
            .foreground_of(g)
            .iter()
            .map(|&fi| sc.flows[fi as usize].id)
            .collect();
        let truth_p99 = p99(fg_ids
            .iter()
            .filter_map(|id| truth.get(id).copied())
            .collect());
        // ns-3-path.
        let np = p99(data.run_ns3_path(cfg).iter().map(|s| s.1).collect());
        // m3 (per-path prediction; p99 of the flow-count-weighted output).
        let m3_dist = estimator.predict_path(&data, &cfg);
        let m3_p99 = NetworkEstimate::aggregate(&[m3_dist]).p99();
        // Parsimon restricted to this path's fg flows.
        let pp = p99(fg_ids
            .iter()
            .filter_map(|id| pars_sldn.get(id).copied())
            .collect());
        rows_out.push(PathBreakdown {
            hops: data.num_hops(),
            n_fg: data.fg.len(),
            truth_p99,
            ns3path_err: relative_error(np, truth_p99),
            m3_err: relative_error(m3_p99, truth_p99),
            parsimon_err: relative_error(pp, truth_p99),
        });
    }
    // Group by path length.
    let mut table = Vec::new();
    for hops in [2usize, 4, 6] {
        let sel: Vec<&PathBreakdown> = rows_out.iter().filter(|r| r.hops == hops).collect();
        if sel.is_empty() {
            continue;
        }
        let mean = |f: &dyn Fn(&PathBreakdown) -> f64| {
            sel.iter().map(|r| f(r).abs()).sum::<f64>() / sel.len() as f64
        };
        table.push(vec![
            format!("{hops} links"),
            format!("{}", sel.len()),
            format!("{:.1}%", mean(&|r| r.ns3path_err) * 100.0),
            format!("{:.1}%", mean(&|r| r.m3_err) * 100.0),
            format!("{:.1}%", mean(&|r| r.parsimon_err) * 100.0),
        ]);
    }
    let all_mean = |f: &dyn Fn(&PathBreakdown) -> f64| {
        rows_out.iter().map(|r| f(r).abs()).sum::<f64>() / rows_out.len().max(1) as f64
    };
    table.push(vec![
        "all".into(),
        format!("{}", rows_out.len()),
        format!("{:.1}%", all_mean(&|r| r.ns3path_err) * 100.0),
        format!("{:.1}%", all_mean(&|r| r.m3_err) * 100.0),
        format!("{:.1}%", all_mean(&|r| r.parsimon_err) * 100.0),
    ]);
    print_table(
        "Fig 15: mean |p99 error| of paths' foreground flows",
        &["Path length", "paths", "ns-3-path", "m3", "Parsimon"],
        &table,
    );
    write_result("fig15_error_breakdown", &rows_out);
}
