//! Table 5 + Fig. 12: the §5.3 large-scale scalability experiment on the
//! 384-rack / 6144-host fat tree — matrix B, WebServer, sigma = 2, 50% max
//! load, 2-to-1 core oversubscription, DCTCP — with two initial congestion
//! windows: 10 kB (below the ~15 kB BDP) and 18 kB (above it).
//!
//! Shape to reproduce: with the small window, Parsimon badly overestimates
//! large-flow slowdown (it sums the transport-limited delay once per link)
//! while m3 stays close to ground truth; and m3 is the fastest method.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_parsimon::{parsimon_estimate, slowdown_samples};
use m3_workload::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct WindowResult {
    init_window_kb: u64,
    ns3_p99: f64,
    ns3_secs: f64,
    parsimon_p99: f64,
    parsimon_err: f64,
    parsimon_secs: f64,
    m3_p99: f64,
    m3_err: f64,
    m3_secs: f64,
    /// Per-bucket p99: [truth, parsimon, m3] x 4 buckets (Fig. 12).
    bucket_p99: Vec<(String, f64, f64, f64)>,
}

fn main() {
    let estimator = M3Estimator::new(load_or_train_model());
    let n = n_flows();
    let k = n_paths();
    let ft = FatTree::build(FatTreeSpec::large());
    eprintln!(
        "[table5] large fat tree: {} hosts, {} links",
        ft.all_hosts().len(),
        ft.topo.link_count()
    );
    let routing = Routing::new(&ft.topo);
    let mut results = Vec::new();
    for window_kb in [10u64, 18] {
        let config = SimConfig {
            init_window: window_kb * KB,
            ..SimConfig::default()
        };
        let sc = Scenario {
            n_flows: n,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 2.0,
            max_load: 0.5,
            seed: 55,
        };
        let w = generate(&ft, &routing, &sc);
        eprintln!("[table5] window {window_kb}KB: ground truth...");
        let (gt_out, t_gt) = timed(|| run_simulation(&ft.topo, config, w.flows.clone()));
        let gt = ground_truth_estimate(&gt_out.records);
        eprintln!("[table5] Parsimon...");
        let (pars, t_pars) = timed(|| parsimon_estimate(&ft.topo, &w.flows, &config));
        let pars_est =
            NetworkEstimate::aggregate(&[PathDistribution::from_samples(&slowdown_samples(&pars))]);
        eprintln!("[table5] m3...");
        let (m3_est, t_m3) = timed(|| estimator.estimate(&ft.topo, &w.flows, &config, k, 9));

        let names = ["(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"];
        let bucket_p99: Vec<(String, f64, f64, f64)> = (0..NUM_OUTPUT_BUCKETS)
            .map(|b| {
                (
                    names[b].to_string(),
                    gt.bucket_p99(b),
                    pars_est.bucket_p99(b),
                    m3_est.bucket_p99(b),
                )
            })
            .collect();
        results.push(WindowResult {
            init_window_kb: window_kb,
            ns3_p99: gt.p99(),
            ns3_secs: t_gt.as_secs_f64(),
            parsimon_p99: pars_est.p99(),
            parsimon_err: relative_error(pars_est.p99(), gt.p99()),
            parsimon_secs: t_pars.as_secs_f64(),
            m3_p99: m3_est.p99(),
            m3_err: relative_error(m3_est.p99(), gt.p99()),
            m3_secs: t_m3.as_secs_f64(),
            bucket_p99,
        });
    }
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            format!("{}KB", r.init_window_kb),
            "packet sim".into(),
            format!("{:.2}", r.ns3_p99),
            "-".into(),
            format!("{:.1}s", r.ns3_secs),
            "1x".into(),
        ]);
        rows.push(vec![
            String::new(),
            "Parsimon".into(),
            format!("{:.2}", r.parsimon_p99),
            format!("{:+.1}%", r.parsimon_err * 100.0),
            format!("{:.1}s", r.parsimon_secs),
            format!("{:.0}x", r.ns3_secs / r.parsimon_secs),
        ]);
        rows.push(vec![
            String::new(),
            "m3".into(),
            format!("{:.2}", r.m3_p99),
            format!("{:+.1}%", r.m3_err * 100.0),
            format!("{:.1}s", r.m3_secs),
            format!("{:.0}x", r.ns3_secs / r.m3_secs),
        ]);
    }
    print_table(
        &format!("Table 5: large-scale (6144 hosts, {n} flows)"),
        &[
            "Init window",
            "Method",
            "p99 sldn",
            "err",
            "time",
            "speedup",
        ],
        &rows,
    );
    for r in &results {
        let mut rows = Vec::new();
        for (name, t, p, m) in &r.bucket_p99 {
            rows.push(vec![
                name.clone(),
                format!("{:.2}", t),
                format!("{:.2}", p),
                format!("{:.2}", m),
            ]);
        }
        print_table(
            &format!("Fig 12: per-bucket p99 (window {}KB)", r.init_window_kb),
            &["Bucket", "truth", "Parsimon", "m3"],
            &rows,
        );
    }
    write_result("table5_fig12", &results);
}
