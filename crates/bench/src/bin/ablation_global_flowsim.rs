//! Extension ablation (beyond the paper): how much of flowSim's error comes
//! from *path decomposition* vs the *fluid approximation itself*? Compares
//! per-path flowSim (the paper's front-end), global network-wide flowSim
//! (no decomposition), m3, and ground truth.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    gt_p99: f64,
    path_flowsim_p99: f64,
    global_flowsim_p99: f64,
    m3_p99: f64,
}

fn main() {
    let estimator = M3Estimator::new(load_or_train_model());
    let n = n_flows() / 2;
    let k = n_paths();
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (i, (matrix, workload, load)) in [
        ("A", "CacheFollower", 0.4),
        ("B", "WebServer", 0.5),
        ("C", "WebServer", 0.6),
    ]
    .iter()
    .enumerate()
    {
        let cfg = SimConfig::default();
        let sc = build_full_scenario(2, matrix, workload, 1.0, *load, cfg, n, 300 + i as u64);
        eprintln!("[global-ablation] {}", sc.label);
        let gt = ground_truth_estimate(&run_simulation(&sc.ft.topo, cfg, sc.flows.clone()).records);
        let pf = flowsim_estimate(&sc.ft.topo, &sc.flows, &cfg, k, 3);
        let gf = global_flowsim_estimate(&sc.ft.topo, &sc.flows, &cfg);
        let m3e = estimator.estimate(&sc.ft.topo, &sc.flows, &cfg, k, 3);
        table.push(vec![
            sc.label.clone(),
            format!("{:.2}", gt.p99()),
            format!(
                "{:.2} ({:+.0}%)",
                pf.p99(),
                relative_error(pf.p99(), gt.p99()) * 100.0
            ),
            format!(
                "{:.2} ({:+.0}%)",
                gf.p99(),
                relative_error(gf.p99(), gt.p99()) * 100.0
            ),
            format!(
                "{:.2} ({:+.0}%)",
                m3e.p99(),
                relative_error(m3e.p99(), gt.p99()) * 100.0
            ),
        ]);
        rows.push(Row {
            scenario: sc.label,
            gt_p99: gt.p99(),
            path_flowsim_p99: pf.p99(),
            global_flowsim_p99: gf.p99(),
            m3_p99: m3e.p99(),
        });
    }
    print_table(
        "Extension: fluid-approximation error vs decomposition error (p99)",
        &["Scenario", "truth", "path flowSim", "global flowSim", "m3"],
        &table,
    );
    println!("\nGlobal and per-path flowSim err should be similar (the fluid");
    println!("approximation dominates); m3's learned correction closes the gap.");
    write_result("ablation_global_flowsim", &rows);
}
