//! Fig. 18: the evaluation workload data — traffic-matrix structure (A, B,
//! C) and flow size distribution CDFs (CacheFollower, WebServer, Hadoop).
//! These are the repo's synthetic stand-ins for Meta's production data (see
//! DESIGN.md substitutions); this binary prints the shapes so they can be
//! compared against the published figures.

use m3_bench::*;
use m3_workload::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    matrix_skew: Vec<(String, f64, f64)>,
    size_cdfs: Vec<(String, Vec<(u64, f64)>)>,
    mean_sizes: Vec<(String, f64)>,
}

fn main() {
    let n_racks = 32;
    let mut matrix_skew = Vec::new();
    let mut rows = Vec::new();
    for name in ["A", "B", "C"] {
        let m = TrafficMatrix::by_name(name, n_racks).unwrap();
        let top1 = m.top_percent_share(1.0);
        let top5 = m.top_percent_share(5.0);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", top1 * 100.0),
            format!("{:.1}%", top5 * 100.0),
        ]);
        matrix_skew.push((name.to_string(), top1, top5));
    }
    print_table(
        "Fig 18(a): traffic matrix skew (share of demand in top rack pairs)",
        &["Matrix", "top 1% pairs", "top 5% pairs"],
        &rows,
    );

    let mut size_cdfs = Vec::new();
    let mut mean_sizes = Vec::new();
    let probe = [
        100u64, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000,
    ];
    let mut rows = Vec::new();
    for name in ["WebServer", "CacheFollower", "Hadoop"] {
        let d = SizeDistribution::by_name(name).unwrap();
        let cdf: Vec<(u64, f64)> = probe
            .iter()
            .map(|&x| {
                // Empirical CDF via the quantile table: invert numerically.
                let mut lo = 0.0f64;
                let mut hi = 1.0f64;
                for _ in 0..40 {
                    let mid = (lo + hi) / 2.0;
                    if let SizeDistribution::Empirical(t) = &d {
                        if t.inverse(mid) <= x {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                }
                (x, lo)
            })
            .collect();
        rows.push(
            std::iter::once(name.to_string())
                .chain(cdf.iter().map(|(_, p)| format!("{:.2}", p)))
                .collect(),
        );
        mean_sizes.push((name.to_string(), d.mean()));
        size_cdfs.push((name.to_string(), cdf));
    }
    let headers: Vec<String> = std::iter::once("Workload".to_string())
        .chain(probe.iter().map(|x| {
            if *x >= 1_000_000 {
                format!("{}M", x / 1_000_000)
            } else if *x >= 1_000 {
                format!("{}K", x / 1_000)
            } else {
                format!("{x}")
            }
        }))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Fig 18(b): P(size <= x)", &headers_ref, &rows);
    let rows: Vec<Vec<String>> = mean_sizes
        .iter()
        .map(|(n, m)| vec![n.clone(), format!("{:.0} B", m)])
        .collect();
    print_table("Mean flow sizes", &["Workload", "mean"], &rows);
    write_result(
        "fig18_workload",
        &Out {
            matrix_skew,
            size_cdfs,
            mean_sizes,
        },
    );
}
