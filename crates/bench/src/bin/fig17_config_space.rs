//! Fig. 17 (Appendix B): m3's p99 estimation error across the Table 4
//! network-configuration space — buffer size, initial window, CC protocol,
//! and PFC — on held-out synthetic path scenarios.

use m3_bench::*;
use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_netsim::stats::ErrorSummary;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct ConfigPoint {
    cc: String,
    pfc: bool,
    buffer_kb: u64,
    window_kb: u64,
    err: f64,
}

fn main() {
    let net = load_or_train_model();
    let n_eval = env_usize("M3_CONFIG_SCENARIOS", 60);
    let mut rng = SmallRng::seed_from_u64(31337);
    let mut points = Vec::new();
    for i in 0..n_eval {
        let hops = [2usize, 4, 6][i % 3];
        let mut point = training_point_with_hops(hops, 700_000 + i as u64);
        // Resample the config from the full Table 4 space.
        point.config = m3_workload::spaces::sample_config(&mut rng);
        let ex = make_example(&point, 120, 360, true);
        let truth_p99 =
            NetworkEstimate::aggregate(&[PathDistribution::from_samples(&ex.truth_fg)]).p99();
        let counts = {
            let mut c = [0usize; NUM_OUTPUT_BUCKETS];
            for &(s, _) in &ex.truth_fg {
                c[output_bucket(s)] += 1;
            }
            c
        };
        let out = m3_core::features::decode_log(&net.predict(&ex.input));
        let m3_p99 =
            NetworkEstimate::aggregate(&[PathDistribution::from_model_output(&out, counts)]).p99();
        points.push(ConfigPoint {
            cc: point.config.cc.name().to_string(),
            pfc: point.config.pfc_enabled,
            buffer_kb: point.config.buffer_size / KB,
            window_kb: point.config.init_window / KB,
            err: relative_error(m3_p99, truth_p99),
        });
    }
    let summarize = |label: String, sel: Vec<f64>| -> Option<Vec<String>> {
        if sel.is_empty() {
            return None;
        }
        let s = ErrorSummary::from_signed(&sel);
        Some(vec![
            label,
            format!("{}", s.n),
            format!("{:.1}%", s.mean_abs * 100.0),
            format!("{:+.1}%", s.p50 * 100.0),
            format!("{:.1}%", s.max_abs * 100.0),
        ])
    };
    let mut rows = Vec::new();
    // (a) buffer size halves, (b) init window halves, (c) CC, (d) PFC.
    for (label, lo, hi) in [
        ("buffer 200-350KB", 200, 350),
        ("buffer 350-500KB", 350, 500),
    ] {
        let sel = points
            .iter()
            .filter(|p| p.buffer_kb >= lo && p.buffer_kb < hi)
            .map(|p| p.err)
            .collect();
        rows.extend(summarize(label.into(), sel));
    }
    for (label, lo, hi) in [("window 5-17KB", 5, 17), ("window 17-30KB", 17, 31)] {
        let sel = points
            .iter()
            .filter(|p| p.window_kb >= lo && p.window_kb < hi)
            .map(|p| p.err)
            .collect();
        rows.extend(summarize(label.into(), sel));
    }
    for cc in CcProtocol::ALL {
        let sel = points
            .iter()
            .filter(|p| p.cc == cc.name())
            .map(|p| p.err)
            .collect();
        rows.extend(summarize(format!("cc {}", cc.name()), sel));
    }
    for (label, flag) in [("pfc off", false), ("pfc on", true)] {
        let sel = points
            .iter()
            .filter(|p| p.pfc == flag)
            .map(|p| p.err)
            .collect();
        rows.extend(summarize(label.into(), sel));
    }
    print_table(
        "Fig 17: m3 p99 error across the Table 4 configuration space",
        &["Slice", "n", "mean|err|", "median", "max|err|"],
        &rows,
    );
    write_result("fig17_config_space", &points);
}
