//! Ad-hoc stage breakdown of a cold estimate (temporary profiling aid).

use m3_core::prelude::*;
use m3_netsim::prelude::*;
use m3_nn::prelude::*;
use m3_workload::prelude::*;

fn main() {
    let ft = FatTree::build(FatTreeSpec::small(2));
    let routing = Routing::new(&ft.topo);
    let w = generate(
        &ft,
        &routing,
        &Scenario {
            n_flows: 4_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed: 23,
        },
    );
    let net = M3Net::new(ModelConfig::repro_default(SPEC_DIM), 7);
    let est = M3Estimator::new(net);
    let cfg = SimConfig::default();
    for round in 0..5 {
        let t0 = std::time::Instant::now();
        let e = est.estimate(&ft.topo, &w.flows, &cfg, 100, 13);
        let total = t0.elapsed().as_secs_f64();
        let t = &e.timings;
        println!(
            "round {round}: total {:.1}ms | decompose {:.1}ms flowsim {:.1}ms features {:.1}ms forward {:.1}ms aggregate {:.1}ms | uniq {}",
            total * 1e3,
            t.decompose_s * 1e3,
            t.flowsim_s * 1e3,
            t.features_s * 1e3,
            t.forward_s * 1e3,
            t.aggregate_s * 1e3,
            t.unique_scenarios
        );
    }
}
