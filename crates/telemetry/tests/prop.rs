//! Property tests for telemetry determinism: histogram merge must be
//! associative and order-independent (it is element-wise `u64` addition),
//! and observing values must agree with merging partial histograms.

use m3_telemetry::prelude::*;
use proptest::prelude::*;

const EDGES: HistogramEdges = HistogramEdges {
    lo: 1.0,
    growth: 2.0,
    n: 8,
};

fn arb_hist() -> impl Strategy<Value = HistogramSnapshot> {
    (
        prop::collection::vec(0u64..1_000_000, EDGES.n..=EDGES.n),
        0u64..1_000_000,
    )
        .prop_map(|(buckets, overflow)| {
            let mut h = HistogramSnapshot::empty(EDGES);
            h.buckets = buckets;
            h.overflow = overflow;
            h
        })
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b).expect("same edges by construction");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(a in arb_hist(), b in arb_hist(), c in arb_hist()) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    /// a ⊕ b == b ⊕ a, and folding a whole list forward or reversed gives
    /// the same histogram (order independence).
    #[test]
    fn merge_is_order_independent(hists in prop::collection::vec(arb_hist(), 1..6)) {
        let fold = |hs: &[HistogramSnapshot]| {
            let mut acc = HistogramSnapshot::empty(EDGES);
            for h in hs {
                acc.merge(h).expect("same edges by construction");
            }
            acc
        };
        let forward = fold(&hists);
        let reversed: Vec<_> = hists.iter().rev().cloned().collect();
        prop_assert_eq!(forward, fold(&reversed));
    }

    /// Counts are additive under merge.
    #[test]
    fn merge_adds_counts(a in arb_hist(), b in arb_hist()) {
        prop_assert_eq!(merged(&a, &b).count(), a.count() + b.count());
    }

    /// Observing a value stream into one histogram equals splitting the
    /// stream at any point, observing the halves into two histograms, and
    /// merging — the live path and the merge path agree.
    #[test]
    fn observe_then_merge_matches_single_histogram(
        values in prop::collection::vec(0.0f64..1000.0, 0..64),
        split in 0usize..64,
    ) {
        let split = split.min(values.len());
        let reg = MetricsRegistry::new();
        let whole = reg.histogram("whole", EDGES);
        let left = reg.histogram("left", EDGES);
        let right = reg.histogram("right", EDGES);
        for (i, &v) in values.iter().enumerate() {
            whole.observe(v);
            if i < split { left.observe(v) } else { right.observe(v) }
        }
        let snap = reg.snapshot();
        let combined = merged(
            snap.histogram("left").expect("registered"),
            snap.histogram("right").expect("registered"),
        );
        prop_assert_eq!(snap.histogram("whole").expect("registered"), &combined);
    }

    /// MetricsSnapshot::merge adds counters name-wise regardless of the
    /// order snapshots are folded in.
    #[test]
    fn snapshot_counter_merge_is_order_independent(
        counts in prop::collection::vec((prop::sample::select(vec!["a", "b", "c"]), 0u64..1_000_000), 0..12),
    ) {
        let snaps: Vec<MetricsSnapshot> = counts
            .iter()
            .map(|(name, v)| {
                let reg = MetricsRegistry::new();
                reg.counter(name).add(*v);
                reg.snapshot()
            })
            .collect();
        let fold = |ss: &[MetricsSnapshot]| {
            let mut acc = MetricsSnapshot::empty();
            for s in ss {
                acc.merge(s);
            }
            acc
        };
        let forward = fold(&snaps);
        let reversed: Vec<_> = snaps.iter().rev().cloned().collect();
        prop_assert_eq!(forward, fold(&reversed));
    }
}
