//! Fixed-edge log-bucketed histograms with a deterministic, associative,
//! order-independent merge.
//!
//! Bucket edges are fully determined by `(lo, growth, n)`: bucket `i`
//! covers `(upper(i-1), upper(i)]` with `upper(i) = lo * growth^i`
//! (computed by repeated multiplication so every process derives the
//! exact same IEEE-754 edges), bucket `0` additionally absorbs everything
//! `<= lo`, and values above the last edge land in a dedicated overflow
//! bucket. Because a snapshot is just per-bucket `u64` counts, merging is
//! element-wise addition — associative and commutative by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Shape of a log-bucketed histogram: `n` buckets whose upper edges grow
/// geometrically from `lo` by `growth`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramEdges {
    /// Upper edge of the first bucket (must be positive).
    pub lo: f64,
    /// Geometric growth factor between consecutive edges (must be > 1).
    pub growth: f64,
    /// Number of finite buckets (the overflow bucket is extra).
    pub n: usize,
}

impl HistogramEdges {
    /// A log-spaced edge set. Degenerate parameters are clamped to the
    /// smallest valid histogram rather than panicking.
    pub fn log(lo: f64, growth: f64, n: usize) -> Self {
        let lo = if lo.is_finite() && lo > 0.0 { lo } else { 1e-9 };
        let growth = if growth.is_finite() && growth > 1.0 {
            growth
        } else {
            2.0
        };
        Self {
            lo,
            growth,
            n: n.max(1),
        }
    }

    /// Default edges for latency-in-seconds histograms: 1 µs .. ~4300 s
    /// in 32 doubling buckets.
    pub fn latency_seconds() -> Self {
        Self::log(1e-6, 2.0, 32)
    }

    /// The upper edges, derived by repeated multiplication (deterministic
    /// across processes; no `powf`).
    pub fn uppers(&self) -> Vec<f64> {
        let mut edges = Vec::with_capacity(self.n);
        let mut e = self.lo;
        for _ in 0..self.n {
            edges.push(e);
            e *= self.growth;
        }
        edges
    }
}

/// The shared atomic cell behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub(crate) edges: HistogramEdges,
    uppers: Vec<f64>,
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
}

impl HistogramCell {
    pub(crate) fn new(edges: HistogramEdges) -> Self {
        let uppers = edges.uppers();
        let buckets = (0..edges.n).map(|_| AtomicU64::new(0)).collect();
        Self {
            edges,
            uppers,
            buckets,
            overflow: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: f64) {
        if v.is_nan() {
            return; // NaN carries no information; dropping it keeps counts meaningful
        }
        // First bucket whose upper edge is >= v; `partition_point` is a
        // branch-light binary search over the precomputed edges.
        let i = self.uppers.partition_point(|&u| u < v);
        match self.buckets.get(i) {
            Some(b) => b.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            lo: self.edges.lo,
            growth: self.edges.growth,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add_snapshot(&self, snap: &HistogramSnapshot) {
        if snap.buckets.len() != self.buckets.len() {
            return; // incompatible shape: caller registered different edges
        }
        for (b, &v) in self.buckets.iter().zip(&snap.buckets) {
            b.fetch_add(v, Ordering::Relaxed);
        }
        self.overflow.fetch_add(snap.overflow, Ordering::Relaxed);
    }
}

/// A clone-able handle to a registered histogram. Disabled handles (from
/// a no-op registry) skip all work.
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCell>>);

impl Histogram {
    /// A disconnected handle: `observe` is a no-op.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.observe(v);
        }
    }

    /// Current contents, or `None` for a disconnected handle.
    pub fn snapshot(&self) -> Option<HistogramSnapshot> {
        self.0.as_ref().map(|c| c.snapshot())
    }
}

/// Error returned by [`HistogramSnapshot::merge`] when the two snapshots
/// were built with different edge sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeMismatch;

impl std::fmt::Display for EdgeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "histogram snapshots have different bucket edges")
    }
}

impl std::error::Error for EdgeMismatch {}

/// Point-in-time, pure-data contents of a histogram. Serializable,
/// mergeable, and deterministic (only `u64` counts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Upper edge of the first bucket.
    pub lo: f64,
    /// Geometric growth factor between consecutive edges.
    pub growth: f64,
    /// Per-bucket observation counts; bucket `i` covers
    /// `(lo * growth^(i-1), lo * growth^i]`.
    pub buckets: Vec<u64>,
    /// Observations above the last finite edge.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given edges.
    pub fn empty(edges: HistogramEdges) -> Self {
        Self {
            lo: edges.lo,
            growth: edges.growth,
            buckets: vec![0; edges.n],
            overflow: 0,
        }
    }

    /// The edge set this snapshot was built with.
    pub fn edges(&self) -> HistogramEdges {
        HistogramEdges {
            lo: self.lo,
            growth: self.growth,
            n: self.buckets.len(),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Element-wise addition of `other` into `self`. Associative and
    /// order-independent; fails without modifying `self` if the edge sets
    /// differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), EdgeMismatch> {
        if self.edges() != other.edges() {
            return Err(EdgeMismatch);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        Ok(())
    }

    /// Upper-edge estimate of quantile `q` in `[0, 1]`: the upper edge of
    /// the first bucket at which the cumulative count reaches `q * count`.
    /// Returns `None` for an empty histogram; overflow observations report
    /// `f64::INFINITY`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        let mut edge = self.lo;
        for &b in &self.buckets {
            cum += b;
            if cum >= target {
                return Some(edge);
            }
            edge *= self.growth;
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_buckets_and_overflow() {
        let cell = HistogramCell::new(HistogramEdges::log(1.0, 10.0, 3)); // edges 1, 10, 100
        cell.observe(0.5); // <= lo -> bucket 0
        cell.observe(1.0); // == lo -> bucket 0
        cell.observe(5.0); // bucket 1
        cell.observe(100.0); // bucket 2 (inclusive upper edge)
        cell.observe(101.0); // overflow
        cell.observe(f64::NAN); // dropped
        let s = cell.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn merge_adds_elementwise_and_rejects_mismatch() {
        let e = HistogramEdges::log(1.0, 2.0, 4);
        let mut a = HistogramSnapshot::empty(e);
        a.buckets = vec![1, 2, 3, 4];
        a.overflow = 5;
        let mut b = HistogramSnapshot::empty(e);
        b.buckets = vec![10, 20, 30, 40];
        b.overflow = 50;
        a.merge(&b).unwrap();
        assert_eq!(a.buckets, vec![11, 22, 33, 44]);
        assert_eq!(a.overflow, 55);

        let c = HistogramSnapshot::empty(HistogramEdges::log(1.0, 2.0, 5));
        assert_eq!(a.merge(&c), Err(EdgeMismatch));
        assert_eq!(a.buckets, vec![11, 22, 33, 44]); // unchanged on error
    }

    #[test]
    fn quantile_walks_cumulative_counts() {
        let mut s = HistogramSnapshot::empty(HistogramEdges::log(1.0, 10.0, 3));
        s.buckets = vec![50, 40, 10];
        assert_eq!(s.quantile(0.5), Some(1.0));
        assert_eq!(s.quantile(0.9), Some(10.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        s.overflow = 100;
        assert_eq!(s.quantile(0.99), Some(f64::INFINITY));
        assert_eq!(
            HistogramSnapshot::empty(HistogramEdges::log(1.0, 2.0, 2)).quantile(0.5),
            None
        );
    }

    #[test]
    fn noop_handle_is_inert() {
        let h = Histogram::noop();
        h.observe(1.0);
        assert!(h.snapshot().is_none());
    }
}
