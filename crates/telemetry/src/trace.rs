//! Causal tracing: span trees and typed events in a flight recorder.
//!
//! This is the "what happened, in what order, caused by what" companion to
//! the aggregate [`MetricsRegistry`](crate::registry::MetricsRegistry).
//! A [`TraceRecorder`] owns a set of sharded ring buffers (the *flight
//! recorder*): threads append [`TraceEvent`]s to their shard and, when a
//! ring fills, the oldest events are overwritten — recording never blocks
//! on memory and never grows unbounded. Like the metrics registry, the
//! recorder is a noop-able handle: a disabled recorder costs one branch
//! per call site, which is what `BENCH_tracing_overhead.json` gates.
//!
//! ## Causality and determinism
//!
//! Spans form a tree via explicit parent/child IDs. A span ID is a hash of
//! `(parent id, trace id, name, child index)` — **not** a global counter —
//! so the IDs produced by a deterministic workload are identical across
//! runs and across thread interleavings. Sequential code uses
//! [`TraceSpan::child`] (auto-indexed); fan-out regions (e.g. a rayon
//! `par_iter` over flowSim slots) use [`TraceSpan::child_indexed`] with the
//! slot index so every run derives the same IDs regardless of scheduling.
//!
//! Every event carries two clocks:
//!
//! * `vts` — *virtual* time in nanoseconds (simulator time). Deterministic
//!   for a fixed seed; used by counter-track probes.
//! * `wall_us` — wall-clock microseconds since the recorder's epoch. A
//!   *wall field* in the sense of
//!   [`MetricsSnapshot::deterministic_view`](crate::snapshot::MetricsSnapshot::deterministic_view):
//!   excluded from determinism guarantees and zeroed (and flagged) by the
//!   deterministic export.
//!
//! [`FlightRecording::to_chrome_json`] exports Chrome trace-event JSON
//! consumable by Perfetto / `chrome://tracing`;
//! [`FlightRecording::to_chrome_deterministic_json`] is the golden-file
//! variant with wall fields zeroed and flagged in `otherData`.
//!
//! **Ring overflow breaks byte-equality**: once the recorder overwrites
//! events, which events survive depends on thread scheduling. Golden tests
//! must size the recorder with ample headroom ([`TraceRecorder::dropped`]
//! reports overwrites; the exports record the count in `otherData`).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Number of ring-buffer shards (power of two). Threads hash to a shard,
/// so contention is bounded without per-thread registration.
const SHARDS: usize = 8;

/// Smallest per-shard capacity; keeps tiny recorders usable.
const MIN_SHARD_CAP: usize = 64;

/// Default total event capacity for CLI-created recorders (~10 MB).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 17;

/// Default virtual-time sampling stride for simulator probes (100 µs of
/// simulated time between counter samples).
pub const DEFAULT_PROBE_STRIDE_NS: u64 = 100_000;

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A span opened. `name` is the span's display name.
    Begin { name: &'static str },
    /// The span closed (always `seq == u32::MAX`).
    End,
    /// A point event inside a span (cache hit, degradation, fault, ...).
    Instant { name: &'static str, detail: String },
    /// A counter-track sample at virtual time `vts` (queue depth,
    /// utilization, ECN marks, ...). `track` names the counter track.
    Counter { track: Arc<str>, value: f64 },
}

impl TraceEventKind {
    /// Stable discriminant for canonical ordering.
    fn order(&self) -> u8 {
        match self {
            TraceEventKind::Begin { .. } => 0,
            TraceEventKind::Instant { .. } => 1,
            TraceEventKind::Counter { .. } => 2,
            TraceEventKind::End => 3,
        }
    }
}

/// One record in the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Trace (request) this event belongs to.
    pub trace: u64,
    /// Owning span ID (deterministic hash, never 0 for real spans).
    pub span: u64,
    /// Parent span ID (0 for roots).
    pub parent: u64,
    /// Emission order within the span: 0 for `Begin`, `u32::MAX` for
    /// `End`, monotonically increasing in between.
    pub seq: u32,
    /// Display lane (Chrome `tid`): 0 is the pipeline lane, flowSim slots
    /// get `1 + slot`.
    pub lane: u32,
    /// Virtual time in nanoseconds (0 when not applicable). Deterministic.
    pub vts: u64,
    /// Wall-clock microseconds since the recorder epoch. **Wall field** —
    /// zeroed by the deterministic export.
    pub wall_us: u64,
    /// Payload.
    pub kind: TraceEventKind,
}

/// Fixed-capacity overwrite-oldest event buffer.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    /// Next overwrite position once `buf.len() == cap`.
    head: usize,
    cap: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            head: 0,
            cap: cap.max(1),
        }
    }

    /// Append, overwriting the oldest event when full. Returns `true`
    /// when an old event was overwritten (i.e. dropped).
    fn push(&mut self, ev: TraceEvent) -> bool {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            true
        }
    }

    /// Events oldest-first.
    fn drain_ordered(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, front) = self.buf.split_at(self.head.min(self.buf.len()));
        front.iter().chain(tail.iter())
    }
}

#[derive(Debug)]
struct RecorderInner {
    epoch: Instant,
    shards: Vec<Mutex<Ring>>,
    dropped: AtomicU64,
}

/// Recover from a poisoned ring lock: event data is plain-old-data, so a
/// panicking recorder thread cannot leave it in a broken state.
fn lock_ring(m: &Mutex<Ring>) -> MutexGuard<'_, Ring> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    /// Per-thread shard selector, hashed once from the thread ID.
    static SHARD_SEED: usize = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish() as usize
    };
}

/// Handle to a flight recorder. Clone-able and cheap; the disabled
/// (`noop`) form skips all work behind a single branch, mirroring
/// [`MetricsRegistry::noop`](crate::registry::MetricsRegistry::noop).
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    inner: Option<Arc<RecorderInner>>,
}

impl TraceRecorder {
    /// An enabled recorder holding roughly `capacity` events total across
    /// its shards (each shard holds `max(capacity / 8, 64)`).
    pub fn new(capacity: usize) -> Self {
        let per_shard = (capacity / SHARDS).max(MIN_SHARD_CAP);
        TraceRecorder {
            inner: Some(Arc::new(RecorderInner {
                epoch: Instant::now(),
                shards: (0..SHARDS)
                    .map(|_| Mutex::new(Ring::new(per_shard)))
                    .collect(),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// A disabled recorder: every operation is a no-op.
    pub fn noop() -> Self {
        TraceRecorder { inner: None }
    }

    /// Whether events are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Wall-clock microseconds since this recorder's epoch (0 when
    /// disabled). A wall field — never part of determinism guarantees.
    pub fn wall_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Events overwritten because a ring filled.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    fn record(&self, ev: TraceEvent) {
        if let Some(inner) = &self.inner {
            let shard = SHARD_SEED.with(|s| *s) & (SHARDS - 1);
            let overwrote = lock_ring(&inner.shards[shard]).push(ev);
            if overwrote {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Copy out everything currently recorded, in canonical deterministic
    /// order: `(trace, lane, span, seq, kind)`. Does not clear the rings.
    pub fn snapshot(&self) -> FlightRecording {
        let Some(inner) = &self.inner else {
            return FlightRecording {
                events: Vec::new(),
                dropped: 0,
            };
        };
        let mut events = Vec::new();
        for shard in &inner.shards {
            let ring = lock_ring(shard);
            events.extend(ring.drain_ordered().cloned());
        }
        events.sort_by(|a, b| {
            (a.trace, a.lane, a.span, a.seq, a.kind.order()).cmp(&(
                b.trace,
                b.lane,
                b.span,
                b.seq,
                b.kind.order(),
            ))
        });
        FlightRecording {
            events,
            dropped: inner.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Deterministic span-ID derivation: FNV-1a over the causal coordinates.
/// No global counter, so IDs are identical across runs and schedulings.
fn span_id(parent: u64, trace: u64, name: &str, index: u32) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&parent.to_le_bytes());
    eat(&trace.to_le_bytes());
    eat(name.as_bytes());
    eat(&index.to_le_bytes());
    h.max(1) // 0 is reserved for "no parent"
}

/// Per-request tracing context threaded end-to-end through the pipeline.
/// `Default` is the noop context, so `EstimateOptions`-style structs can
/// add a `trace` field without disturbing existing call sites.
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    /// Destination flight recorder (possibly noop).
    pub recorder: TraceRecorder,
    /// Trace (request) ID. The serving layer stamps this from the job ID
    /// and journals it for post-crash correlation; 0 means "untraced".
    pub trace_id: u64,
    /// Virtual-time stride (ns) for simulator counter probes; 0 means
    /// [`DEFAULT_PROBE_STRIDE_NS`].
    pub probe_stride_ns: u64,
}

impl TraceCtx {
    /// A context that records into `recorder` under `trace_id`.
    pub fn new(recorder: TraceRecorder, trace_id: u64) -> Self {
        TraceCtx {
            recorder,
            trace_id,
            probe_stride_ns: 0,
        }
    }

    /// The disabled context.
    pub fn noop() -> Self {
        TraceCtx::default()
    }

    /// Whether spans opened from this context record anything.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Effective probe stride in virtual nanoseconds.
    pub fn stride_ns(&self) -> u64 {
        if self.probe_stride_ns == 0 {
            DEFAULT_PROBE_STRIDE_NS
        } else {
            self.probe_stride_ns
        }
    }

    /// Open a root span (parent 0, lane 0, child index 0).
    pub fn root(&self, name: &'static str) -> TraceSpan {
        TraceSpan::open(self.recorder.clone(), self.trace_id, 0, name, 0, 0)
    }
}

/// An open span. Emits `Begin` on creation and `End` when dropped (or
/// [`finish`](TraceSpan::finish)ed). `Sync`, so rayon workers can emit
/// child spans and events through a shared reference.
#[derive(Debug)]
pub struct TraceSpan {
    recorder: TraceRecorder,
    trace: u64,
    id: u64,
    parent: u64,
    lane: u32,
    next_seq: AtomicU32,
    next_child: AtomicU32,
    ended: AtomicBool,
}

impl TraceSpan {
    fn open(
        recorder: TraceRecorder,
        trace: u64,
        parent: u64,
        name: &'static str,
        index: u32,
        lane: u32,
    ) -> TraceSpan {
        if !recorder.is_enabled() {
            return TraceSpan {
                recorder,
                trace,
                id: 0,
                parent,
                lane,
                next_seq: AtomicU32::new(1),
                next_child: AtomicU32::new(0),
                ended: AtomicBool::new(true),
            };
        }
        let id = span_id(parent, trace, name, index);
        let wall_us = recorder.wall_us();
        recorder.record(TraceEvent {
            trace,
            span: id,
            parent,
            seq: 0,
            lane,
            vts: 0,
            wall_us,
            kind: TraceEventKind::Begin { name },
        });
        TraceSpan {
            recorder,
            trace,
            id,
            parent,
            lane,
            next_seq: AtomicU32::new(1),
            next_child: AtomicU32::new(0),
            ended: AtomicBool::new(false),
        }
    }

    /// This span's deterministic ID (0 when disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether events emitted through this span are recorded.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Open a child span with an automatically assigned child index.
    /// Deterministic only when calls happen in a deterministic order — use
    /// [`child_indexed`](TraceSpan::child_indexed) inside parallel regions.
    pub fn child(&self, name: &'static str) -> TraceSpan {
        let idx = self.next_child.fetch_add(1, Ordering::Relaxed);
        self.child_indexed(name, idx)
    }

    /// Open a child span with an explicit index (e.g. the rayon slot
    /// number), keeping span IDs deterministic under parallel scheduling.
    pub fn child_indexed(&self, name: &'static str, index: u32) -> TraceSpan {
        TraceSpan::open(
            self.recorder.clone(),
            self.trace,
            self.id,
            name,
            index,
            self.lane,
        )
    }

    /// [`child_indexed`](TraceSpan::child_indexed) on an explicit display
    /// lane (Chrome `tid`), so parallel slots render side by side.
    pub fn child_on_lane(&self, name: &'static str, index: u32, lane: u32) -> TraceSpan {
        TraceSpan::open(
            self.recorder.clone(),
            self.trace,
            self.id,
            name,
            index,
            lane,
        )
    }

    /// Record a point event (cache hit, degradation, fault, ...).
    pub fn instant(&self, name: &'static str, detail: impl Into<String>) {
        if !self.recorder.is_enabled() {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let wall_us = self.recorder.wall_us();
        self.recorder.record(TraceEvent {
            trace: self.trace,
            span: self.id,
            parent: self.parent,
            seq,
            lane: self.lane,
            vts: 0,
            wall_us,
            kind: TraceEventKind::Instant {
                name,
                detail: detail.into(),
            },
        });
    }

    /// Record a counter-track sample at virtual time `vts_ns`. The track
    /// name is an `Arc<str>` so hot probes precompute it once.
    pub fn counter(&self, track: &Arc<str>, vts_ns: u64, value: f64) {
        if !self.recorder.is_enabled() {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(TraceEvent {
            trace: self.trace,
            span: self.id,
            parent: self.parent,
            seq,
            lane: self.lane,
            vts: vts_ns,
            wall_us: 0,
            kind: TraceEventKind::Counter {
                track: track.clone(),
                value,
            },
        });
    }

    /// Close the span now (otherwise `Drop` does it).
    pub fn finish(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if self.ended.swap(true, Ordering::Relaxed) {
            return;
        }
        let wall_us = self.recorder.wall_us();
        self.recorder.record(TraceEvent {
            trace: self.trace,
            span: self.id,
            parent: self.parent,
            seq: u32::MAX,
            lane: self.lane,
            vts: 0,
            wall_us,
            kind: TraceEventKind::End,
        });
    }
}

/// A point-in-time copy of the flight recorder, in canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecording {
    /// Events sorted by `(trace, lane, span, seq, kind)`.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrites at snapshot time.
    pub dropped: u64,
}

/// Matched span endpoints collected during export.
struct SpanAgg {
    name: &'static str,
    begin_wall: Option<u64>,
    end_wall: Option<u64>,
}

/// Minimal JSON string escaper (quotes, backslashes, control chars).
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl FlightRecording {
    /// An empty recording.
    pub fn empty() -> Self {
        FlightRecording {
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Export as Chrome trace-event JSON (open in Perfetto or
    /// `chrome://tracing`). Span and instant timestamps are wall-clock
    /// microseconds since the recorder epoch; counter-track samples are
    /// placed at `owning span begin + virtual time`, so simulator probes
    /// overlay the span that ran them.
    pub fn to_chrome_json(&self) -> String {
        self.export(false)
    }

    /// Deterministic export for golden files: identical structure and
    /// ordering to [`to_chrome_json`](FlightRecording::to_chrome_json),
    /// but every wall-clock field (`ts`/`dur` of span and instant events)
    /// is zeroed, and `otherData` flags the view — the trace-level
    /// analogue of
    /// [`MetricsSnapshot::deterministic_view`](crate::snapshot::MetricsSnapshot::deterministic_view).
    /// Counter events keep their virtual-time timestamps, which are
    /// deterministic for a fixed seed.
    pub fn to_chrome_deterministic_json(&self) -> String {
        self.export(true)
    }

    fn export(&self, deterministic: bool) -> String {
        // Pass 1: match Begin/End pairs per (trace, span).
        let mut spans: HashMap<(u64, u64), SpanAgg> = HashMap::new();
        for ev in &self.events {
            match &ev.kind {
                TraceEventKind::Begin { name } => {
                    let agg = spans.entry((ev.trace, ev.span)).or_insert(SpanAgg {
                        name,
                        begin_wall: None,
                        end_wall: None,
                    });
                    agg.name = name;
                    agg.begin_wall = Some(ev.wall_us);
                }
                TraceEventKind::End => {
                    let agg = spans.entry((ev.trace, ev.span)).or_insert(SpanAgg {
                        name: "?",
                        begin_wall: None,
                        end_wall: None,
                    });
                    agg.end_wall = Some(ev.wall_us);
                }
                _ => {}
            }
        }

        // Pass 2: emit, preserving canonical event order.
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n ");
        };
        for ev in &self.events {
            match &ev.kind {
                TraceEventKind::Begin { name } => {
                    let agg = &spans[&(ev.trace, ev.span)];
                    let (ts, dur, complete) = match (agg.begin_wall, agg.end_wall) {
                        (Some(b), Some(e)) => (b, e.saturating_sub(b), true),
                        (Some(b), None) => (b, 0, false),
                        _ => (0, 0, false),
                    };
                    let (ts, dur) = if deterministic { (0, 0) } else { (ts, dur) };
                    sep(&mut out);
                    out.push_str("{\"name\":\"");
                    esc(name, &mut out);
                    let _ = write!(
                        out,
                        "\",\"cat\":\"m3\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{},\"tid\":{},\"args\":{{\"span\":\"{:#x}\",\"parent\":\"{:#x}\"",
                        ev.trace, ev.lane, ev.span, ev.parent
                    );
                    if !complete {
                        out.push_str(",\"incomplete\":\"true\"");
                    }
                    out.push_str("}}");
                }
                TraceEventKind::End => {}
                TraceEventKind::Instant { name, detail } => {
                    let ts = if deterministic { 0 } else { ev.wall_us };
                    sep(&mut out);
                    out.push_str("{\"name\":\"");
                    esc(name, &mut out);
                    let _ = write!(
                        out,
                        "\",\"cat\":\"m3\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\"pid\":{},\"tid\":{},\"args\":{{\"span\":\"{:#x}\",\"detail\":\"",
                        ev.trace, ev.lane, ev.span
                    );
                    esc(detail, &mut out);
                    out.push_str("\"}}");
                }
                TraceEventKind::Counter { track, value } => {
                    // Virtual ns -> µs on the owning span's wall offset
                    // (offset 0 in the deterministic view).
                    let base = if deterministic {
                        0
                    } else {
                        spans
                            .get(&(ev.trace, ev.span))
                            .and_then(|a| a.begin_wall)
                            .unwrap_or(0)
                    };
                    let ts = base as f64 + ev.vts as f64 / 1000.0;
                    sep(&mut out);
                    out.push_str("{\"name\":\"");
                    esc(track, &mut out);
                    let _ = write!(
                        out,
                        "\",\"cat\":\"m3\",\"ph\":\"C\",\"ts\":{ts:?},\"pid\":{},\"tid\":{},\"args\":{{\"value\":{:?}}}}}",
                        ev.trace, ev.lane, value
                    );
                }
            }
        }
        // Process-name metadata per trace, in sorted order.
        let mut traces: Vec<u64> = spans.keys().map(|&(t, _)| t).collect();
        traces.sort_unstable();
        traces.dedup();
        for t in traces {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{t},\"args\":{{\"name\":\"m3 trace {t:#x}\"}}}}"
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"format\":\"m3-trace\",\"version\":\"1\"");
        let _ = write!(out, ",\"dropped\":\"{}\"", self.dropped);
        if deterministic {
            out.push_str(",\"deterministic\":\"true\",\"wall_fields_zeroed\":\"ts,dur\"");
        }
        out.push_str("}}\n");
        out
    }
}

/// One row of the slowest-spans table in a [`TraceSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Wall duration in microseconds.
    pub dur_us: u64,
    /// Owning trace ID.
    pub trace: u64,
}

/// Aggregate view of an exported trace file, for `m3 trace`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// All `traceEvents` entries, including metadata.
    pub total_events: usize,
    /// Complete (`ph == "X"`) span events.
    pub span_count: usize,
    /// Instant (`ph == "i"`) events.
    pub instant_count: usize,
    /// Counter (`ph == "C"`) samples.
    pub counter_count: usize,
    /// Distinct trace IDs (`pid`s) present.
    pub traces: Vec<u64>,
    /// Counter tracks and their sample counts, name-sorted.
    pub counter_tracks: Vec<(String, usize)>,
    /// Spans sorted by descending duration (capped at 20).
    pub slowest: Vec<SpanStat>,
    /// `otherData.dropped`, when present.
    pub dropped: u64,
    /// Whether the file is a deterministic (wall-zeroed) export.
    pub deterministic: bool,
}

/// Parse a Chrome trace-event JSON file (as produced by
/// [`FlightRecording::to_chrome_json`] — but tolerant of any conforming
/// producer) into a [`TraceSummary`].
pub fn summarize_chrome_json(json: &str) -> Result<TraceSummary, String> {
    use serde_json::Value;
    fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
        v.as_object().and_then(|m| m.get(key))
    }
    fn field_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
        field(v, key).and_then(|f| f.as_str())
    }
    fn field_u64(v: &Value, key: &str) -> Option<u64> {
        match field(v, key) {
            Some(Value::Number(n)) => n.to_int::<u64>().ok(),
            _ => None,
        }
    }
    let v: Value = serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let Some(Value::Array(events)) = field(&v, "traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let mut summary = TraceSummary {
        total_events: events.len(),
        ..TraceSummary::default()
    };
    let mut tracks: HashMap<String, usize> = HashMap::new();
    for ev in events {
        let ph = field_str(ev, "ph").unwrap_or("");
        let name = field_str(ev, "name").unwrap_or("?");
        if let Some(pid) = field_u64(ev, "pid") {
            if ph != "M" && !summary.traces.contains(&pid) {
                summary.traces.push(pid);
            }
        }
        match ph {
            "X" => {
                summary.span_count += 1;
                summary.slowest.push(SpanStat {
                    name: name.to_string(),
                    dur_us: field_u64(ev, "dur").unwrap_or(0),
                    trace: field_u64(ev, "pid").unwrap_or(0),
                });
            }
            "i" => summary.instant_count += 1,
            "C" => {
                summary.counter_count += 1;
                *tracks.entry(name.to_string()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    summary.traces.sort_unstable();
    summary
        .slowest
        .sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then_with(|| a.name.cmp(&b.name)));
    summary.slowest.truncate(20);
    summary.counter_tracks = tracks.into_iter().collect();
    summary.counter_tracks.sort();
    if let Some(other) = field(&v, "otherData") {
        summary.dropped = field_str(other, "dropped")
            .and_then(|d| d.parse().ok())
            .unwrap_or(0);
        summary.deterministic = field_str(other, "deterministic") == Some("true");
    }
    Ok(summary)
}

/// Render a [`TraceSummary`] as an aligned plain-text report.
pub fn render_trace_summary(s: &TraceSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace summary");
    let _ = writeln!(
        out,
        "  events: {} total ({} spans, {} instants, {} counter samples)",
        s.total_events, s.span_count, s.instant_count, s.counter_count
    );
    let _ = writeln!(out, "  traces: {:?}", s.traces);
    if s.dropped > 0 {
        let _ = writeln!(out, "  DROPPED: {} events lost to ring overflow", s.dropped);
    }
    if s.deterministic {
        let _ = writeln!(out, "  deterministic view: wall ts/dur zeroed");
    }
    if !s.counter_tracks.is_empty() {
        let _ = writeln!(out, "\ncounter tracks");
        let w = s
            .counter_tracks
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(4);
        for (name, n) in &s.counter_tracks {
            let _ = writeln!(out, "  {name:<w$}  {n} samples");
        }
    }
    if !s.slowest.is_empty() {
        let _ = writeln!(out, "\nslowest spans (wall µs)");
        let w = s.slowest.iter().map(|r| r.name.len()).max().unwrap_or(4);
        for r in &s.slowest {
            let _ = writeln!(
                out,
                "  {:<w$}  {:>10}  trace {:#x}",
                r.name, r.dur_us, r.trace
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_everything_is_inert() {
        let ctx = TraceCtx::noop();
        assert!(!ctx.is_enabled());
        let root = ctx.root("estimate");
        assert_eq!(root.id(), 0);
        root.instant("cache_hit", "k=42");
        let track: Arc<str> = Arc::from("qbytes");
        root.counter(&track, 1000, 5.0);
        let child = root.child("decompose");
        child.finish();
        root.finish();
        let rec = TraceRecorder::noop().snapshot();
        assert!(rec.events.is_empty());
        assert_eq!(TraceRecorder::noop().wall_us(), 0);
    }

    #[test]
    fn span_tree_records_begin_end_parentage() {
        let rec = TraceRecorder::new(1024);
        let ctx = TraceCtx::new(rec.clone(), 7);
        let root = ctx.root("estimate");
        let root_id = root.id();
        let child = root.child("decompose");
        let child_id = child.id();
        assert_ne!(root_id, 0);
        assert_ne!(child_id, root_id);
        child.instant("note", "hello");
        child.finish();
        root.finish();
        let snap = rec.snapshot();
        // Begin+End for both spans, one instant.
        assert_eq!(snap.events.len(), 5);
        let child_begin = snap
            .events
            .iter()
            .find(|e| e.span == child_id && matches!(e.kind, TraceEventKind::Begin { .. }))
            .unwrap();
        assert_eq!(child_begin.parent, root_id);
        assert_eq!(child_begin.trace, 7);
        let instant = snap
            .events
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::Instant { .. }))
            .unwrap();
        assert_eq!(instant.span, child_id);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn span_ids_are_run_independent() {
        let mk = || {
            let rec = TraceRecorder::new(256);
            let ctx = TraceCtx::new(rec.clone(), 3);
            let root = ctx.root("estimate");
            let a = root.child_indexed("slot", 0).id();
            let b = root.child_indexed("slot", 1).id();
            (root.id(), a, b)
        };
        assert_eq!(mk(), mk(), "hash-derived IDs must not depend on run state");
        let (_, a, b) = mk();
        assert_ne!(a, b, "sibling indexes must disambiguate IDs");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = Ring::new(3);
        for i in 0..5u64 {
            let dropped = ring.push(TraceEvent {
                trace: 1,
                span: i,
                parent: 0,
                seq: 0,
                lane: 0,
                vts: 0,
                wall_us: 0,
                kind: TraceEventKind::End,
            });
            assert_eq!(dropped, i >= 3);
        }
        let spans: Vec<u64> = ring.drain_ordered().map(|e| e.span).collect();
        assert_eq!(spans, vec![2, 3, 4], "oldest events overwritten first");
    }

    #[test]
    fn recorder_reports_dropped_on_overflow() {
        let rec = TraceRecorder::new(1); // clamps to 64/shard
        let ctx = TraceCtx::new(rec.clone(), 1);
        let root = ctx.root("r");
        let track: Arc<str> = Arc::from("t");
        for i in 0..1000 {
            root.counter(&track, i, i as f64);
        }
        root.finish();
        assert!(rec.dropped() > 0, "1001+ events into a 64-slot ring");
        assert!(rec.snapshot().dropped > 0);
    }

    #[test]
    fn snapshot_order_is_canonical() {
        let rec = TraceRecorder::new(1024);
        let ctx = TraceCtx::new(rec.clone(), 9);
        let root = ctx.root("estimate");
        let track: Arc<str> = Arc::from("q");
        root.counter(&track, 100, 1.0);
        root.counter(&track, 200, 2.0);
        root.instant("late", "x");
        root.finish();
        let snap = rec.snapshot();
        let seqs: Vec<u32> = snap.events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "events ordered by seq within the span");
    }

    #[test]
    fn chrome_export_emits_x_i_c_events() {
        let rec = TraceRecorder::new(1024);
        let ctx = TraceCtx::new(rec.clone(), 5);
        let root = ctx.root("estimate");
        root.instant("cache_hit", "key=\"weird\"\n");
        let track: Arc<str> = Arc::from("netsim.qbytes.l0.fwd");
        root.counter(&track, 100_000, 123.0);
        root.finish();
        let json = rec.snapshot().to_chrome_json();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("netsim.qbytes.l0.fwd"));
        assert!(json.contains("\\\"weird\\\""), "details are escaped");
        assert!(json.contains("\"process_name\""));
        // The export must be valid JSON by our own parser.
        let summary = summarize_chrome_json(&json).unwrap();
        assert_eq!(summary.span_count, 1);
        assert_eq!(summary.instant_count, 1);
        assert_eq!(summary.counter_count, 1);
        assert_eq!(summary.traces, vec![5]);
        assert_eq!(summary.counter_tracks.len(), 1);
    }

    #[test]
    fn deterministic_export_zeroes_and_flags_wall_fields() {
        let rec = TraceRecorder::new(1024);
        let ctx = TraceCtx::new(rec.clone(), 2);
        let root = ctx.root("estimate");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let track: Arc<str> = Arc::from("q");
        root.counter(&track, 250_000, 1.5);
        root.finish();
        let det = rec.snapshot().to_chrome_deterministic_json();
        assert!(det.contains("\"deterministic\":\"true\""));
        assert!(det.contains("\"wall_fields_zeroed\":\"ts,dur\""));
        assert!(det.contains("\"ts\":0,\"dur\":0"));
        // Counter keeps its virtual timestamp (250_000 ns = 250 µs).
        assert!(det.contains("\"ts\":250.0"), "virtual ts survives: {det}");
        let summary = summarize_chrome_json(&det).unwrap();
        assert!(summary.deterministic);
    }

    #[test]
    fn two_identical_runs_export_identical_deterministic_json() {
        let run = || {
            let rec = TraceRecorder::new(4096);
            let ctx = TraceCtx::new(rec.clone(), 11);
            let root = ctx.root("estimate");
            for s in 0..4u32 {
                let slot = root.child_on_lane("slot", s, 1 + s);
                let track: Arc<str> = Arc::from("util");
                for k in 0..3u64 {
                    slot.counter(&track, k * 50_000, 0.25 * (s as f64 + k as f64));
                }
                slot.finish();
            }
            root.finish();
            rec.snapshot().to_chrome_deterministic_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_emission_is_deterministic_with_explicit_indexes() {
        let run = || {
            let rec = TraceRecorder::new(1 << 14);
            let ctx = TraceCtx::new(rec.clone(), 13);
            let root = ctx.root("estimate");
            std::thread::scope(|scope| {
                for s in 0..8u32 {
                    let root = &root;
                    scope.spawn(move || {
                        let slot = root.child_on_lane("slot", s, 1 + s);
                        let track: Arc<str> = Arc::from("work");
                        for k in 0..16u64 {
                            slot.counter(&track, k * 1000, k as f64);
                        }
                        slot.finish();
                    });
                }
            });
            root.finish();
            rec.snapshot().to_chrome_deterministic_json()
        };
        assert_eq!(run(), run(), "canonical order erases thread interleaving");
    }

    #[test]
    fn summary_renders_slowest_spans() {
        let rec = TraceRecorder::new(1024);
        let ctx = TraceCtx::new(rec.clone(), 1);
        let root = ctx.root("estimate");
        let child = root.child("decompose");
        std::thread::sleep(std::time::Duration::from_millis(1));
        child.finish();
        root.finish();
        let summary = summarize_chrome_json(&rec.snapshot().to_chrome_json()).unwrap();
        assert_eq!(summary.span_count, 2);
        let text = render_trace_summary(&summary);
        assert!(text.contains("slowest spans"));
        assert!(text.contains("estimate"));
        assert!(text.contains("decompose"));
    }

    #[test]
    fn incomplete_span_flagged_not_dropped() {
        let rec = TraceRecorder::new(1024);
        let ctx = TraceCtx::new(rec.clone(), 1);
        let root = ctx.root("estimate");
        let json = rec.snapshot().to_chrome_json(); // before End
        assert!(json.contains("\"incomplete\":\"true\""));
        root.finish();
        let json = rec.snapshot().to_chrome_json();
        assert!(!json.contains("incomplete"));
    }
}
