//! Versioned, serializable point-in-time exports of a metrics registry.
//!
//! The vendored `serde` has no map impls, so a snapshot stores its metrics
//! as name-sorted entry vectors — which also makes the JSON output stable
//! and diffable. `version` is bumped on any incompatible schema change and
//! checked on load.

use serde::{Deserialize, Serialize};

use crate::histogram::HistogramSnapshot;

/// Current snapshot schema version, written on export and verified by
/// [`MetricsSnapshot::from_json`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// A named monotonic count. Deterministic for deterministic workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Dotted metric name, e.g. `pipeline.flowsim_runs`.
    pub name: String,
    /// The count.
    pub value: u64,
}

/// A named last-written value. `wall` marks gauges whose value depends on
/// wall-clock time or scheduling (e.g. samples/sec, live queue depth) and
/// is therefore excluded from [`MetricsSnapshot::deterministic_view`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Dotted metric name.
    pub name: String,
    /// The most recently written value.
    pub value: f64,
    /// True if the value is wall-clock or scheduling dependent.
    #[serde(default)]
    pub wall: bool,
}

/// A named accumulated wall-clock duration in seconds. Timers are always
/// non-deterministic and never appear in a deterministic view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimerEntry {
    /// Dotted metric name, e.g. `pipeline.flowsim_seconds`.
    pub name: String,
    /// Total accumulated seconds.
    pub seconds: f64,
}

/// A named histogram. `wall` marks histograms of wall-clock quantities
/// (e.g. request latency) excluded from deterministic views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Dotted metric name.
    pub name: String,
    /// True if observations are wall-clock or scheduling dependent.
    #[serde(default)]
    pub wall: bool,
    /// Bucketed counts.
    pub hist: HistogramSnapshot,
}

/// Error from [`MetricsSnapshot::from_json`].
#[derive(Debug)]
pub enum SnapshotError {
    /// The input was not valid snapshot JSON.
    Parse(String),
    /// The snapshot was written by an incompatible schema version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Parse(msg) => write!(f, "invalid metrics snapshot: {msg}"),
            SnapshotError::Version { found, expected } => write!(
                f,
                "metrics snapshot version {found} is not supported (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A point-in-time export of every metric in a
/// [`MetricsRegistry`](crate::registry::MetricsRegistry). Entry vectors
/// are sorted by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Schema version; see [`SNAPSHOT_VERSION`].
    pub version: u32,
    /// Monotonic counts, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Last-written values, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// Accumulated wall-clock durations, sorted by name.
    pub timers: Vec<TimerEntry>,
    /// Bucketed distributions, sorted by name.
    pub histograms: Vec<HistogramEntry>,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl MetricsSnapshot {
    /// A snapshot with no metrics at the current schema version.
    pub fn empty() -> Self {
        Self {
            version: SNAPSHOT_VERSION,
            counters: Vec::new(),
            gauges: Vec::new(),
            timers: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// Look up a timer's accumulated seconds by name.
    pub fn timer_seconds(&self, name: &str) -> Option<f64> {
        self.timers
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.seconds)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.hist)
    }

    /// Fold `other` into `self`: counters and timers add, gauges take
    /// `other`'s (latest) value, histograms add bucket-wise. Metrics only
    /// present in `other` are inserted; name ordering is preserved. A
    /// histogram whose edges disagree with an existing same-named entry
    /// keeps `self`'s contents (shape conflicts indicate a registration
    /// bug, not data to guess at).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.binary_search_by(|e| e.name.cmp(&c.name)) {
                Ok(i) => self.counters[i].value += c.value,
                Err(i) => self.counters.insert(i, c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.binary_search_by(|e| e.name.cmp(&g.name)) {
                Ok(i) => {
                    self.gauges[i].value = g.value;
                    self.gauges[i].wall |= g.wall;
                }
                Err(i) => self.gauges.insert(i, g.clone()),
            }
        }
        for t in &other.timers {
            match self.timers.binary_search_by(|e| e.name.cmp(&t.name)) {
                Ok(i) => self.timers[i].seconds += t.seconds,
                Err(i) => self.timers.insert(i, t.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.binary_search_by(|e| e.name.cmp(&h.name)) {
                Ok(i) => {
                    let _ = self.histograms[i].hist.merge(&h.hist);
                    self.histograms[i].wall |= h.wall;
                }
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
    }

    /// The deterministic subset: counters, non-wall gauges, and non-wall
    /// histograms. Timers and wall-flagged metrics are dropped. Two runs
    /// of the same deterministic workload produce equal deterministic
    /// views, mirroring how `timings` is excluded from estimate
    /// bit-equality.
    pub fn deterministic_view(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            version: self.version,
            counters: self.counters.clone(),
            gauges: self.gauges.iter().filter(|g| !g.wall).cloned().collect(),
            timers: Vec::new(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| !h.wall)
                .cloned()
                .collect(),
        }
    }

    /// Only the metrics whose name starts with `prefix`.
    pub fn filter_prefix(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            version: self.version,
            counters: self
                .counters
                .iter()
                .filter(|e| e.name.starts_with(prefix))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|e| e.name.starts_with(prefix))
                .cloned()
                .collect(),
            timers: self
                .timers
                .iter()
                .filter(|e| e.name.starts_with(prefix))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|e| e.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// True if no metrics are present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.timers.is_empty()
            && self.histograms.is_empty()
    }

    /// Pretty-printed JSON at the current schema version.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"))
    }

    /// Parse a snapshot, verifying the schema version.
    pub fn from_json(s: &str) -> Result<MetricsSnapshot, SnapshotError> {
        let snap: MetricsSnapshot =
            serde_json::from_str(s).map_err(|e| SnapshotError::Parse(format!("{e:?}")))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramEdges;

    fn snap_with_counter(name: &str, value: u64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::empty();
        s.counters.push(CounterEntry {
            name: name.into(),
            value,
        });
        s
    }

    #[test]
    fn merge_adds_counters_and_inserts_missing_sorted() {
        let mut a = snap_with_counter("b.x", 2);
        let b = {
            let mut s = snap_with_counter("a.y", 7);
            s.counters.push(CounterEntry {
                name: "b.x".into(),
                value: 3,
            });
            s
        };
        a.merge(&b);
        assert_eq!(
            a.counters
                .iter()
                .map(|e| (e.name.as_str(), e.value))
                .collect::<Vec<_>>(),
            vec![("a.y", 7), ("b.x", 5)]
        );
    }

    #[test]
    fn deterministic_view_drops_timers_and_wall_metrics() {
        let mut s = snap_with_counter("c", 1);
        s.timers.push(TimerEntry {
            name: "t".into(),
            seconds: 1.5,
        });
        s.gauges.push(GaugeEntry {
            name: "g.det".into(),
            value: 2.0,
            wall: false,
        });
        s.gauges.push(GaugeEntry {
            name: "g.wall".into(),
            value: 3.0,
            wall: true,
        });
        s.histograms.push(HistogramEntry {
            name: "h.wall".into(),
            wall: true,
            hist: HistogramSnapshot::empty(HistogramEdges::log(1.0, 2.0, 2)),
        });
        let v = s.deterministic_view();
        assert_eq!(v.counter("c"), Some(1));
        assert!(v.timers.is_empty());
        assert_eq!(v.gauges.len(), 1);
        assert_eq!(v.gauge("g.det"), Some(2.0));
        assert!(v.histograms.is_empty());
    }

    #[test]
    fn json_roundtrip_and_version_check() {
        let mut s = snap_with_counter("pipeline.flowsim_runs", 42);
        s.histograms.push(HistogramEntry {
            name: "serve.request_latency_seconds".into(),
            wall: true,
            hist: HistogramSnapshot::empty(HistogramEdges::latency_seconds()),
        });
        let json = s.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, s);

        let bad = json.replacen("\"version\": 1", "\"version\": 999", 1);
        match MetricsSnapshot::from_json(&bad) {
            Err(SnapshotError::Version { found: 999, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
        assert!(MetricsSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn filter_prefix_selects_by_name() {
        let mut s = snap_with_counter("pipeline.a", 1);
        s.counters.push(CounterEntry {
            name: "serve.b".into(),
            value: 2,
        });
        let p = s.filter_prefix("pipeline.");
        assert_eq!(p.counters.len(), 1);
        assert_eq!(p.counter("pipeline.a"), Some(1));
    }
}
