//! # m3-telemetry
//!
//! Unified telemetry for the m3 workspace: a lock-cheap [`MetricsRegistry`]
//! of named counters, gauges, wall-clock timers, and fixed-edge
//! log-bucketed histograms; lightweight timing [`Span`]s; and a versioned
//! JSON [`MetricsSnapshot`] export format shared by the simulator, the
//! estimation pipeline, the trainer, and the serving stack.
//!
//! ## Design
//!
//! * **Handles, not lookups.** A metric is registered once by name
//!   ([`MetricsRegistry::counter`] and friends take a short lock) and the
//!   returned handle is a clone-able `Arc` around an atomic cell. Hot
//!   loops touch only the atomic — no map lookups, no locks.
//! * **No-op mode.** [`MetricsRegistry::noop`] yields a disabled registry
//!   whose handles early-return without touching memory or sampling the
//!   clock. Instrumented code paths therefore cost a predictable branch
//!   when telemetry is off, which is what `BENCH_telemetry_overhead.json`
//!   measures.
//! * **Determinism.** Counters, gauges, and histograms carry values that
//!   are identical across reruns of a deterministic workload (atomic `u64`
//!   additions commute). Wall-clock metrics — timers, and any gauge or
//!   histogram registered through the `wall_*` constructors — are
//!   explicitly flagged and excluded by
//!   [`MetricsSnapshot::deterministic_view`], mirroring the repo-wide
//!   convention that `NetworkEstimate::timings` is excluded from
//!   bit-equality checks.
//! * **Versioned snapshots.** [`MetricsSnapshot`] serializes to JSON with
//!   an explicit `version` field and name-sorted entry vectors so exports
//!   are stable, diffable, and mergeable ([`MetricsSnapshot::merge`],
//!   [`HistogramSnapshot::merge`] — associative and order-independent).

// Robustness policy: non-test library code must not unwrap/expect — errors
// either propagate as typed Results or use an explicitly justified panic.
// scripts/check.sh runs clippy with -D warnings, making these hard errors.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod histogram;
pub mod registry;
pub mod render;
pub mod snapshot;
pub mod trace;

pub mod prelude {
    pub use crate::histogram::{Histogram, HistogramEdges, HistogramSnapshot};
    pub use crate::registry::{Counter, Gauge, MetricsRegistry, Span, Timer};
    pub use crate::render::render_snapshot;
    pub use crate::snapshot::{
        CounterEntry, GaugeEntry, HistogramEntry, MetricsSnapshot, TimerEntry, SNAPSHOT_VERSION,
    };
    pub use crate::trace::{
        render_trace_summary, summarize_chrome_json, FlightRecording, SpanStat, TraceCtx,
        TraceEvent, TraceEventKind, TraceRecorder, TraceSpan, TraceSummary,
        DEFAULT_PROBE_STRIDE_NS, DEFAULT_TRACE_CAPACITY,
    };
}

pub use prelude::*;
