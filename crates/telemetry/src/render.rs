//! Human-readable rendering of a [`MetricsSnapshot`] for `m3 stats`.

use std::fmt::Write as _;

use crate::snapshot::MetricsSnapshot;

fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.is_infinite() {
        "inf".to_string()
    } else if v.abs() >= 0.01 && v.abs() < 1e7 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

/// Render a snapshot as an aligned plain-text report: counters, gauges,
/// timers, then histogram summaries (count and upper-edge quantile
/// estimates).
pub fn render_snapshot(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "metrics snapshot (version {})", snap.version);

    let name_width = snap
        .counters
        .iter()
        .map(|e| e.name.len())
        .chain(snap.gauges.iter().map(|e| e.name.len()))
        .chain(snap.timers.iter().map(|e| e.name.len()))
        .chain(snap.histograms.iter().map(|e| e.name.len()))
        .max()
        .unwrap_or(4)
        .max(4);

    if !snap.counters.is_empty() {
        let _ = writeln!(out, "\ncounters");
        for e in &snap.counters {
            let _ = writeln!(out, "  {:<name_width$}  {}", e.name, e.value);
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "\ngauges");
        for e in &snap.gauges {
            let wall = if e.wall { "  [wall]" } else { "" };
            let _ = writeln!(out, "  {:<name_width$}  {}{wall}", e.name, fmt_f64(e.value));
        }
    }
    if !snap.timers.is_empty() {
        let _ = writeln!(out, "\ntimers (wall-clock seconds)");
        for e in &snap.timers {
            let _ = writeln!(out, "  {:<name_width$}  {}", e.name, fmt_f64(e.seconds));
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "\nhistograms");
        for e in &snap.histograms {
            let wall = if e.wall { "  [wall]" } else { "" };
            let count = e.hist.count();
            if count == 0 {
                let _ = writeln!(out, "  {:<name_width$}  count=0{wall}", e.name);
                continue;
            }
            let q = |p: f64| e.hist.quantile(p).map(fmt_f64).unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:<name_width$}  count={count}  p50<={}  p90<={}  p99<={}  p99.9<={}  max<={}{wall}",
                e.name,
                q(0.50),
                q(0.90),
                q(0.99),
                q(0.999),
                q(1.0),
            );
        }
    }
    if snap.is_empty() {
        let _ = writeln!(out, "\n(no metrics recorded)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::HistogramEdges;

    #[test]
    fn renders_all_sections() {
        let reg = MetricsRegistry::new();
        reg.counter("pipeline.flowsim_runs").add(12);
        reg.gauge("netsim.queue_hwm_bytes").set(4096.0);
        reg.timer("pipeline.flowsim_seconds").add_seconds(0.125);
        let h = reg.wall_histogram(
            "serve.request_latency_seconds",
            HistogramEdges::latency_seconds(),
        );
        h.observe(0.003);
        h.observe(0.004);

        let text = render_snapshot(&reg.snapshot());
        assert!(text.contains("version 1"));
        assert!(text.contains("pipeline.flowsim_runs"));
        assert!(text.contains("12"));
        assert!(text.contains("netsim.queue_hwm_bytes"));
        assert!(text.contains("pipeline.flowsim_seconds"));
        assert!(text.contains("count=2"));
        assert!(text.contains("[wall]"));
    }

    #[test]
    fn histogram_line_derives_quantiles_not_raw_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("pipeline.slot_events", HistogramEdges::log(1.0, 2.0, 8));
        for v in [1.0, 1.0, 2.0, 3.0, 60.0] {
            h.observe(v);
        }
        let text = render_snapshot(&reg.snapshot());
        assert!(text.contains("p50<="), "p50 derived from buckets");
        assert!(text.contains("p99.9<="), "tail quantile present");
        assert!(text.contains("max<="), "upper bound present");
        assert!(!text.contains("buckets"), "no raw bucket dump");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = render_snapshot(&MetricsSnapshot::empty());
        assert!(text.contains("no metrics recorded"));
    }
}
