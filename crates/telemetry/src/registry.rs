//! The metrics registry and its handle types.
//!
//! Registration takes a short mutex; after that every handle operation is
//! a single atomic RMW (or an early return for handles from a no-op
//! registry). Handles and the registry itself are cheap `Arc` clones, so
//! one registry can be shared across worker threads and absorbed into
//! from per-call registries.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::histogram::{Histogram, HistogramCell, HistogramEdges};
use crate::snapshot::{
    CounterEntry, GaugeEntry, HistogramEntry, MetricsSnapshot, TimerEntry, SNAPSHOT_VERSION,
};

/// A monotonic `u64` counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A disconnected handle: all operations are no-ops.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disconnected handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-written `f64` gauge handle (stored as bits in an `AtomicU64`).
#[derive(Debug, Clone)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A disconnected handle: all operations are no-ops.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raise the value to `v` if `v` is larger (high-water mark).
    pub fn set_max(&self, v: f64) {
        if let Some(g) = &self.0 {
            let mut cur = g.load(Ordering::Relaxed);
            while v > f64::from_bits(cur) {
                match g.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Current value (0.0 for a disconnected handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// An accumulated wall-clock duration handle, in seconds.
#[derive(Debug, Clone)]
pub struct Timer(Option<Arc<AtomicU64>>);

impl Timer {
    /// A disconnected handle: all operations are no-ops.
    pub fn noop() -> Self {
        Timer(None)
    }

    /// Accumulate `secs` into the total.
    pub fn add_seconds(&self, secs: f64) {
        if let Some(t) = &self.0 {
            let mut cur = t.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + secs).to_bits();
                match t.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Total accumulated seconds (0.0 for a disconnected handle).
    pub fn get_seconds(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |t| f64::from_bits(t.load(Ordering::Relaxed)))
    }

    /// Start a span; its elapsed wall time is added to this timer when it
    /// is dropped or [`Span::finish`]ed. Disconnected timers produce
    /// spans that never sample the clock.
    pub fn span(&self) -> Span {
        Span {
            timer: self.clone(),
            start: self.0.as_ref().map(|_| Instant::now()),
        }
    }
}

/// A lightweight RAII timing scope: records elapsed wall-clock seconds
/// into its [`Timer`] on drop. Spans from no-op registries skip the clock
/// entirely.
#[derive(Debug)]
pub struct Span {
    timer: Timer,
    start: Option<Instant>,
}

impl Span {
    /// Stop the span now and record its elapsed time (equivalent to
    /// dropping it; provided for explicit call sites).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.timer.add_seconds(start.elapsed().as_secs_f64());
        }
    }
}

/// One registered metric cell. Gauges and histograms carry a `wall` flag
/// (see `crate::snapshot::GaugeEntry`).
#[derive(Debug)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge {
        bits: Arc<AtomicU64>,
        wall: bool,
    },
    Timer(Arc<AtomicU64>),
    Histogram {
        cell: Arc<HistogramCell>,
        wall: bool,
    },
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Mutex<BTreeMap<String, Cell>>,
}

fn lock_metrics(inner: &Inner) -> MutexGuard<'_, BTreeMap<String, Cell>> {
    // A poisoned metrics map only means another thread panicked mid-
    // registration; the map itself is still structurally sound.
    inner
        .metrics
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A clone-able, thread-safe registry of named metrics.
///
/// [`MetricsRegistry::new`] creates an enabled registry;
/// [`MetricsRegistry::noop`] creates a disabled one whose handles cost a
/// branch and touch no shared memory — instrument once, decide at runtime.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A disabled registry: every handle it hands out is a no-op and
    /// [`MetricsRegistry::snapshot`] is empty.
    pub fn noop() -> Self {
        MetricsRegistry { inner: None }
    }

    /// True unless this is a no-op registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or re-attach to) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let mut m = lock_metrics(inner);
        let cell = m
            .entry(name.to_string())
            .or_insert_with(|| Cell::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            Cell::Counter(c) => Counter(Some(Arc::clone(c))),
            _ => Counter::noop(), // name already taken by another kind
        }
    }

    /// Register (or re-attach to) a deterministic gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_impl(name, false)
    }

    /// Register (or re-attach to) a wall-clock/scheduling-dependent gauge,
    /// excluded from deterministic snapshot views.
    pub fn wall_gauge(&self, name: &str) -> Gauge {
        self.gauge_impl(name, true)
    }

    fn gauge_impl(&self, name: &str, wall: bool) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let mut m = lock_metrics(inner);
        let cell = m.entry(name.to_string()).or_insert_with(|| Cell::Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            wall,
        });
        match cell {
            Cell::Gauge { bits, wall: w } => {
                *w |= wall;
                Gauge(Some(Arc::clone(bits)))
            }
            _ => Gauge::noop(),
        }
    }

    /// Register (or re-attach to) a wall-clock timer.
    pub fn timer(&self, name: &str) -> Timer {
        let Some(inner) = &self.inner else {
            return Timer::noop();
        };
        let mut m = lock_metrics(inner);
        let cell = m
            .entry(name.to_string())
            .or_insert_with(|| Cell::Timer(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match cell {
            Cell::Timer(t) => Timer(Some(Arc::clone(t))),
            _ => Timer::noop(),
        }
    }

    /// Register (or re-attach to) a deterministic histogram. If the name
    /// is already registered, the existing edges win.
    pub fn histogram(&self, name: &str, edges: HistogramEdges) -> Histogram {
        self.histogram_impl(name, edges, false)
    }

    /// Register (or re-attach to) a wall-clock histogram (e.g. request
    /// latency), excluded from deterministic snapshot views.
    pub fn wall_histogram(&self, name: &str, edges: HistogramEdges) -> Histogram {
        self.histogram_impl(name, edges, true)
    }

    fn histogram_impl(&self, name: &str, edges: HistogramEdges, wall: bool) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let mut m = lock_metrics(inner);
        let cell = m
            .entry(name.to_string())
            .or_insert_with(|| Cell::Histogram {
                cell: Arc::new(HistogramCell::new(edges)),
                wall,
            });
        match cell {
            Cell::Histogram { cell, wall: w } => {
                *w |= wall;
                Histogram(Some(Arc::clone(cell)))
            }
            _ => Histogram::noop(),
        }
    }

    /// Export every registered metric, name-sorted, at the current schema
    /// version. A no-op registry exports an empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            version: SNAPSHOT_VERSION,
            counters: Vec::new(),
            gauges: Vec::new(),
            timers: Vec::new(),
            histograms: Vec::new(),
        };
        let Some(inner) = &self.inner else {
            return snap;
        };
        let m = lock_metrics(inner);
        for (name, cell) in m.iter() {
            match cell {
                Cell::Counter(c) => snap.counters.push(CounterEntry {
                    name: name.clone(),
                    value: c.load(Ordering::Relaxed),
                }),
                Cell::Gauge { bits, wall } => snap.gauges.push(GaugeEntry {
                    name: name.clone(),
                    value: f64::from_bits(bits.load(Ordering::Relaxed)),
                    wall: *wall,
                }),
                Cell::Timer(t) => snap.timers.push(TimerEntry {
                    name: name.clone(),
                    seconds: f64::from_bits(t.load(Ordering::Relaxed)),
                }),
                Cell::Histogram { cell, wall } => snap.histograms.push(HistogramEntry {
                    name: name.clone(),
                    wall: *wall,
                    hist: cell.snapshot(),
                }),
            }
        }
        snap
    }

    /// Fold a snapshot into this registry: counters and timers add,
    /// gauges overwrite, histograms add bucket-wise (registering any
    /// metric not yet present). This is how a per-call registry's results
    /// flow into a long-lived shared one. No-op registries ignore it.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        if self.inner.is_none() {
            return;
        }
        for c in &snap.counters {
            self.counter(&c.name).add(c.value);
        }
        for g in &snap.gauges {
            let handle = if g.wall {
                self.wall_gauge(&g.name)
            } else {
                self.gauge(&g.name)
            };
            handle.set(g.value);
        }
        for t in &snap.timers {
            self.timer(&t.name).add_seconds(t.seconds);
        }
        for h in &snap.histograms {
            let handle = if h.wall {
                self.wall_histogram(&h.name, h.hist.edges())
            } else {
                self.histogram(&h.name, h.hist.edges())
            };
            if let Some(cell) = &handle.0 {
                cell.add_snapshot(&h.hist);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_timers_round_trip_through_snapshot() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.count");
        c.inc();
        c.add(4);
        let g = reg.gauge("a.gauge");
        g.set(2.5);
        g.set_max(1.0); // lower: ignored
        g.set_max(7.0); // higher: taken
        let t = reg.timer("a.seconds");
        t.add_seconds(0.25);
        t.add_seconds(0.25);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), Some(5));
        assert_eq!(snap.gauge("a.gauge"), Some(7.0));
        assert_eq!(snap.timer_seconds("a.seconds"), Some(0.5));
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 7.0);
        assert_eq!(t.get_seconds(), 0.5);
    }

    #[test]
    fn reattaching_by_name_shares_the_cell() {
        let reg = MetricsRegistry::new();
        reg.counter("shared").add(2);
        reg.counter("shared").add(3);
        assert_eq!(reg.snapshot().counter("shared"), Some(5));
    }

    #[test]
    fn noop_registry_hands_out_inert_handles_and_empty_snapshots() {
        let reg = MetricsRegistry::noop();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        reg.gauge("g").set(1.0);
        reg.timer("t").span().finish();
        reg.histogram("h", HistogramEdges::log(1.0, 2.0, 4))
            .observe(1.0);
        assert!(reg.snapshot().is_empty());
        reg.absorb(&{
            let mut s = MetricsSnapshot::empty();
            s.counters.push(CounterEntry {
                name: "x".into(),
                value: 3,
            });
            s
        });
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn span_records_elapsed_time_into_timer() {
        let reg = MetricsRegistry::new();
        let t = reg.timer("span.seconds");
        {
            let _span = t.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(t.get_seconds() > 0.0);
    }

    #[test]
    fn absorb_adds_counters_and_merges_histograms() {
        let a = MetricsRegistry::new();
        a.counter("n").add(1);
        a.histogram("h", HistogramEdges::log(1.0, 10.0, 3))
            .observe(5.0);

        let b = MetricsRegistry::new();
        b.counter("n").add(2);
        b.histogram("h", HistogramEdges::log(1.0, 10.0, 3))
            .observe(50.0);

        a.absorb(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.counter("n"), Some(3));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets, vec![0, 1, 1]);
    }

    #[test]
    fn kind_conflicts_yield_noop_handles() {
        let reg = MetricsRegistry::new();
        reg.counter("name").inc();
        let g = reg.gauge("name"); // same name, different kind
        g.set(9.0);
        assert_eq!(reg.snapshot().counter("name"), Some(1));
        assert_eq!(reg.snapshot().gauge("name"), None);
    }

    #[test]
    fn wall_flags_survive_snapshot_and_absorb() {
        let reg = MetricsRegistry::new();
        reg.wall_gauge("w").set(1.0);
        reg.gauge("d").set(2.0);
        reg.wall_histogram("lat", HistogramEdges::latency_seconds())
            .observe(0.01);
        let det = reg.snapshot().deterministic_view();
        assert_eq!(det.gauge("w"), None);
        assert_eq!(det.gauge("d"), Some(2.0));
        assert!(det.histogram("lat").is_none());

        let other = MetricsRegistry::new();
        other.absorb(&reg.snapshot());
        let det2 = other.snapshot().deterministic_view();
        assert_eq!(det2.gauge("w"), None);
        assert_eq!(det2.gauge("d"), Some(2.0));
    }
}
