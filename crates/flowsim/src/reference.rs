//! A deliberately simple O(F^2) max-min fluid simulator used for
//! differential testing of the fast grouped engine in [`crate::fluid`].
//!
//! Per-flow progressive filling, per-event full rescan. Only suitable for
//! small flow counts; the property tests compare its output against
//! [`crate::fluid::simulate_fluid`] byte for byte (within fluid tolerance).

use crate::types::{FluidFctRecord, FluidFlow, FluidTopology, Nanos};

#[derive(Debug, Clone)]
struct ActiveFlow {
    idx: usize,
    remaining: f64,
    rate: f64,
}

/// Run the reference simulation. Same contract as
/// [`crate::fluid::simulate_fluid`].
pub fn simulate_fluid_reference(topo: &FluidTopology, flows: &[FluidFlow]) -> Vec<FluidFctRecord> {
    for f in flows {
        f.validate(topo);
    }
    let caps: Vec<f64> = topo.link_bps.iter().map(|&b| b / 8e9).collect();
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by_key(|&i| (flows[i].arrival, flows[i].id));

    let mut active: Vec<ActiveFlow> = Vec::new();
    let mut records = Vec::with_capacity(flows.len());
    let mut now = 0.0f64;
    let mut next = 0usize;

    while next < order.len() || !active.is_empty() {
        assign_rates(&caps, flows, &mut active);
        let t_arrival = if next < order.len() {
            flows[order[next]].arrival as f64
        } else {
            f64::INFINITY
        };
        let t_completion = active
            .iter()
            .map(|a| now + a.remaining / a.rate)
            .fold(f64::INFINITY, f64::min);
        let t_next = t_arrival.min(t_completion);
        let dt = (t_next - now).max(0.0);
        for a in active.iter_mut() {
            a.remaining -= a.rate * dt;
        }
        now = t_next;
        // Completions (tolerate fluid rounding).
        let mut i = 0;
        while i < active.len() {
            if active[i].remaining <= 1e-3 {
                let f = &flows[active[i].idx];
                let fct = (now - f.arrival as f64).max(0.0).ceil() as Nanos + f.latency;
                records.push(FluidFctRecord {
                    id: f.id,
                    size: f.size,
                    arrival: f.arrival,
                    fct: fct.max(1),
                    ideal_fct: f.ideal_fct,
                });
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Arrivals.
        while next < order.len() && flows[order[next]].arrival as f64 <= now {
            let idx = order[next];
            next += 1;
            active.push(ActiveFlow {
                idx,
                remaining: flows[idx].size.max(1) as f64,
                rate: 0.0,
            });
        }
    }
    records.sort_by_key(|r| r.id);
    records
}

/// Per-flow progressive-filling max-min with caps.
fn assign_rates(caps: &[f64], flows: &[FluidFlow], active: &mut [ActiveFlow]) {
    let n_links = caps.len();
    let mut residual = caps.to_vec();
    let mut counts = vec![0usize; n_links];
    for a in active.iter() {
        for l in flows[a.idx].links() {
            counts[l] += 1;
        }
    }
    let mut unfixed: Vec<usize> = (0..active.len()).collect();
    while !unfixed.is_empty() {
        let mut r_link = f64::INFINITY;
        let mut l_star = usize::MAX;
        for l in 0..n_links {
            if counts[l] > 0 {
                let fair = (residual[l] / counts[l] as f64).max(0.0);
                if fair < r_link {
                    r_link = fair;
                    l_star = l;
                }
            }
        }
        let mut r_cap = f64::INFINITY;
        let mut a_star = usize::MAX;
        for &ai in &unfixed {
            let cap = flows[active[ai].idx].rate_cap_bps / 8e9;
            if cap < r_cap {
                r_cap = cap;
                a_star = ai;
            }
        }
        if r_cap <= r_link {
            active[a_star].rate = r_cap;
            for l in flows[active[a_star].idx].links() {
                residual[l] = (residual[l] - r_cap).max(0.0);
                counts[l] -= 1;
            }
            unfixed.retain(|&x| x != a_star);
        } else {
            unfixed.retain(|&ai| {
                let f = &flows[active[ai].idx];
                if f.first_link as usize <= l_star && l_star <= f.last_link as usize {
                    active[ai].rate = r_link;
                    for l in f.links() {
                        residual[l] = (residual[l] - r_link).max(0.0);
                        counts[l] -= 1;
                    }
                    false
                } else {
                    true
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::simulate_fluid;
    use crate::types::fluid_ideal_fct;

    fn make_flow(
        id: u32,
        size: u64,
        arrival: Nanos,
        first: u16,
        last: u16,
        cap: f64,
        topo: &FluidTopology,
    ) -> FluidFlow {
        let mut f = FluidFlow {
            id,
            size,
            arrival,
            first_link: first,
            last_link: last,
            rate_cap_bps: cap,
            latency: 37,
            ideal_fct: 0,
        };
        f.ideal_fct = fluid_ideal_fct(topo, &f);
        f
    }

    #[test]
    fn matches_fast_engine_on_mixed_scenario() {
        let topo = FluidTopology::new(vec![10e9, 40e9, 10e9, 40e9]);
        let mut flows = Vec::new();
        let mut state = 12345u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..300u32 {
            let a = (rng() % 4) as u16;
            let b = (rng() % 4) as u16;
            let (first, last) = (a.min(b), a.max(b));
            let size = 100 + rng() % 100_000;
            let arrival = rng() % 1_000_000;
            let cap = if rng() % 2 == 0 { 10e9 } else { f64::INFINITY };
            flows.push(make_flow(i, size, arrival, first, last, cap, &topo));
        }
        let fast = simulate_fluid(&topo, &flows);
        let slow = simulate_fluid_reference(&topo, &flows);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert_eq!(f.id, s.id);
            let diff = (f.fct as f64 - s.fct as f64).abs();
            let tol = 1.0 + 1e-6 * s.fct as f64;
            assert!(
                diff <= tol.max(2.0),
                "flow {}: fast {} vs reference {}",
                f.id,
                f.fct,
                s.fct
            );
        }
    }

    #[test]
    fn reference_basic_sharing() {
        let topo = FluidTopology::new(vec![10e9]);
        let flows = vec![
            make_flow(0, 10_000, 0, 0, 0, f64::INFINITY, &topo),
            make_flow(1, 10_000, 0, 0, 0, f64::INFINITY, &topo),
        ];
        let recs = simulate_fluid_reference(&topo, &flows);
        assert_eq!(recs[0].fct, 16_000 + 37);
        assert_eq!(recs[1].fct, 16_000 + 37);
    }
}
