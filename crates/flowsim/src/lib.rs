//! # m3-flowsim
//!
//! flowSim: the fast max-min fair fluid flow-level simulator of the m3 paper
//! (Algorithm 1, Appendix A). Flows are "fluid": at every instant each
//! active flow proceeds at its max-min fair share of the parking-lot links
//! it traverses; rates are recomputed on every arrival and completion. The
//! flow completes when the integrated rate consumes its size, plus a fixed
//! end-to-end latency factor.
//!
//! flowSim deliberately ignores queueing, packet boundaries, and congestion
//! control — it is *not* an accurate short-flow simulator (Fig. 6), but its
//! per-size-bucket slowdown percentiles are the workload feature map that
//! m3's ML model corrects (§2.2, §3.3).
//!
//! Two engines are provided:
//! * [`fluid::simulate_fluid`] — the fast grouped engine (O(F log F) heap
//!   work; waterfill over flow groups).
//! * [`reference::simulate_fluid_reference`] — a straightforward O(F^2)
//!   implementation used to differentially test the fast engine.
//!
//! ```
//! use m3_flowsim::prelude::*;
//!
//! let topo = FluidTopology::new(vec![10e9]); // one 10 Gbps link
//! let flow = FluidFlow {
//!     id: 0, size: 10_000, arrival: 0,
//!     first_link: 0, last_link: 0,
//!     rate_cap_bps: f64::INFINITY, latency: 0,
//!     ideal_fct: fluid_ideal_fct(&FluidTopology::new(vec![10e9]), &FluidFlow {
//!         id: 0, size: 10_000, arrival: 0, first_link: 0, last_link: 0,
//!         rate_cap_bps: f64::INFINITY, latency: 0, ideal_fct: 0 }),
//! };
//! let records = simulate_fluid(&topo, &[flow]);
//! assert_eq!(records[0].fct, 8_000); // 10 kB at 10 Gbps
//! ```

// Robustness policy: non-test library code must not unwrap/expect — errors
// either propagate as typed Results or use an explicitly justified panic.
// scripts/check.sh runs clippy with -D warnings, making these hard errors.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod fluid;
pub mod general;
pub mod probe;
pub mod reference;
pub mod types;

pub mod prelude {
    pub use crate::budget::{FluidBudget, FluidError, FluidRunStats, DEFAULT_WALL_CHECK_STRIDE};
    pub use crate::fluid::{
        simulate_fluid, try_simulate_fluid, try_simulate_fluid_stats, try_simulate_fluid_traced,
        try_simulate_fluid_traced_into, FluidWorkspace,
    };
    pub use crate::general::{
        simulate_fluid_general, try_simulate_fluid_general, try_simulate_fluid_general_into,
        GeneralFluidFlow, GeneralFluidWorkspace,
    };
    pub use crate::probe::{FluidProbe, FluidProbeSink};
    pub use crate::reference::simulate_fluid_reference;
    pub use crate::types::{fluid_ideal_fct, FluidFctRecord, FluidFlow, FluidTopology};
}
