//! Resource budgets and typed errors for the fluid engines.
//!
//! The fluid simulators are event loops whose termination depends on every
//! event time being finite and on the waterfill making progress. A NaN rate
//! (or a numerically degenerate waterfill) in a release build would
//! otherwise spin forever. [`FluidBudget`] bounds a run by event count and
//! wall clock; [`FluidError`] is the typed failure surface consumed by the
//! m3 pipeline's degradation machinery.

use std::fmt;
use std::time::Duration;

/// How often the wall clock is sampled (every N outer-loop events); keeps
/// the fault-free fast path free of syscalls.
pub(crate) const WALL_CHECK_INTERVAL: u64 = 4096;

/// Resource ceiling for one fluid simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidBudget {
    /// Maximum outer event-loop iterations (arrivals, completions, and
    /// recomputations). A parking-lot run needs roughly `2 x flows` events,
    /// so the default leaves orders of magnitude of headroom.
    pub max_events: u64,
    /// Optional wall-clock ceiling, checked every few thousand events.
    pub max_wall: Option<Duration>,
}

impl FluidBudget {
    /// No limits at all (the legacy panicking entry points use this).
    pub const UNLIMITED: FluidBudget = FluidBudget {
        max_events: u64::MAX,
        max_wall: None,
    };

    /// A budget bounded only by event count.
    pub fn events(max_events: u64) -> Self {
        FluidBudget {
            max_events,
            max_wall: None,
        }
    }

    /// Add a wall-clock ceiling.
    pub fn with_wall(mut self, limit: Duration) -> Self {
        self.max_wall = Some(limit);
        self
    }
}

impl Default for FluidBudget {
    /// Generous but bounded: far above any real path scenario, low enough
    /// that a runaway loop terminates in seconds rather than never.
    fn default() -> Self {
        FluidBudget {
            max_events: 100_000_000,
            max_wall: None,
        }
    }
}

/// Typed failure of a fluid simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum FluidError {
    /// An input flow failed validation (bad segment, non-positive or NaN
    /// rate cap, link index out of range).
    InvalidInput { flow: u32, reason: String },
    /// The next event time became non-finite while flows remain — the
    /// release-mode promotion of the old `debug_assert!(t_next.is_finite())`.
    NonFiniteEventTime { events: u64, t: f64 },
    /// The waterfill failed to fix any group (numerically degenerate rates).
    Stalled { events: u64 },
    /// The event-count ceiling was hit.
    EventBudgetExceeded { limit: u64 },
    /// The wall-clock ceiling was hit.
    WallClockExceeded { limit: Duration, events: u64 },
}

impl fmt::Display for FluidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FluidError::InvalidInput { flow, reason } => {
                write!(f, "invalid fluid input (flow {flow}): {reason}")
            }
            FluidError::NonFiniteEventTime { events, t } => {
                write!(f, "non-finite event time {t} after {events} events")
            }
            FluidError::Stalled { events } => {
                write!(f, "waterfill made no progress after {events} events")
            }
            FluidError::EventBudgetExceeded { limit } => {
                write!(f, "event budget exceeded ({limit} events)")
            }
            FluidError::WallClockExceeded { limit, events } => {
                write!(
                    f,
                    "wall-clock budget exceeded ({limit:?} after {events} events)"
                )
            }
        }
    }
}

impl std::error::Error for FluidError {}

/// Shared per-run budget accounting for both fluid engines.
pub(crate) struct BudgetMeter {
    budget: FluidBudget,
    events: u64,
    start: Option<std::time::Instant>,
}

impl BudgetMeter {
    pub(crate) fn new(budget: FluidBudget) -> Self {
        BudgetMeter {
            budget,
            events: 0,
            // Only sample the clock when a wall limit is actually set.
            start: budget.max_wall.map(|_| std::time::Instant::now()),
        }
    }

    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    /// Account one outer-loop event; errors when a ceiling is crossed.
    pub(crate) fn tick(&mut self) -> Result<(), FluidError> {
        self.events += 1;
        if self.events > self.budget.max_events {
            return Err(FluidError::EventBudgetExceeded {
                limit: self.budget.max_events,
            });
        }
        if self.events.is_multiple_of(WALL_CHECK_INTERVAL) {
            if let (Some(limit), Some(start)) = (self.budget.max_wall, self.start) {
                if start.elapsed() > limit {
                    return Err(FluidError::WallClockExceeded {
                        limit,
                        events: self.events,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_and_trips() {
        let mut m = BudgetMeter::new(FluidBudget::events(3));
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert_eq!(m.tick(), Err(FluidError::EventBudgetExceeded { limit: 3 }));
        assert_eq!(m.events(), 4);
    }

    #[test]
    fn unlimited_never_trips() {
        let mut m = BudgetMeter::new(FluidBudget::UNLIMITED);
        for _ in 0..100_000 {
            assert!(m.tick().is_ok());
        }
    }

    #[test]
    fn wall_clock_trips() {
        let mut m = BudgetMeter::new(FluidBudget::UNLIMITED.with_wall(Duration::from_nanos(1)));
        // Spin past one check interval; the elapsed nanosecond has passed.
        let mut tripped = false;
        for _ in 0..10 * WALL_CHECK_INTERVAL {
            if m.tick().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "wall budget of 1ns must trip within a few ticks");
    }

    #[test]
    fn display_is_informative() {
        let e = FluidError::NonFiniteEventTime {
            events: 7,
            t: f64::NAN,
        };
        assert!(e.to_string().contains("non-finite"));
    }
}
