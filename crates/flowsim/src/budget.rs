//! Resource budgets and typed errors for the fluid engines.
//!
//! The fluid simulators are event loops whose termination depends on every
//! event time being finite and on the waterfill making progress. A NaN rate
//! (or a numerically degenerate waterfill) in a release build would
//! otherwise spin forever. [`FluidBudget`] bounds a run by event count and
//! wall clock; [`FluidError`] is the typed failure surface consumed by the
//! m3 pipeline's degradation machinery.

use std::fmt;
use std::time::Duration;

/// Default wall-clock sampling stride (every N outer-loop events); keeps
/// the fault-free fast path free of syscalls. Overridable per budget via
/// [`FluidBudget::with_wall_check_stride`].
pub const DEFAULT_WALL_CHECK_STRIDE: u64 = 4096;

/// Resource ceiling for one fluid simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidBudget {
    /// Maximum outer event-loop iterations (arrivals, completions, and
    /// recomputations). A parking-lot run needs roughly `2 x flows` events,
    /// so the default leaves orders of magnitude of headroom.
    pub max_events: u64,
    /// Optional wall-clock ceiling, checked every [`Self::wall_check_stride`]
    /// events.
    pub max_wall: Option<Duration>,
    /// How many outer-loop events pass between `Instant::now()` samples
    /// when a wall ceiling is set. Smaller strides trip wall budgets more
    /// promptly at the cost of more clock syscalls; values below 1 are
    /// treated as 1.
    pub wall_check_stride: u64,
}

impl FluidBudget {
    /// No limits at all (the legacy panicking entry points use this).
    pub const UNLIMITED: FluidBudget = FluidBudget {
        max_events: u64::MAX,
        max_wall: None,
        wall_check_stride: DEFAULT_WALL_CHECK_STRIDE,
    };

    /// A budget bounded only by event count.
    pub fn events(max_events: u64) -> Self {
        FluidBudget {
            max_events,
            max_wall: None,
            wall_check_stride: DEFAULT_WALL_CHECK_STRIDE,
        }
    }

    /// Add a wall-clock ceiling.
    pub fn with_wall(mut self, limit: Duration) -> Self {
        self.max_wall = Some(limit);
        self
    }

    /// Override how often the wall clock is sampled (in events).
    pub fn with_wall_check_stride(mut self, stride: u64) -> Self {
        self.wall_check_stride = stride;
        self
    }
}

impl Default for FluidBudget {
    /// Generous but bounded: far above any real path scenario, low enough
    /// that a runaway loop terminates in seconds rather than never.
    fn default() -> Self {
        FluidBudget {
            max_events: 100_000_000,
            max_wall: None,
            wall_check_stride: DEFAULT_WALL_CHECK_STRIDE,
        }
    }
}

/// Deterministic accounting from one fluid run: how much budget it
/// consumed. Fed into the telemetry registry by the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FluidRunStats {
    /// Outer event-loop iterations executed.
    pub events: u64,
    /// Wall-clock samples actually taken (0 unless a wall ceiling was set).
    pub wall_checks: u64,
}

impl FluidRunStats {
    /// Element-wise sum (order-independent, for aggregating across runs).
    pub fn add(&mut self, other: FluidRunStats) {
        self.events += other.events;
        self.wall_checks += other.wall_checks;
    }
}

/// Typed failure of a fluid simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum FluidError {
    /// An input flow failed validation (bad segment, non-positive or NaN
    /// rate cap, link index out of range).
    InvalidInput { flow: u32, reason: String },
    /// The next event time became non-finite while flows remain — the
    /// release-mode promotion of the old `debug_assert!(t_next.is_finite())`.
    NonFiniteEventTime { events: u64, t: f64 },
    /// The waterfill failed to fix any group (numerically degenerate rates).
    Stalled { events: u64 },
    /// The event-count ceiling was hit.
    EventBudgetExceeded { limit: u64 },
    /// The wall-clock ceiling was hit.
    WallClockExceeded { limit: Duration, events: u64 },
}

impl fmt::Display for FluidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FluidError::InvalidInput { flow, reason } => {
                write!(f, "invalid fluid input (flow {flow}): {reason}")
            }
            FluidError::NonFiniteEventTime { events, t } => {
                write!(f, "non-finite event time {t} after {events} events")
            }
            FluidError::Stalled { events } => {
                write!(f, "waterfill made no progress after {events} events")
            }
            FluidError::EventBudgetExceeded { limit } => {
                write!(f, "event budget exceeded ({limit} events)")
            }
            FluidError::WallClockExceeded { limit, events } => {
                write!(
                    f,
                    "wall-clock budget exceeded ({limit:?} after {events} events)"
                )
            }
        }
    }
}

impl std::error::Error for FluidError {}

/// Shared per-run budget accounting for both fluid engines.
pub(crate) struct BudgetMeter {
    budget: FluidBudget,
    stride: u64,
    events: u64,
    wall_checks: u64,
    start: Option<std::time::Instant>,
}

impl BudgetMeter {
    pub(crate) fn new(budget: FluidBudget) -> Self {
        BudgetMeter {
            budget,
            stride: budget.wall_check_stride.max(1),
            events: 0,
            wall_checks: 0,
            // Only sample the clock when a wall limit is actually set.
            start: budget.max_wall.map(|_| std::time::Instant::now()),
        }
    }

    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    /// Budget consumed so far.
    pub(crate) fn stats(&self) -> FluidRunStats {
        FluidRunStats {
            events: self.events,
            wall_checks: self.wall_checks,
        }
    }

    /// Account one outer-loop event; errors when a ceiling is crossed.
    pub(crate) fn tick(&mut self) -> Result<(), FluidError> {
        self.events += 1;
        if self.events > self.budget.max_events {
            return Err(FluidError::EventBudgetExceeded {
                limit: self.budget.max_events,
            });
        }
        if self.events.is_multiple_of(self.stride) {
            if let (Some(limit), Some(start)) = (self.budget.max_wall, self.start) {
                self.wall_checks += 1;
                if start.elapsed() > limit {
                    return Err(FluidError::WallClockExceeded {
                        limit,
                        events: self.events,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_and_trips() {
        let mut m = BudgetMeter::new(FluidBudget::events(3));
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert_eq!(m.tick(), Err(FluidError::EventBudgetExceeded { limit: 3 }));
        assert_eq!(m.events(), 4);
    }

    #[test]
    fn unlimited_never_trips() {
        let mut m = BudgetMeter::new(FluidBudget::UNLIMITED);
        for _ in 0..100_000 {
            assert!(m.tick().is_ok());
        }
    }

    #[test]
    fn wall_clock_trips() {
        let mut m = BudgetMeter::new(FluidBudget::UNLIMITED.with_wall(Duration::from_nanos(1)));
        // Spin past one check interval; the elapsed nanosecond has passed.
        let mut tripped = false;
        for _ in 0..10 * DEFAULT_WALL_CHECK_STRIDE {
            if m.tick().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "wall budget of 1ns must trip within a few ticks");
    }

    #[test]
    fn wall_check_stride_controls_sampling_and_is_counted() {
        // Stride 16: the clock is sampled every 16 events, so a 1ns wall
        // budget must trip on exactly event 16.
        let mut m = BudgetMeter::new(
            FluidBudget::UNLIMITED
                .with_wall(Duration::from_nanos(1))
                .with_wall_check_stride(16),
        );
        for i in 1..16 {
            assert!(m.tick().is_ok(), "event {i} is before the first check");
        }
        assert!(matches!(
            m.tick(),
            Err(FluidError::WallClockExceeded { events: 16, .. })
        ));
        assert_eq!(m.stats().wall_checks, 1);
        assert_eq!(m.stats().events, 16);
    }

    #[test]
    fn no_wall_limit_means_no_wall_checks() {
        let mut m = BudgetMeter::new(FluidBudget::events(1 << 20).with_wall_check_stride(8));
        for _ in 0..1000 {
            assert!(m.tick().is_ok());
        }
        assert_eq!(
            m.stats().wall_checks,
            0,
            "clock never sampled without a limit"
        );
        assert_eq!(m.stats().events, 1000);
    }

    #[test]
    fn zero_stride_is_clamped_to_one() {
        let mut m = BudgetMeter::new(
            FluidBudget::UNLIMITED
                .with_wall(Duration::from_secs(3600))
                .with_wall_check_stride(0),
        );
        for _ in 0..5 {
            assert!(m.tick().is_ok());
        }
        assert_eq!(m.stats().wall_checks, 5, "stride 0 checks every event");
    }

    #[test]
    fn run_stats_add_is_elementwise() {
        let mut a = FluidRunStats {
            events: 3,
            wall_checks: 1,
        };
        a.add(FluidRunStats {
            events: 4,
            wall_checks: 2,
        });
        assert_eq!(
            a,
            FluidRunStats {
                events: 7,
                wall_checks: 3
            }
        );
    }

    #[test]
    fn display_is_informative() {
        let e = FluidError::NonFiniteEventTime {
            events: 7,
            t: f64::NAN,
        };
        assert!(e.to_string().contains("non-finite"));
    }
}
