//! Input and output types for the fluid simulator.

use serde::{Deserialize, Serialize};

/// Nanoseconds (matching `m3_netsim::units::Nanos`; kept local so this crate
/// stands alone).
pub type Nanos = u64;
/// Bytes.
pub type Bytes = u64;

/// The fluid model of a path-level topology: an ordered sequence of link
/// capacities (bits/sec). Flows occupy a contiguous segment of these links —
/// exactly the parking-lot structure of Fig. 7(a).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluidTopology {
    /// Per-link capacity in bits/sec, in path order.
    pub link_bps: Vec<f64>,
}

impl FluidTopology {
    pub fn new(link_bps: Vec<f64>) -> Self {
        assert!(!link_bps.is_empty(), "need at least one link");
        assert!(
            link_bps.iter().all(|&b| b > 0.0 && b.is_finite()),
            "link capacities must be positive and finite"
        );
        FluidTopology { link_bps }
    }

    pub fn num_links(&self) -> usize {
        self.link_bps.len()
    }
}

/// One fluid flow: a contiguous link segment `[first_link, last_link]`, a
/// per-flow rate cap modeling its private synthetic attachment links (§3.2),
/// and a fixed end-to-end latency factor added to the bandwidth term
/// (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidFlow {
    pub id: u32,
    pub size: Bytes,
    pub arrival: Nanos,
    /// Index of the first path link traversed.
    pub first_link: u16,
    /// Index of the last path link traversed (inclusive).
    pub last_link: u16,
    /// Rate cap in bits/sec: min(source NIC, destination NIC) for flows
    /// whose attachment links are private. Use `f64::INFINITY` for none.
    pub rate_cap_bps: f64,
    /// Propagation latency added to the completion time.
    pub latency: Nanos,
    /// Ideal (unloaded) FCT used as the slowdown denominator; computed by
    /// the caller with the same definition as the packet-level simulator.
    pub ideal_fct: Nanos,
}

impl FluidFlow {
    pub fn links(&self) -> std::ops::RangeInclusive<usize> {
        self.first_link as usize..=self.last_link as usize
    }

    /// Non-panicking validation; `Err` carries the reason. Note that a NaN
    /// rate cap fails the `> 0.0` comparison, so NaN is rejected here too —
    /// before it can poison the event loop.
    pub fn check(&self, topo: &FluidTopology) -> Result<(), String> {
        if self.first_link > self.last_link {
            return Err("inverted segment".to_string());
        }
        if self.last_link as usize >= topo.num_links() {
            return Err("segment outside topology".to_string());
        }
        if self.rate_cap_bps.is_nan() || self.rate_cap_bps <= 0.0 {
            return Err(format!("rate cap {} not positive", self.rate_cap_bps));
        }
        Ok(())
    }

    pub fn validate(&self, topo: &FluidTopology) {
        if let Err(reason) = self.check(topo) {
            panic!("flow {}: {reason}", self.id);
        }
    }
}

/// Completion record produced by the fluid simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidFctRecord {
    pub id: u32,
    pub size: Bytes,
    pub arrival: Nanos,
    pub fct: Nanos,
    pub ideal_fct: Nanos,
}

impl FluidFctRecord {
    pub fn slowdown(&self) -> f64 {
        self.fct as f64 / self.ideal_fct.max(1) as f64
    }
}

/// Ideal FCT in the pure fluid model: size at the unloaded max-min rate
/// (bottleneck of segment links and the cap) plus the latency factor. Used
/// when no packet-level ideal is supplied.
pub fn fluid_ideal_fct(topo: &FluidTopology, flow: &FluidFlow) -> Nanos {
    let mut bw = flow.rate_cap_bps;
    for l in flow.links() {
        bw = bw.min(topo.link_bps[l]);
    }
    let bytes_per_ns = bw / 8e9;
    (flow.size.max(1) as f64 / bytes_per_ns).ceil() as Nanos + flow.latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_ideal_uses_bottleneck() {
        let topo = FluidTopology::new(vec![10e9, 1e9, 10e9]);
        let f = FluidFlow {
            id: 0,
            size: 1_000_000,
            arrival: 0,
            first_link: 0,
            last_link: 2,
            rate_cap_bps: f64::INFINITY,
            latency: 500,
            ideal_fct: 0,
        };
        // 1 MB at 1 Gbps = 8 ms, plus 500 ns latency.
        assert_eq!(fluid_ideal_fct(&topo, &f), 8_000_000 + 500);
    }

    #[test]
    fn fluid_ideal_respects_cap() {
        let topo = FluidTopology::new(vec![10e9]);
        let f = FluidFlow {
            id: 0,
            size: 1000,
            arrival: 0,
            first_link: 0,
            last_link: 0,
            rate_cap_bps: 1e9,
            latency: 0,
            ideal_fct: 0,
        };
        assert_eq!(fluid_ideal_fct(&topo, &f), 8000);
    }

    #[test]
    #[should_panic(expected = "inverted segment")]
    fn validate_rejects_inverted() {
        let topo = FluidTopology::new(vec![1e9, 1e9]);
        let f = FluidFlow {
            id: 3,
            size: 1,
            arrival: 0,
            first_link: 1,
            last_link: 0,
            rate_cap_bps: 1e9,
            latency: 0,
            ideal_fct: 1,
        };
        f.validate(&topo);
    }
}
