//! Virtual-time probes for the fluid engine.
//!
//! A [`FluidProbe`] samples engine state over *virtual* (simulated) time at
//! a configurable stride and forwards each sample to a caller-supplied
//! [`FluidProbeSink`] — in the m3 pipeline, a tracing span that turns the
//! samples into Perfetto counter tracks. The engine itself stays free of
//! any telemetry dependency: the sink is a plain trait object, and a run
//! without a probe takes exactly one extra branch per outer event.
//!
//! Samples are deterministic: they fire at stride boundaries of the fluid
//! clock (which is itself deterministic for a fixed input), and carry only
//! values derived from engine state. When an event interval crosses
//! several stride boundaries the probe emits one sample at the *last*
//! boundary crossed — rates are constant between events, so intermediate
//! samples would repeat the same values.

/// Receives probe samples. Implementations must tolerate being called from
/// inside the engine's hot loop (no blocking, no panics).
pub trait FluidProbeSink {
    /// Utilization of `link` (fraction of capacity in use, clamped to
    /// `[0, 1]`) over the interval ending at virtual time `vts_ns`.
    fn on_link(&self, vts_ns: u64, link: u16, utilization: f64);

    /// Number of active flows over the interval ending at `vts_ns`.
    fn on_active_flows(&self, vts_ns: u64, active: u64);
}

/// A probe configuration: where to send samples and how often.
pub struct FluidProbe<'a> {
    /// Virtual-time sampling stride in nanoseconds (values below 1 are
    /// treated as 1).
    pub stride_ns: u64,
    /// Destination for samples.
    pub sink: &'a dyn FluidProbeSink,
}

impl<'a> FluidProbe<'a> {
    /// A probe sampling every `stride_ns` of virtual time.
    pub fn new(stride_ns: u64, sink: &'a dyn FluidProbeSink) -> Self {
        FluidProbe {
            stride_ns: stride_ns.max(1),
            sink,
        }
    }
}
