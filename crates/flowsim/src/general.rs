//! A max-min fluid simulator over *arbitrary* topologies: flows may occupy
//! any set of links, not just a contiguous parking-lot segment.
//!
//! This generalizes [`crate::fluid`] (which it shares its algorithmic
//! structure with): flows are still grouped — here by identical (link-set,
//! rate-cap) — the progressive-filling waterfill runs over groups, and
//! per-group completion targets ride the fair-queueing service clock. It is
//! used for the "global flowSim" baseline (fluid simulation of the whole
//! network at once) and for differential-testing the segment engine.

use crate::budget::{BudgetMeter, FluidBudget, FluidError};
use crate::types::{Bytes, FluidFctRecord, Nanos};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// A fluid flow over an arbitrary link set.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralFluidFlow {
    pub id: u32,
    pub size: Bytes,
    pub arrival: Nanos,
    /// Links traversed (indices into the capacity vector); deduplicated and
    /// sorted internally.
    pub links: Vec<u32>,
    pub rate_cap_bps: f64,
    pub latency: Nanos,
    pub ideal_fct: Nanos,
}

const SERVICE_EPS: f64 = 1e-3;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Target {
    service: f64,
    id: u32,
    arrival: Nanos,
    size: u64,
    latency: Nanos,
    ideal_fct: Nanos,
}

impl Eq for Target {}
impl PartialOrd for Target {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Target {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp: NaN-safe strict weak ordering (see fluid.rs).
        self.service
            .total_cmp(&other.service)
            .then_with(|| self.id.cmp(&other.id))
    }
}

#[derive(Debug)]
struct Group {
    links: Vec<u32>,
    /// Bit pattern of the shared rate cap; part of the group identity so
    /// equal link sets with different caps stay distinct groups.
    cap_bits: u64,
    cap: f64,
    n: usize,
    service: f64,
    rate: f64,
    targets: BinaryHeap<std::cmp::Reverse<Target>>,
    gen: u64,
}

/// FNV-1a over the (sorted, deduplicated) link set and the cap bits. Used to
/// bucket groups so membership can be probed with a borrowed scratch slice —
/// a `HashMap<(Vec<u32>, u64), _>` would force an owned key allocation per
/// arrival. Collisions are resolved by comparing the actual link sets.
fn group_key_hash(links: &[u32], cap_bits: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in links {
        h ^= l as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= cap_bits;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

/// Reusable scratch for the general fluid engine; see
/// [`crate::fluid::FluidWorkspace`]. A warm workspace makes repeated
/// [`try_simulate_fluid_general_into`] calls allocation-free in steady
/// state: group link sets, target heaps, index buckets, and waterfill
/// scratch are all recycled with their capacity intact.
#[derive(Debug, Default)]
pub struct GeneralFluidWorkspace {
    order: Vec<usize>,
    caps: Vec<f64>,
    groups: Vec<Group>,
    spare_heaps: Vec<BinaryHeap<std::cmp::Reverse<Target>>>,
    spare_links: Vec<Vec<u32>>,
    /// key hash -> indices of groups with that hash. Buckets are cleared in
    /// place between runs (never dropped) so their capacity survives.
    group_index: HashMap<u64, Vec<usize>>,
    /// Scratch for the sorted/deduplicated link set of the arriving flow.
    key_links: Vec<u32>,
    candidates: BinaryHeap<Candidate>,
    residual: Vec<f64>,
    nflows: Vec<usize>,
    unfixed: Vec<usize>,
}

impl GeneralFluidWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Release all retained capacity (memory-pressure escape hatch).
    pub fn free_buffers(&mut self) {
        *self = Self::default();
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    time: f64,
    group: usize,
    gen: u64,
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.group.cmp(&self.group))
            .then_with(|| other.gen.cmp(&self.gen))
    }
}

/// Run the general fluid simulation. `link_bps[i]` is the capacity of link
/// `i`; every flow's `links` entries must index into it.
///
/// Panics on invalid input; for a fallible, resource-bounded run use
/// [`try_simulate_fluid_general`].
pub fn simulate_fluid_general(link_bps: &[f64], flows: &[GeneralFluidFlow]) -> Vec<FluidFctRecord> {
    match try_simulate_fluid_general(link_bps, flows, &FluidBudget::UNLIMITED) {
        Ok(records) => records,
        Err(e) => panic!("general flowSim failed: {e}"),
    }
}

/// Fallible general fluid simulation: typed validation errors, an event and
/// wall-clock budget, and the finite-event-time guard active in release
/// builds. Identical results to [`simulate_fluid_general`] when it succeeds.
pub fn try_simulate_fluid_general(
    link_bps: &[f64],
    flows: &[GeneralFluidFlow],
    budget: &FluidBudget,
) -> Result<Vec<FluidFctRecord>, FluidError> {
    let mut ws = GeneralFluidWorkspace::default();
    let mut records = Vec::new();
    try_simulate_fluid_general_into(link_bps, flows, budget, &mut ws, &mut records)?;
    Ok(records)
}

/// [`try_simulate_fluid_general`] with caller-owned scratch: `ws` supplies
/// every internal collection and `records` receives the sorted results
/// (cleared first). Bit-identical to the owning entry point; with a warm
/// workspace the steady-state run performs zero heap allocations.
pub fn try_simulate_fluid_general_into(
    link_bps: &[f64],
    flows: &[GeneralFluidFlow],
    budget: &FluidBudget,
    ws: &mut GeneralFluidWorkspace,
    records: &mut Vec<FluidFctRecord>,
) -> Result<(), FluidError> {
    if link_bps.is_empty() {
        return Err(FluidError::InvalidInput {
            flow: u32::MAX,
            reason: "no links".to_string(),
        });
    }
    for f in flows {
        if f.links.is_empty() {
            return Err(FluidError::InvalidInput {
                flow: f.id,
                reason: "flow has no links".to_string(),
            });
        }
        if f.rate_cap_bps.is_nan() || f.rate_cap_bps <= 0.0 {
            return Err(FluidError::InvalidInput {
                flow: f.id,
                reason: format!("rate cap {} not positive", f.rate_cap_bps),
            });
        }
        for &l in &f.links {
            if l as usize >= link_bps.len() {
                return Err(FluidError::InvalidInput {
                    flow: f.id,
                    reason: format!("link {l} outside topology"),
                });
            }
        }
    }
    let mut meter = BudgetMeter::new(*budget);
    // Disjoint &mut borrows of every scratch collection.
    let GeneralFluidWorkspace {
        order,
        caps,
        groups,
        spare_heaps,
        spare_links,
        group_index,
        key_links,
        candidates,
        residual,
        nflows,
        unfixed,
    } = ws;

    caps.clear();
    caps.extend(link_bps.iter().map(|&b| b / 8e9));
    order.clear();
    order.extend(0..flows.len());
    // Unstable sort allocates nothing; the index tiebreak reproduces the
    // stable order exactly even if (arrival, id) pairs collide.
    order.sort_unstable_by_key(|&i| (flows[i].arrival, flows[i].id, i));

    for g in groups.drain(..) {
        let mut heap = g.targets;
        heap.clear();
        spare_heaps.push(heap);
        spare_links.push(g.links);
    }
    // Clear buckets in place: dropping them would forfeit their capacity.
    for bucket in group_index.values_mut() {
        bucket.clear();
    }
    candidates.clear();
    records.clear();
    records.reserve(flows.len());
    residual.clear();
    residual.resize(caps.len(), 0.0);
    nflows.clear();
    nflows.resize(caps.len(), 0);
    let mut now = 0.0f64;
    let mut next_flow = 0usize;
    let mut active = 0usize;

    while next_flow < order.len() || active > 0 {
        meter.tick()?;
        let t_arrival = if next_flow < order.len() {
            flows[order[next_flow]].arrival as f64
        } else {
            f64::INFINITY
        };
        let t_completion = loop {
            match candidates.peek() {
                Some(c) if groups[c.group].gen != c.gen => {
                    candidates.pop();
                }
                Some(c) => break c.time,
                None => break f64::INFINITY,
            }
        };
        let t_next = t_arrival.min(t_completion);
        // Release-mode guard (was a debug_assert); see fluid.rs.
        if !t_next.is_finite() {
            return Err(FluidError::NonFiniteEventTime {
                events: meter.events(),
                t: t_next,
            });
        }
        let dt = (t_next - now).max(0.0);
        if dt > 0.0 {
            for g in groups.iter_mut() {
                if g.n > 0 {
                    g.service += g.rate * dt;
                }
            }
        }
        now = t_next;

        let mut changed = false;
        while let Some(&c) = candidates.peek() {
            if groups[c.group].gen != c.gen {
                candidates.pop();
                continue;
            }
            if c.time > now + 1e-9 {
                break;
            }
            candidates.pop();
            let g = &mut groups[c.group];
            while let Some(std::cmp::Reverse(t)) = g.targets.peek().copied() {
                if t.service <= g.service + SERVICE_EPS {
                    g.targets.pop();
                    g.n -= 1;
                    active -= 1;
                    changed = true;
                    let fct = (now - t.arrival as f64).max(0.0).ceil() as Nanos + t.latency;
                    records.push(FluidFctRecord {
                        id: t.id,
                        size: t.size,
                        arrival: t.arrival,
                        fct: fct.max(1),
                        ideal_fct: t.ideal_fct,
                    });
                } else {
                    break;
                }
            }
        }

        while next_flow < order.len() && flows[order[next_flow]].arrival as f64 <= now {
            let f = &flows[order[next_flow]];
            next_flow += 1;
            active += 1;
            changed = true;
            key_links.clear();
            key_links.extend_from_slice(&f.links);
            key_links.sort_unstable();
            key_links.dedup();
            let cap_bits = f.rate_cap_bps.to_bits();
            let hash = group_key_hash(key_links, cap_bits);
            let bucket = group_index.entry(hash).or_default();
            let gi = match bucket
                .iter()
                .copied()
                .find(|&gi| groups[gi].cap_bits == cap_bits && groups[gi].links == *key_links)
            {
                Some(gi) => gi,
                None => {
                    let mut links = spare_links.pop().unwrap_or_default();
                    links.clear();
                    links.extend_from_slice(key_links);
                    groups.push(Group {
                        links,
                        cap_bits,
                        cap: f.rate_cap_bps / 8e9,
                        n: 0,
                        service: 0.0,
                        rate: 0.0,
                        targets: spare_heaps.pop().unwrap_or_default(),
                        gen: 0,
                    });
                    bucket.push(groups.len() - 1);
                    groups.len() - 1
                }
            };
            let g = &mut groups[gi];
            g.n += 1;
            g.targets.push(std::cmp::Reverse(Target {
                service: g.service + f.size.max(1) as f64,
                id: f.id,
                arrival: f.arrival,
                size: f.size,
                latency: f.latency,
                ideal_fct: f.ideal_fct,
            }));
        }

        if !changed {
            continue;
        }
        waterfill_general(caps, groups, residual, nflows, unfixed).map_err(|()| {
            FluidError::Stalled {
                events: meter.events(),
            }
        })?;
        for (gi, g) in groups.iter_mut().enumerate() {
            g.gen += 1;
            if g.n == 0 {
                continue;
            }
            debug_assert!(g.rate > 0.0);
            if let Some(std::cmp::Reverse(t)) = g.targets.peek() {
                candidates.push(Candidate {
                    time: now + (t.service - g.service).max(0.0) / g.rate,
                    group: gi,
                    gen: g.gen,
                });
            }
        }
    }
    // Unstable sort allocates nothing; records with equal full keys are
    // bitwise identical, so this reproduces the stable order exactly.
    records.sort_unstable_by_key(|r| (r.id, r.arrival, r.size, r.fct, r.ideal_fct));
    Ok(())
}

/// `Err(())` means an iteration fixed no group, which would loop forever.
fn waterfill_general(
    caps: &[f64],
    groups: &mut [Group],
    residual: &mut [f64],
    nflows: &mut [usize],
    unfixed: &mut Vec<usize>,
) -> Result<(), ()> {
    residual.copy_from_slice(caps);
    nflows.iter_mut().for_each(|c| *c = 0);
    unfixed.clear();
    for (gi, g) in groups.iter_mut().enumerate() {
        if g.n == 0 {
            g.rate = 0.0;
            continue;
        }
        unfixed.push(gi);
        for &l in &g.links {
            nflows[l as usize] += g.n;
        }
    }
    while !unfixed.is_empty() {
        let mut r_link = f64::INFINITY;
        let mut l_star = usize::MAX;
        for (l, &c) in nflows.iter().enumerate() {
            if c > 0 {
                let fair = (residual[l] / c as f64).max(0.0);
                if fair < r_link {
                    r_link = fair;
                    l_star = l;
                }
            }
        }
        let mut r_cap = f64::INFINITY;
        let mut g_star = usize::MAX;
        for &gi in unfixed.iter() {
            if groups[gi].cap < r_cap {
                r_cap = groups[gi].cap;
                g_star = gi;
            }
        }
        if r_cap <= r_link {
            let g = &mut groups[g_star];
            g.rate = r_cap;
            for &l in &g.links {
                residual[l as usize] = (residual[l as usize] - r_cap * g.n as f64).max(0.0);
                nflows[l as usize] -= g.n;
            }
            unfixed.retain(|&x| x != g_star);
        } else {
            debug_assert!(l_star != usize::MAX);
            let mut fixed_any = false;
            unfixed.retain(|&gi| {
                let g = &mut groups[gi];
                if g.links.iter().any(|&l| l as usize == l_star) {
                    g.rate = r_link;
                    for &l in &g.links {
                        residual[l as usize] =
                            (residual[l as usize] - r_link * g.n as f64).max(0.0);
                        nflows[l as usize] -= g.n;
                    }
                    fixed_any = true;
                    false
                } else {
                    true
                }
            });
            if !fixed_any {
                return Err(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::simulate_fluid;
    use crate::types::{fluid_ideal_fct, FluidFlow, FluidTopology};

    #[test]
    fn single_flow_line_rate() {
        let flows = vec![GeneralFluidFlow {
            id: 0,
            size: 10_000,
            arrival: 0,
            links: vec![0, 1],
            rate_cap_bps: f64::INFINITY,
            latency: 100,
            ideal_fct: 8_100,
        }];
        let recs = simulate_fluid_general(&[10e9, 10e9], &flows);
        assert_eq!(recs[0].fct, 8_000 + 100);
    }

    #[test]
    fn matches_segment_engine_on_parking_lot() {
        // Any parking-lot workload must produce identical results in both
        // engines (contiguous segments are a special case of link sets).
        let topo = FluidTopology::new(vec![10e9, 40e9, 10e9]);
        let mut seg_flows = Vec::new();
        let mut gen_flows = Vec::new();
        let mut state = 99u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for i in 0..200u32 {
            let a = (rng() % 3) as u16;
            let b = (rng() % 3) as u16;
            let (first, last) = (a.min(b), a.max(b));
            let size = 200 + rng() % 80_000;
            let arrival = rng() % 500_000;
            let cap = if rng() % 2 == 0 { 10e9 } else { f64::INFINITY };
            let mut f = FluidFlow {
                id: i,
                size,
                arrival,
                first_link: first,
                last_link: last,
                rate_cap_bps: cap,
                latency: 55,
                ideal_fct: 0,
            };
            f.ideal_fct = fluid_ideal_fct(&topo, &f);
            gen_flows.push(GeneralFluidFlow {
                id: i,
                size,
                arrival,
                links: (first as u32..=last as u32).collect(),
                rate_cap_bps: cap,
                latency: 55,
                ideal_fct: f.ideal_fct,
            });
            seg_flows.push(f);
        }
        let seg = simulate_fluid(&topo, &seg_flows);
        let gen = simulate_fluid_general(&topo.link_bps, &gen_flows);
        for (s, g) in seg.iter().zip(&gen) {
            let tol = 2.0 + 1e-6 * s.fct as f64;
            assert!(
                (s.fct as f64 - g.fct as f64).abs() <= tol,
                "flow {}: segment {} vs general {}",
                s.id,
                s.fct,
                g.fct
            );
        }
    }

    #[test]
    fn non_contiguous_link_sets() {
        // Flow A uses links {0, 2} (skipping 1); B saturates link 1 alone.
        // A and B must not contend.
        let flows = vec![
            GeneralFluidFlow {
                id: 0,
                size: 10_000,
                arrival: 0,
                links: vec![0, 2],
                rate_cap_bps: f64::INFINITY,
                latency: 0,
                ideal_fct: 8_000,
            },
            GeneralFluidFlow {
                id: 1,
                size: 10_000,
                arrival: 0,
                links: vec![1],
                rate_cap_bps: f64::INFINITY,
                latency: 0,
                ideal_fct: 8_000,
            },
        ];
        let recs = simulate_fluid_general(&[10e9, 10e9, 10e9], &flows);
        assert_eq!(recs[0].fct, 8_000);
        assert_eq!(recs[1].fct, 8_000);
    }

    #[test]
    fn duplicate_links_deduplicated() {
        let flows = vec![GeneralFluidFlow {
            id: 0,
            size: 10_000,
            arrival: 0,
            links: vec![0, 0, 0],
            rate_cap_bps: f64::INFINITY,
            latency: 0,
            ideal_fct: 8_000,
        }];
        let recs = simulate_fluid_general(&[10e9], &flows);
        assert_eq!(recs[0].fct, 8_000, "a flow crosses each link once");
    }

    #[test]
    fn nan_cap_and_budget_are_typed_errors() {
        let flows = vec![GeneralFluidFlow {
            id: 7,
            size: 10_000,
            arrival: 0,
            links: vec![0],
            rate_cap_bps: f64::NAN,
            latency: 0,
            ideal_fct: 8_000,
        }];
        let err = try_simulate_fluid_general(&[10e9], &flows, &FluidBudget::UNLIMITED)
            .expect_err("NaN cap must be rejected");
        assert!(matches!(err, FluidError::InvalidInput { flow: 7, .. }));

        let many: Vec<GeneralFluidFlow> = (0..50)
            .map(|i| GeneralFluidFlow {
                id: i,
                size: 10_000,
                arrival: i as u64,
                links: vec![0],
                rate_cap_bps: f64::INFINITY,
                latency: 0,
                ideal_fct: 8_000,
            })
            .collect();
        let err = try_simulate_fluid_general(&[10e9], &many, &FluidBudget::events(2))
            .expect_err("2 events cannot finish 50 flows");
        assert_eq!(err, FluidError::EventBudgetExceeded { limit: 2 });
    }

    #[test]
    fn star_topology_fairness() {
        // Three flows sharing one hub link pairwise through distinct spokes:
        // hub is the bottleneck, each gets 1/3.
        let caps = vec![10e9, 10e9, 10e9, 10e9]; // 0 = hub, 1-3 spokes
        let flows: Vec<GeneralFluidFlow> = (0..3u32)
            .map(|i| GeneralFluidFlow {
                id: i,
                size: 30_000,
                arrival: 0,
                links: vec![0, 1 + i],
                rate_cap_bps: f64::INFINITY,
                latency: 0,
                ideal_fct: 24_000,
            })
            .collect();
        let recs = simulate_fluid_general(&caps, &flows);
        for r in &recs {
            assert_eq!(r.fct, 72_000, "each of 3 flows gets 1/3 of the hub");
        }
    }
}
