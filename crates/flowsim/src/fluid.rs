//! The fast flowSim engine (Algorithm 1 of the paper).
//!
//! Flows are grouped by (segment, rate cap): every flow in a group shares
//! the same link set, so max-min assigns all of them the same rate. The
//! progressive-filling waterfill therefore runs over *groups* (at most
//! O(hops^2 x cap classes) of them on a parking lot), not individual flows.
//!
//! Within a group the engine uses the fair-queueing trick: it tracks the
//! cumulative per-flow service S_g(t); a flow of size `s` joining at time
//! `t0` completes when S_g reaches S_g(t0) + s. Each group keeps a min-heap
//! of completion targets, so the whole simulation runs in O(F log F) heap
//! operations plus O(groups^2) waterfill work per event.

use crate::budget::{BudgetMeter, FluidBudget, FluidError, FluidRunStats};
use crate::probe::FluidProbe;
use crate::types::{FluidFctRecord, FluidFlow, FluidTopology, Nanos};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Tolerance (bytes) when matching completion targets; sub-byte fluid error.
const SERVICE_EPS: f64 = 1e-3;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Target {
    /// Service level at which the flow completes (bytes).
    service: f64,
    id: u32,
    arrival: Nanos,
    size: u64,
    latency: Nanos,
    ideal_fct: Nanos,
}

impl Eq for Target {}
impl PartialOrd for Target {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Target {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (service, id) via reversal at use sites. total_cmp
        // keeps this a strict weak ordering even if a NaN service sneaks
        // in (partial_cmp(..).unwrap_or(Equal) made NaN compare equal to
        // everything while the id tiebreak still ordered it, which is
        // intransitive and undefined behavior for BinaryHeap ordering).
        self.service
            .total_cmp(&other.service)
            .then_with(|| self.id.cmp(&other.id))
    }
}

#[derive(Debug)]
struct Group {
    first: usize,
    last: usize,
    /// Per-flow rate cap, bytes/ns.
    cap: f64,
    /// Number of active flows.
    n: usize,
    /// Cumulative per-flow service, bytes.
    service: f64,
    /// Current per-flow rate, bytes/ns.
    rate: f64,
    /// Pending completion targets (min-heap).
    targets: BinaryHeap<std::cmp::Reverse<Target>>,
    /// Invalidates stale completion candidates.
    gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    time: f64,
    group: usize,
    gen: u64,
}

impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap semantics inside BinaryHeap; total_cmp for
        // NaN-safe strict weak ordering.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.group.cmp(&self.group))
            .then_with(|| other.gen.cmp(&self.gen))
    }
}

/// Reusable scratch for the fluid engine.
///
/// Every collection the simulation needs lives here — the arrival order,
/// link capacities, groups (with their completion-target heaps), the group
/// index, the candidate event heap, and the waterfill scratch. All of them
/// are cleared, never dropped, between runs, so a warm workspace makes
/// repeated [`try_simulate_fluid_traced_into`] calls allocation-free: after
/// the first run on a given workload shape, steady-state simulation touches
/// the heap zero times.
#[derive(Debug, Default)]
pub struct FluidWorkspace {
    order: Vec<usize>,
    caps_bytes_ns: Vec<f64>,
    groups: Vec<Group>,
    /// Emptied target heaps recycled from finished runs; fresh groups pop
    /// one of these and inherit its capacity instead of allocating.
    spare_heaps: Vec<BinaryHeap<std::cmp::Reverse<Target>>>,
    group_index: HashMap<(u16, u16, u64), usize>,
    candidates: BinaryHeap<Candidate>,
    residual: Vec<f64>,
    nflows: Vec<usize>,
    unfixed: Vec<usize>,
}

impl FluidWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Release all retained capacity (memory-pressure escape hatch).
    pub fn free_buffers(&mut self) {
        *self = Self::default();
    }
}

/// Run flowSim: max-min fluid simulation of `flows` over `topo`.
///
/// Flows need not be sorted; results are returned sorted by flow id. Every
/// flow completes (the fluid model cannot lose traffic), so the output
/// length always equals the input length.
///
/// Panics on invalid input; for a fallible, resource-bounded run use
/// [`try_simulate_fluid`].
pub fn simulate_fluid(topo: &FluidTopology, flows: &[FluidFlow]) -> Vec<FluidFctRecord> {
    match try_simulate_fluid(topo, flows, &FluidBudget::UNLIMITED) {
        Ok(records) => records,
        Err(e) => panic!("flowSim failed: {e}"),
    }
}

/// Fallible flowSim: validates inputs, bounds the run by `budget`, and turns
/// the engine's internal invariants (finite event times, waterfill progress)
/// into typed errors instead of debug-only assertions. Identical results to
/// [`simulate_fluid`] whenever that one succeeds.
pub fn try_simulate_fluid(
    topo: &FluidTopology,
    flows: &[FluidFlow],
    budget: &FluidBudget,
) -> Result<Vec<FluidFctRecord>, FluidError> {
    try_simulate_fluid_stats(topo, flows, budget).map(|(records, _)| records)
}

/// [`try_simulate_fluid`] plus deterministic budget-consumption accounting:
/// how many outer events the run executed and how often the wall clock was
/// sampled. The records are identical to the plain entry point's.
pub fn try_simulate_fluid_stats(
    topo: &FluidTopology,
    flows: &[FluidFlow],
    budget: &FluidBudget,
) -> Result<(Vec<FluidFctRecord>, FluidRunStats), FluidError> {
    try_simulate_fluid_traced(topo, flows, budget, None)
}

/// [`try_simulate_fluid_stats`] with an optional virtual-time
/// [`FluidProbe`]: per-link utilization and active-flow counts are sampled
/// at the probe's stride and forwarded to its sink. Records are identical
/// to the unprobed entry points — the probe only observes.
pub fn try_simulate_fluid_traced(
    topo: &FluidTopology,
    flows: &[FluidFlow],
    budget: &FluidBudget,
    probe: Option<&FluidProbe<'_>>,
) -> Result<(Vec<FluidFctRecord>, FluidRunStats), FluidError> {
    let mut ws = FluidWorkspace::default();
    let mut records = Vec::new();
    let stats = try_simulate_fluid_traced_into(topo, flows, budget, probe, &mut ws, &mut records)?;
    Ok((records, stats))
}

/// [`try_simulate_fluid_traced`] with caller-owned scratch: `ws` supplies
/// every internal collection and `records` receives the sorted results
/// (cleared first). Bit-identical to the owning entry points; with a warm
/// workspace the steady-state run performs zero heap allocations.
pub fn try_simulate_fluid_traced_into(
    topo: &FluidTopology,
    flows: &[FluidFlow],
    budget: &FluidBudget,
    probe: Option<&FluidProbe<'_>>,
    ws: &mut FluidWorkspace,
    records: &mut Vec<FluidFctRecord>,
) -> Result<FluidRunStats, FluidError> {
    for f in flows {
        f.check(topo)
            .map_err(|reason| FluidError::InvalidInput { flow: f.id, reason })?;
    }
    let mut meter = BudgetMeter::new(*budget);
    // Disjoint &mut borrows of every scratch collection.
    let FluidWorkspace {
        order,
        caps_bytes_ns,
        groups,
        spare_heaps,
        group_index,
        candidates,
        residual,
        nflows,
        unfixed,
    } = ws;

    order.clear();
    order.extend(0..flows.len());
    // Unstable sort allocates nothing; the index tiebreak reproduces the
    // stable order exactly even if (arrival, id) pairs collide.
    order.sort_unstable_by_key(|&i| (flows[i].arrival, flows[i].id, i));

    caps_bytes_ns.clear();
    caps_bytes_ns.extend(topo.link_bps.iter().map(|&b| b / 8e9));
    let n_links = caps_bytes_ns.len();

    for g in groups.drain(..) {
        let mut heap = g.targets;
        heap.clear();
        spare_heaps.push(heap);
    }
    group_index.clear();
    candidates.clear();
    records.clear();
    records.reserve(flows.len());

    let mut now: f64 = 0.0;
    let mut next_flow = 0usize;
    let mut active_flows = 0usize;
    // Next virtual-time stride boundary at which the probe samples.
    let mut probe_next: u64 = match probe {
        Some(p) => p.stride_ns.max(1),
        None => u64::MAX,
    };

    // Scratch buffers for the waterfill.
    residual.clear();
    residual.resize(n_links, 0.0);
    nflows.clear();
    nflows.resize(n_links, 0);

    while next_flow < order.len() || active_flows > 0 {
        meter.tick()?;
        // ---- choose the next event time ----
        let t_arrival = if next_flow < order.len() {
            flows[order[next_flow]].arrival as f64
        } else {
            f64::INFINITY
        };
        // Discard stale completion candidates.
        let t_completion = loop {
            match candidates.peek() {
                Some(c) if groups[c.group].gen != c.gen => {
                    candidates.pop();
                }
                Some(c) => break c.time,
                None => break f64::INFINITY,
            }
        };
        let t_next = t_arrival.min(t_completion);
        // Release-mode guard (was a debug_assert): a NaN or infinite next
        // event time with flows still active would spin this loop forever.
        if !t_next.is_finite() {
            return Err(FluidError::NonFiniteEventTime {
                events: meter.events(),
                t: t_next,
            });
        }
        debug_assert!(t_next >= now - 1e-6, "time went backwards");
        let dt = (t_next - now).max(0.0);

        // ---- advance service clocks ----
        if dt > 0.0 {
            for g in groups.iter_mut() {
                if g.n > 0 {
                    g.service += g.rate * dt;
                }
            }
        }
        now = t_next;

        // ---- probe: sample state over the interval that just elapsed ----
        // Rates are constant between events, so the values at the last
        // stride boundary crossed describe the whole interval; emitting
        // only that boundary keeps the sample count bounded.
        if let Some(p) = probe {
            let now_ns = now as u64;
            if now_ns >= probe_next {
                let stride = p.stride_ns.max(1);
                let boundary = (now_ns / stride) * stride;
                for (l, &cap) in caps_bytes_ns.iter().enumerate() {
                    let mut used = 0.0;
                    for g in groups.iter() {
                        if g.n > 0 && g.first <= l && l <= g.last {
                            used += g.rate * g.n as f64;
                        }
                    }
                    let util = if cap > 0.0 {
                        (used / cap).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    p.sink.on_link(boundary, l as u16, util);
                }
                p.sink.on_active_flows(boundary, active_flows as u64);
                probe_next = boundary.saturating_add(stride);
            }
        }

        // ---- completions at `now` ----
        let mut membership_changed = false;
        while let Some(&c) = candidates.peek() {
            if groups[c.group].gen != c.gen {
                candidates.pop();
                continue;
            }
            if c.time > now + 1e-9 {
                break;
            }
            candidates.pop();
            let g = &mut groups[c.group];
            // Pop every target this service level satisfies.
            while let Some(std::cmp::Reverse(t)) = g.targets.peek().copied() {
                if t.service <= g.service + SERVICE_EPS {
                    g.targets.pop();
                    g.n -= 1;
                    active_flows -= 1;
                    membership_changed = true;
                    let fct_ns = (now - t.arrival as f64).max(0.0).ceil() as Nanos + t.latency;
                    records.push(FluidFctRecord {
                        id: t.id,
                        size: t.size,
                        arrival: t.arrival,
                        fct: fct_ns.max(1),
                        ideal_fct: t.ideal_fct,
                    });
                } else {
                    break;
                }
            }
        }

        // ---- arrivals at `now` ----
        while next_flow < order.len() && flows[order[next_flow]].arrival as f64 <= now {
            let f = &flows[order[next_flow]];
            next_flow += 1;
            active_flows += 1;
            membership_changed = true;
            let key = (f.first_link, f.last_link, f.rate_cap_bps.to_bits());
            let gi = *group_index.entry(key).or_insert_with(|| {
                groups.push(Group {
                    first: f.first_link as usize,
                    last: f.last_link as usize,
                    cap: f.rate_cap_bps / 8e9,
                    n: 0,
                    service: 0.0,
                    rate: 0.0,
                    targets: spare_heaps.pop().unwrap_or_default(),
                    gen: 0,
                });
                groups.len() - 1
            });
            let g = &mut groups[gi];
            g.n += 1;
            g.targets.push(std::cmp::Reverse(Target {
                service: g.service + f.size.max(1) as f64,
                id: f.id,
                arrival: f.arrival,
                size: f.size,
                latency: f.latency,
                ideal_fct: f.ideal_fct,
            }));
        }

        if !membership_changed {
            continue;
        }

        // ---- waterfill: recompute max-min rates over active groups ----
        waterfill(caps_bytes_ns, groups, residual, nflows, unfixed).map_err(|()| {
            FluidError::Stalled {
                events: meter.events(),
            }
        })?;

        // ---- schedule fresh completion candidates ----
        for (gi, g) in groups.iter_mut().enumerate() {
            g.gen += 1;
            if g.n == 0 {
                continue;
            }
            debug_assert!(g.rate > 0.0, "active group with zero rate");
            if let Some(std::cmp::Reverse(t)) = g.targets.peek() {
                let t_c = now + (t.service - g.service).max(0.0) / g.rate;
                candidates.push(Candidate {
                    time: t_c,
                    group: gi,
                    gen: g.gen,
                });
            }
        }
    }

    // Unstable sort allocates nothing; records with equal full keys are
    // bitwise identical, so this reproduces the stable order exactly.
    records.sort_unstable_by_key(|r| (r.id, r.arrival, r.size, r.fct, r.ideal_fct));
    Ok(meter.stats())
}

/// Progressive-filling max-min over groups with per-group rate caps.
/// Groups with `n == 0` get rate 0. `Err(())` means no group could be fixed
/// in an iteration (numerically degenerate input), which would loop forever.
fn waterfill(
    link_caps: &[f64],
    groups: &mut [Group],
    residual: &mut [f64],
    nflows: &mut [usize],
    unfixed: &mut Vec<usize>,
) -> Result<(), ()> {
    residual.copy_from_slice(link_caps);
    nflows.iter_mut().for_each(|c| *c = 0);
    unfixed.clear();
    for (gi, g) in groups.iter_mut().enumerate() {
        if g.n == 0 {
            g.rate = 0.0;
            continue;
        }
        unfixed.push(gi);
        for nf in &mut nflows[g.first..=g.last] {
            *nf += g.n;
        }
    }
    while !unfixed.is_empty() {
        // Minimum link fair share among links carrying unfixed flows.
        let mut r_link = f64::INFINITY;
        let mut l_star = usize::MAX;
        for (l, &c) in nflows.iter().enumerate() {
            if c > 0 {
                let fair = (residual[l] / c as f64).max(0.0);
                if fair < r_link {
                    r_link = fair;
                    l_star = l;
                }
            }
        }
        // Minimum cap among unfixed groups.
        let mut r_cap = f64::INFINITY;
        let mut g_star = usize::MAX;
        for &gi in unfixed.iter() {
            if groups[gi].cap < r_cap {
                r_cap = groups[gi].cap;
                g_star = gi;
            }
        }
        if r_cap <= r_link {
            // Cap binds first: fix that single group.
            let g = &mut groups[g_star];
            g.rate = r_cap;
            for l in g.first..=g.last {
                residual[l] = (residual[l] - r_cap * g.n as f64).max(0.0);
                nflows[l] -= g.n;
            }
            unfixed.retain(|&gi| gi != g_star);
        } else {
            // Link saturates: fix every unfixed group crossing it.
            debug_assert!(l_star != usize::MAX);
            let mut fixed_any = false;
            unfixed.retain(|&gi| {
                let g = &mut groups[gi];
                if g.first <= l_star && l_star <= g.last {
                    g.rate = r_link;
                    for l in g.first..=g.last {
                        residual[l] = (residual[l] - r_link * g.n as f64).max(0.0);
                        nflows[l] -= g.n;
                    }
                    fixed_any = true;
                    false
                } else {
                    true
                }
            });
            if !fixed_any {
                return Err(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::fluid_ideal_fct;

    fn flow(id: u32, size: u64, arrival: Nanos, first: u16, last: u16, cap: f64) -> FluidFlow {
        FluidFlow {
            id,
            size,
            arrival,
            first_link: first,
            last_link: last,
            rate_cap_bps: cap,
            latency: 0,
            ideal_fct: 1,
        }
    }

    fn with_ideal(topo: &FluidTopology, mut f: FluidFlow) -> FluidFlow {
        f.ideal_fct = fluid_ideal_fct(topo, &f);
        f
    }

    #[test]
    fn single_flow_runs_at_line_rate() {
        let topo = FluidTopology::new(vec![10e9]);
        let f = with_ideal(&topo, flow(0, 10_000, 0, 0, 0, f64::INFINITY));
        let recs = simulate_fluid(&topo, &[f]);
        assert_eq!(recs.len(), 1);
        // 10_000 bytes at 10G = 8000 ns.
        assert_eq!(recs[0].fct, 8000);
        assert!((recs[0].slowdown() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_equal_flows_halve_rate() {
        let topo = FluidTopology::new(vec![10e9]);
        let flows = vec![
            with_ideal(&topo, flow(0, 10_000, 0, 0, 0, f64::INFINITY)),
            with_ideal(&topo, flow(1, 10_000, 0, 0, 0, f64::INFINITY)),
        ];
        let recs = simulate_fluid(&topo, &flows);
        for r in &recs {
            assert_eq!(r.fct, 16_000, "both flows share the link evenly");
        }
    }

    #[test]
    fn shorter_flow_finishes_then_longer_speeds_up() {
        let topo = FluidTopology::new(vec![10e9]);
        let flows = vec![
            with_ideal(&topo, flow(0, 10_000, 0, 0, 0, f64::INFINITY)),
            with_ideal(&topo, flow(1, 30_000, 0, 0, 0, f64::INFINITY)),
        ];
        let recs = simulate_fluid(&topo, &flows);
        // Short: 10k at 5G -> 16us. Long: 10k at 5G (16us) + 20k at 10G (16us) = 32us.
        assert_eq!(recs[0].fct, 16_000);
        assert_eq!(recs[1].fct, 32_000);
    }

    #[test]
    fn rate_cap_binds() {
        let topo = FluidTopology::new(vec![10e9]);
        let f = with_ideal(&topo, flow(0, 10_000, 0, 0, 0, 1e9));
        let recs = simulate_fluid(&topo, &[f]);
        assert_eq!(recs[0].fct, 80_000);
    }

    #[test]
    fn parking_lot_max_min_rates() {
        // Two links; flow A spans both, flows B and C each use one link.
        // Max-min: B and C get 5G each... actually A competes on both links:
        // fair share on each link = cap/2 = 5G, A is bottlenecked at 5G,
        // B and C get the rest: 5G each.
        let topo = FluidTopology::new(vec![10e9, 10e9]);
        let flows = vec![
            with_ideal(&topo, flow(0, 50_000, 0, 0, 1, f64::INFINITY)), // A spans both
            with_ideal(&topo, flow(1, 50_000, 0, 0, 0, f64::INFINITY)), // B link 0
            with_ideal(&topo, flow(2, 50_000, 0, 1, 1, f64::INFINITY)), // C link 1
        ];
        let recs = simulate_fluid(&topo, &flows);
        // All three run at 5G until they finish simultaneously: 80us.
        for r in &recs {
            assert_eq!(r.fct, 80_000);
        }
    }

    #[test]
    fn unequal_links_make_spanning_flow_slowest() {
        let topo = FluidTopology::new(vec![10e9, 1e9]);
        let flows = vec![
            with_ideal(&topo, flow(0, 10_000, 0, 0, 1, f64::INFINITY)), // bottleneck 1G shared
            with_ideal(&topo, flow(1, 10_000, 0, 1, 1, f64::INFINITY)),
        ];
        let recs = simulate_fluid(&topo, &flows);
        // Both share the 1G link: 0.5G each -> 160us.
        assert_eq!(recs[0].fct, 160_000);
        assert_eq!(recs[1].fct, 160_000);
    }

    #[test]
    fn staggered_arrivals() {
        let topo = FluidTopology::new(vec![8e9]); // 1 byte/ns
        let flows = vec![
            with_ideal(&topo, flow(0, 10_000, 0, 0, 0, f64::INFINITY)),
            with_ideal(&topo, flow(1, 10_000, 5_000, 0, 0, f64::INFINITY)),
        ];
        let recs = simulate_fluid(&topo, &flows);
        // Flow 0: 5000B alone (5us), then shares: remaining 5000B at 0.5B/ns
        // -> total 15us. Flow 1: 5000B shared (10us) then 5000B alone (5us)
        // -> fct 15us.
        assert_eq!(recs[0].fct, 15_000);
        assert_eq!(recs[1].fct, 15_000);
    }

    #[test]
    fn latency_factor_added() {
        let topo = FluidTopology::new(vec![8e9]);
        let mut f = flow(0, 1000, 0, 0, 0, f64::INFINITY);
        f.latency = 12_345;
        f.ideal_fct = fluid_ideal_fct(&topo, &f);
        let recs = simulate_fluid(&topo, &[f]);
        assert_eq!(recs[0].fct, 1000 + 12_345);
    }

    #[test]
    fn all_flows_complete_large_batch() {
        let topo = FluidTopology::new(vec![10e9, 40e9, 10e9]);
        let mut flows = Vec::new();
        for i in 0..5000u32 {
            let first = (i % 3) as u16;
            let last = first.max(((i * 7) % 3) as u16);
            let (first, last) = (first.min(last), first.max(last));
            flows.push(with_ideal(
                &topo,
                flow(
                    i,
                    500 + (i as u64 * 97) % 50_000,
                    (i as u64) * 300,
                    first,
                    last,
                    10e9,
                ),
            ));
        }
        let recs = simulate_fluid(&topo, &flows);
        assert_eq!(recs.len(), 5000);
        for r in &recs {
            assert!(r.slowdown() >= 1.0 - 1e-6, "slowdown {} < 1", r.slowdown());
        }
    }

    #[test]
    fn zero_size_flow_treated_as_one_byte() {
        let topo = FluidTopology::new(vec![8e9]);
        let f = with_ideal(&topo, flow(0, 0, 0, 0, 0, f64::INFINITY));
        let recs = simulate_fluid(&topo, &[f]);
        assert_eq!(recs.len(), 1);
        assert!(recs[0].fct >= 1);
    }

    #[test]
    fn nan_rate_cap_is_typed_error_not_hang() {
        let topo = FluidTopology::new(vec![10e9]);
        let mut f = with_ideal(&topo, flow(0, 10_000, 0, 0, 0, f64::INFINITY));
        f.rate_cap_bps = f64::NAN;
        let err = try_simulate_fluid(&topo, &[f], &FluidBudget::UNLIMITED)
            .expect_err("NaN cap must be rejected");
        assert!(matches!(err, FluidError::InvalidInput { flow: 0, .. }));
    }

    #[test]
    fn event_budget_trips_on_large_workload() {
        let topo = FluidTopology::new(vec![10e9]);
        let flows: Vec<FluidFlow> = (0..100)
            .map(|i| with_ideal(&topo, flow(i, 10_000, i as u64, 0, 0, f64::INFINITY)))
            .collect();
        let err = try_simulate_fluid(&topo, &flows, &FluidBudget::events(3))
            .expect_err("3 events cannot finish 100 flows");
        assert_eq!(err, FluidError::EventBudgetExceeded { limit: 3 });
    }

    #[test]
    fn try_matches_panicking_entry_point() {
        let topo = FluidTopology::new(vec![10e9, 40e9, 10e9]);
        let flows: Vec<FluidFlow> = (0..200)
            .map(|i| {
                with_ideal(
                    &topo,
                    flow(
                        i,
                        500 + (i as u64 * 131) % 30_000,
                        (i as u64) * 450,
                        (i % 3) as u16,
                        2,
                        10e9,
                    ),
                )
            })
            .collect();
        let a = simulate_fluid(&topo, &flows);
        let b = try_simulate_fluid(&topo, &flows, &FluidBudget::default()).unwrap();
        assert_eq!(a, b, "budgeted run must be bit-identical when fault-free");
    }

    #[test]
    fn stats_entry_point_matches_and_accounts_events() {
        let topo = FluidTopology::new(vec![10e9]);
        let flows: Vec<FluidFlow> = (0..50)
            .map(|i| with_ideal(&topo, flow(i, 10_000, i as u64 * 100, 0, 0, f64::INFINITY)))
            .collect();
        let plain = try_simulate_fluid(&topo, &flows, &FluidBudget::default()).unwrap();
        let (recs, stats) =
            try_simulate_fluid_stats(&topo, &flows, &FluidBudget::default()).unwrap();
        assert_eq!(plain, recs, "stats variant must not change results");
        assert!(
            stats.events >= flows.len() as u64,
            "at least one event per flow"
        );
        assert_eq!(stats.wall_checks, 0, "no wall limit set");
    }

    #[test]
    fn probe_samples_are_deterministic_and_do_not_change_records() {
        use crate::probe::{FluidProbe, FluidProbeSink};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Sink {
            samples: Mutex<Vec<(u64, u16, u64, u64)>>, // (vts, link, util_bits, active)
        }
        impl FluidProbeSink for Sink {
            fn on_link(&self, vts_ns: u64, link: u16, utilization: f64) {
                self.samples
                    .lock()
                    .unwrap()
                    .push((vts_ns, link, utilization.to_bits(), u64::MAX));
            }
            fn on_active_flows(&self, vts_ns: u64, active: u64) {
                self.samples.lock().unwrap().push((vts_ns, 0, 0, active));
            }
        }

        let topo = FluidTopology::new(vec![10e9, 10e9]);
        let flows: Vec<FluidFlow> = (0..50)
            .map(|i| {
                with_ideal(
                    &topo,
                    flow(i, 20_000, i as u64 * 700, (i % 2) as u16, 1, f64::INFINITY),
                )
            })
            .collect();

        let run = || {
            let sink = Sink::default();
            let probe = FluidProbe::new(5_000, &sink);
            let (recs, _) =
                try_simulate_fluid_traced(&topo, &flows, &FluidBudget::default(), Some(&probe))
                    .unwrap();
            (recs, sink.samples.into_inner().unwrap())
        };
        let (recs_a, samples_a) = run();
        let (recs_b, samples_b) = run();
        assert_eq!(samples_a, samples_b, "probe samples must be deterministic");
        assert!(!samples_a.is_empty(), "stride must fire on this workload");
        assert!(
            samples_a.iter().all(|s| s.0 % 5_000 == 0),
            "samples land on stride boundaries"
        );
        let plain = try_simulate_fluid(&topo, &flows, &FluidBudget::default()).unwrap();
        assert_eq!(recs_a, plain, "probe must not perturb results");
        assert_eq!(recs_a, recs_b);
    }

    #[test]
    fn identical_arrivals_deterministic() {
        let topo = FluidTopology::new(vec![10e9]);
        let flows: Vec<FluidFlow> = (0..100)
            .map(|i| with_ideal(&topo, flow(i, 10_000, 0, 0, 0, f64::INFINITY)))
            .collect();
        let r1 = simulate_fluid(&topo, &flows);
        let r2 = simulate_fluid(&topo, &flows);
        assert_eq!(r1, r2);
    }
}
