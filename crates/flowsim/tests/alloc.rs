//! Steady-state allocation tests for the fluid engines: after warmup runs, a
//! repeated simulation through the `_into` entry points with a warm workspace
//! must perform zero heap allocations — and produce records identical to the
//! allocating entry points.
//!
//! This file holds exactly one #[test] so no concurrent test thread can
//! allocate while the counter is armed.

use m3_flowsim::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn seg_flows(topo: &FluidTopology) -> Vec<FluidFlow> {
    (0..400u32)
        .map(|i| {
            let first = (i % 3) as u16;
            let last = first.max(((i * 7) % 3) as u16);
            let mut f = FluidFlow {
                id: i,
                size: 500 + (i as u64 * 97) % 40_000,
                arrival: i as u64 * 350,
                first_link: first.min(last),
                last_link: last,
                rate_cap_bps: if i % 2 == 0 { 10e9 } else { f64::INFINITY },
                latency: 40,
                ideal_fct: 0,
            };
            f.ideal_fct = fluid_ideal_fct(topo, &f);
            f
        })
        .collect()
}

#[test]
fn warm_workspace_runs_allocate_nothing() {
    let topo = FluidTopology::new(vec![10e9, 40e9, 10e9]);
    let flows = seg_flows(&topo);
    let budget = FluidBudget::UNLIMITED;

    // --- segment engine ---
    let expect = try_simulate_fluid(&topo, &flows, &budget).unwrap();
    let mut ws = FluidWorkspace::new();
    let mut records = Vec::new();
    // Two warmups: heap recycling is LIFO, so capacities converge to a
    // fixed point covering every group by the second pass.
    for _ in 0..2 {
        try_simulate_fluid_traced_into(&topo, &flows, &budget, None, &mut ws, &mut records)
            .unwrap();
    }
    ARMED.store(true, Ordering::SeqCst);
    try_simulate_fluid_traced_into(&topo, &flows, &budget, None, &mut ws, &mut records).unwrap();
    ARMED.store(false, Ordering::SeqCst);
    let count = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(count, 0, "warm segment-engine run made {count} allocations");
    assert_eq!(records, expect, "workspace run changed results");

    // --- general engine ---
    let gen_flows: Vec<GeneralFluidFlow> = flows
        .iter()
        .map(|f| GeneralFluidFlow {
            id: f.id,
            size: f.size,
            arrival: f.arrival,
            links: (f.first_link as u32..=f.last_link as u32).collect(),
            rate_cap_bps: f.rate_cap_bps,
            latency: f.latency,
            ideal_fct: f.ideal_fct,
        })
        .collect();
    let expect_gen = try_simulate_fluid_general(&topo.link_bps, &gen_flows, &budget).unwrap();
    let mut gws = GeneralFluidWorkspace::new();
    let mut gen_records = Vec::new();
    for _ in 0..2 {
        try_simulate_fluid_general_into(
            &topo.link_bps,
            &gen_flows,
            &budget,
            &mut gws,
            &mut gen_records,
        )
        .unwrap();
    }
    ARMED.store(true, Ordering::SeqCst);
    ALLOCS.store(0, Ordering::SeqCst);
    try_simulate_fluid_general_into(
        &topo.link_bps,
        &gen_flows,
        &budget,
        &mut gws,
        &mut gen_records,
    )
    .unwrap();
    ARMED.store(false, Ordering::SeqCst);
    let count = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(count, 0, "warm general-engine run made {count} allocations");
    assert_eq!(gen_records, expect_gen, "workspace run changed results");
}
