//! Property tests for the fluid engines: max-min invariants that must hold
//! for *any* workload, checked against randomly generated flow sets.

use m3_flowsim::prelude::*;
use proptest::prelude::*;

fn arb_flows(n_links: u16, max_n: usize) -> impl Strategy<Value = Vec<FluidFlow>> {
    prop::collection::vec(
        (
            1u64..200_000,
            0u64..3_000_000,
            0..n_links,
            0..n_links,
            1u8..4,
        ),
        1..max_n,
    )
    .prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (size, arrival, a, b, cap_class))| {
                let (first, last) = (a.min(b), a.max(b));
                let cap = match cap_class {
                    1 => 10e9,
                    2 => 40e9,
                    _ => f64::INFINITY,
                };
                let mut f = FluidFlow {
                    id: i as u32,
                    size,
                    arrival,
                    first_link: first,
                    last_link: last,
                    rate_cap_bps: cap,
                    latency: 500,
                    ideal_fct: 0,
                };
                f.ideal_fct = fluid_ideal_fct(&topo4(), &f);
                f
            })
            .collect()
    })
}

fn topo4() -> FluidTopology {
    FluidTopology::new(vec![10e9, 40e9, 10e9, 40e9])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Completeness: every flow finishes exactly once, in id order.
    #[test]
    fn every_flow_completes_once(flows in arb_flows(4, 80)) {
        let recs = simulate_fluid(&topo4(), &flows);
        prop_assert_eq!(recs.len(), flows.len());
        for (r, f) in recs.iter().zip(&flows) {
            prop_assert_eq!(r.id, f.id);
            prop_assert_eq!(r.size, f.size);
            prop_assert!(r.fct >= 1);
        }
    }

    /// No flow beats its unloaded FCT (max-min can only slow flows down).
    #[test]
    fn no_flow_beats_ideal(flows in arb_flows(4, 60)) {
        let recs = simulate_fluid(&topo4(), &flows);
        for r in &recs {
            prop_assert!(
                r.slowdown() >= 1.0 - 1e-6,
                "flow {} slowdown {}", r.id, r.slowdown()
            );
        }
    }

    /// Monotonicity in load on a single link (processor sharing): adding a
    /// competing flow never finishes any original flow earlier. (On
    /// multi-link topologies max-min FCTs are famously *not* monotone —
    /// throttling one flow can free a different bottleneck — so the
    /// property is only asserted for the single-link case.)
    #[test]
    fn adding_traffic_never_speeds_up_single_link(flows in arb_flows(1, 40)) {
        let topo = FluidTopology::new(vec![10e9]);
        let flows: Vec<FluidFlow> = flows.into_iter().map(|mut f| {
            f.first_link = 0;
            f.last_link = 0;
            f.ideal_fct = fluid_ideal_fct(&topo, &f);
            f
        }).collect();
        let base = simulate_fluid(&topo, &flows);
        let mut more = flows.clone();
        let mut extra = FluidFlow {
            id: flows.len() as u32,
            size: 1_000_000,
            arrival: 0,
            first_link: 0,
            last_link: 0,
            rate_cap_bps: f64::INFINITY,
            latency: 0,
            ideal_fct: 1,
        };
        extra.ideal_fct = fluid_ideal_fct(&topo, &extra);
        more.push(extra);
        let loaded = simulate_fluid(&topo, &more);
        for (b, l) in base.iter().zip(loaded.iter()) {
            // 2 ns absolute + 0.1% relative fluid slack.
            let floor = b.fct as f64 * (1.0 - 1e-3) - 2.0;
            prop_assert!(
                l.fct as f64 >= floor,
                "flow {} sped up: {} -> {}", b.id, b.fct, l.fct
            );
        }
    }

    /// Fast engine == reference engine (different algorithms, same model).
    #[test]
    fn differential_fast_vs_reference(flows in arb_flows(4, 50)) {
        let topo = topo4();
        let fast = simulate_fluid(&topo, &flows);
        let slow = simulate_fluid_reference(&topo, &flows);
        for (f, s) in fast.iter().zip(&slow) {
            let tol = 2.0 + 1e-5 * s.fct as f64;
            prop_assert!(
                (f.fct as f64 - s.fct as f64).abs() <= tol,
                "flow {}: {} vs {}", f.id, f.fct, s.fct
            );
        }
    }

    /// Scale invariance: doubling all capacities halves the bandwidth term.
    #[test]
    fn capacity_scaling(flows in arb_flows(2, 30)) {
        let slow_topo = FluidTopology::new(vec![10e9, 10e9]);
        let fast_topo = FluidTopology::new(vec![20e9, 20e9]);
        // Remove caps and latency so times scale exactly.
        let mk = |topo: &FluidTopology| -> Vec<FluidFlow> {
            flows.iter().map(|f| {
                let mut g = *f;
                g.last_link = g.last_link.min(1);
                g.first_link = g.first_link.min(g.last_link);
                g.rate_cap_bps = f64::INFINITY;
                g.latency = 0;
                g.arrival = 0; // simultaneous, so event pattern is identical
                g.ideal_fct = fluid_ideal_fct(topo, &g);
                g
            }).collect()
        };
        let r_slow = simulate_fluid(&slow_topo, &mk(&slow_topo));
        let r_fast = simulate_fluid(&fast_topo, &mk(&fast_topo));
        for (s, f) in r_slow.iter().zip(&r_fast) {
            let ratio = s.fct as f64 / f.fct.max(1) as f64;
            prop_assert!((1.9..2.1).contains(&ratio) || s.fct < 10,
                "flow {}: ratio {}", s.id, ratio);
        }
    }
}
