//! The supervised estimation service.
//!
//! A bounded job queue in front of a pool of worker threads, each running
//! requests through [`M3Estimator`] against a shared scenario cache. The
//! contract: **every accepted job reaches exactly one terminal state**
//! ([`JobOutcome`]), even across worker panics, transient stage faults, and
//! whole-process crashes (via the write-ahead [`Journal`]).
//!
//! Robustness mechanics, in the order a job meets them:
//!
//! 1. **Admission control** — `submit` rejects when the queue is full
//!    (load shedding; the caller is told immediately, nothing is journaled)
//!    and journals an `Accepted` record (fsync'd) before returning the id.
//! 2. **Deadlines** — a job whose deadline expired before its first
//!    attempt is `Shed`; expiry between retries is `Failed` with
//!    [`M3Error::DeadlineExceeded`]. Remaining time is layered onto the
//!    flowSim stage budget of each attempt.
//! 3. **Circuit breakers** — consecutive flowSim- or forward-stage
//!    failures trip a per-stage breaker; while open, jobs route down the
//!    flowSim-only degraded path (`Degraded { via_breaker: true }`)
//!    instead of queuing up behind a failing stage.
//! 4. **Retries** — transient faults back off with deterministic full
//!    jitter ([`RetryPolicy`]); persistent faults fail fast.
//! 5. **Supervision** — a worker that panics is reaped, its in-flight job
//!    is re-enqueued (front of queue, attempt count preserved), and a
//!    replacement worker is spawned.

use crate::backoff::RetryPolicy;
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::journal::{JobOutcome, Journal, JournalCorruption, JournalRecord, Replay};
use crate::request::EstimateRequest;
use m3_core::prelude::{
    flowsim_estimate_sliced, CacheStats, EstimateOptions, InjectedFault, M3Error, M3Estimator,
    NetworkEstimate, SharedScenarioCache, Stage, StageBudget,
};
use m3_flowsim::prelude::FluidBudget;
use m3_telemetry::trace::{TraceCtx, TraceRecorder};
use m3_telemetry::{Counter, Gauge, Histogram, HistogramEdges, MetricsRegistry, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. 0 is allowed: jobs are accepted and journaled but
    /// never processed (useful for staging work and crash-recovery tests).
    pub workers: usize,
    /// Queue slots; submissions beyond this are shed.
    pub queue_capacity: usize,
    pub retry: RetryPolicy,
    pub breaker: BreakerConfig,
    /// Shared scenario-cache capacity (entries).
    pub cache_capacity: usize,
    /// When set, the supervisor writes a JSON [`MetricsSnapshot`] of the
    /// service registry here every
    /// [`metrics_dump_every`](ServiceConfig::metrics_dump_every) and once
    /// more at shutdown.
    pub metrics_out: Option<PathBuf>,
    /// Interval between periodic metrics dumps (only used with
    /// [`metrics_out`](ServiceConfig::metrics_out)).
    pub metrics_dump_every: Duration,
    /// Causal-tracing flight recorder. Defaults to the noop recorder
    /// (tracing off; one branch of overhead per trace point). When
    /// enabled, every processed job runs under trace id
    /// [`trace_id_for`]`(job.id)`, which is also written to the journal's
    /// `Accepted` record for post-crash correlation.
    pub trace: TraceRecorder,
    /// Virtual-time stride (ns) for simulator counter probes in traced
    /// jobs; 0 means the telemetry default.
    pub trace_stride_ns: u64,
    /// How stale the supervisor's liveness tick may grow before
    /// [`ServiceStats::healthy`] reports the service unhealthy. The
    /// supervisor ticks every few milliseconds, so the default (2 s) only
    /// trips on a genuinely wedged supervisor thread.
    pub liveness_timeout: Duration,
    /// Synthetic per-attempt service latency, slept by the worker before
    /// each pipeline attempt. `ZERO` (the default) adds nothing. Models
    /// the blocking I/O / RPC component of a remote estimation shard so
    /// cluster fan-out benchmarks measure coordinator concurrency honestly
    /// on any core count (shards overlap sleeps even on one core).
    pub simulated_io: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            cache_capacity: 256,
            metrics_out: None,
            metrics_dump_every: Duration::from_secs(1),
            trace: TraceRecorder::noop(),
            trace_stride_ns: 0,
            liveness_timeout: Duration::from_secs(2),
            simulated_io: Duration::ZERO,
        }
    }
}

/// The trace id the service stamps on job `id`. Job ids start at 0 but
/// trace id 0 is reserved ("no trace"), so the mapping is offset by one.
pub fn trace_id_for(job_id: u64) -> u64 {
    job_id + 1
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// Queue full: the job was shed at admission. Nothing was journaled.
    QueueFull { capacity: usize },
    /// The service is shutting down.
    ShuttingDown,
    /// The write-ahead journal append failed; the job was NOT accepted.
    Journal(io::Error),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} slots): job shed")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::Journal(e) => write!(f, "journal append failed: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Point-in-time health/stats snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceStats {
    pub accepted: u64,
    pub completed: u64,
    pub degraded: u64,
    pub failed: u64,
    pub shed: u64,
    /// Rejected at submit time (not accepted, not journaled).
    pub shed_at_submit: u64,
    pub queue_depth: usize,
    pub in_flight: usize,
    /// Retry attempts performed (not counting first tries).
    pub retries: u64,
    pub worker_panics: u64,
    pub workers_respawned: u64,
    pub flowsim_breaker: BreakerState,
    pub forward_breaker: BreakerState,
    pub breaker_trips: u64,
    pub cache: CacheStats,
    /// Worker threads the service was configured with.
    #[serde(default)]
    pub workers: usize,
    /// Milliseconds since the supervisor's last liveness tick. A wedged
    /// supervisor (stalled thread, stuck reap loop) shows up here even
    /// while the queue looks merely idle.
    #[serde(default)]
    pub supervisor_stale_ms: u64,
    /// The configured ceiling on
    /// [`supervisor_stale_ms`](ServiceStats::supervisor_stale_ms)
    /// (`ServiceConfig::liveness_timeout`), echoed so `healthy()` is
    /// self-contained on a deserialized snapshot.
    #[serde(default)]
    pub liveness_timeout_ms: u64,
    /// Mid-file journal corruption quarantined during the resume that
    /// started this service, if any.
    #[serde(default)]
    pub journal_corruption: Option<JournalCorruption>,
}

impl ServiceStats {
    /// All accepted jobs that have settled.
    pub fn settled(&self) -> u64 {
        self.completed + self.degraded + self.failed + self.shed
    }

    /// Healthy = accepting work, not routing around a tripped stage, and
    /// actually able to make progress: the supervisor has ticked within
    /// its liveness timeout, and pending work implies someone to do it. A
    /// stalled service with jobs queued and zero workers is *unhealthy*,
    /// not idle — the old breaker-only check could not tell those apart.
    pub fn healthy(&self) -> bool {
        let breakers_closed = self.flowsim_breaker == BreakerState::Closed
            && self.forward_breaker == BreakerState::Closed;
        let supervisor_live = self.supervisor_stale_ms <= self.liveness_timeout_ms;
        let pending = self.accepted > self.settled();
        let can_progress = !pending || self.workers > 0;
        breakers_closed && supervisor_live && can_progress
    }
}

/// A queued job. `attempt` survives re-enqueue after a worker panic so
/// "fail first N attempts" fault plans converge instead of looping.
#[derive(Debug, Clone)]
struct Job {
    id: u64,
    request: EstimateRequest,
    accepted_at: Instant,
    attempt: u32,
}

/// Handles to every service-level metric, registered under the `serve.`
/// prefix on the service's live [`MetricsRegistry`]. The same registry is
/// handed to the pipeline per job, so one snapshot covers the full stack
/// (`serve.*`, `pipeline.*`, `flowsim.*`).
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// `serve.accepted` — jobs admitted (journaled and queued).
    pub accepted: Counter,
    /// `serve.completed` — jobs that settled clean.
    pub completed: Counter,
    /// `serve.degraded` — jobs that settled via a degraded path.
    pub degraded: Counter,
    /// `serve.failed` — jobs that settled with a terminal error.
    pub failed: Counter,
    /// `serve.shed` — accepted jobs shed (deadline expired in queue).
    pub shed: Counter,
    /// `serve.shed_at_submit` — submissions rejected at admission.
    pub shed_at_submit: Counter,
    /// `serve.retries` — retry attempts (not counting first tries).
    pub retries: Counter,
    /// `serve.worker_panics` — workers reaped after a panic.
    pub worker_panics: Counter,
    /// `serve.workers_respawned` — replacement workers spawned.
    pub workers_respawned: Counter,
    /// `serve.breaker_trips` — closed-to-open breaker transitions.
    pub breaker_trips: Counter,
    /// `serve.queue_depth` — current queue length (wall: scheduling-
    /// dependent, excluded from the deterministic view).
    pub queue_depth: Gauge,
    /// `serve.in_flight` — jobs currently on a worker (wall).
    pub in_flight: Gauge,
    /// `serve.request_latency_seconds` — accept-to-settle latency (wall).
    pub request_latency: Histogram,
}

impl ServeMetrics {
    /// Register every service metric on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            accepted: registry.counter("serve.accepted"),
            completed: registry.counter("serve.completed"),
            degraded: registry.counter("serve.degraded"),
            failed: registry.counter("serve.failed"),
            shed: registry.counter("serve.shed"),
            shed_at_submit: registry.counter("serve.shed_at_submit"),
            retries: registry.counter("serve.retries"),
            worker_panics: registry.counter("serve.worker_panics"),
            workers_respawned: registry.counter("serve.workers_respawned"),
            breaker_trips: registry.counter("serve.breaker_trips"),
            queue_depth: registry.wall_gauge("serve.queue_depth"),
            in_flight: registry.wall_gauge("serve.in_flight"),
            request_latency: registry.wall_histogram(
                "serve.request_latency_seconds",
                HistogramEdges::latency_seconds(),
            ),
        }
    }
}

struct State {
    queue: VecDeque<Job>,
    /// Jobs currently being processed, keyed by worker token — the
    /// supervisor recovers these when a worker dies.
    in_flight: HashMap<usize, Job>,
    outcomes: BTreeMap<u64, JobOutcome>,
    /// Accepted jobs ever (preload + submissions); mirrored by the
    /// `serve.accepted` counter but kept under the lock because
    /// `wait_idle` compares it against `outcomes.len()`.
    accepted: u64,
    flowsim_breaker: CircuitBreaker,
    forward_breaker: CircuitBreaker,
    journal: Option<Journal>,
    next_id: u64,
    shutdown: bool,
    /// Mid-file corruption found when this service resumed its journal.
    journal_corruption: Option<JournalCorruption>,
}

struct Inner {
    state: Mutex<State>,
    /// Signals workers (new job / shutdown) and waiters (job settled).
    cond: Condvar,
    config: ServiceConfig,
    estimator: Arc<M3Estimator>,
    cache: SharedScenarioCache,
    /// Live, always-enabled registry: service counters plus the absorbed
    /// per-job pipeline metrics.
    registry: MetricsRegistry,
    metrics: ServeMetrics,
    /// When the service started; liveness timestamps are ms since this.
    started: Instant,
    /// Supervisor liveness: tick counter and timestamp (ms since
    /// `started`) of the last supervisor loop iteration. Heartbeat-based
    /// failure detectors (the cluster coordinator) watch the counter; the
    /// stats snapshot derives staleness from the timestamp.
    beat: AtomicU64,
    last_beat_ms: AtomicU64,
    /// Test/fault hook: freeze the supervisor loop (heartbeat stops, dead
    /// workers go unreaped) without stopping the workers — the wedged-node
    /// failure mode ShardStall injects.
    stall_supervisor: AtomicBool,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicking worker can poison the state mutex; the state is a
        // queue of plain data and remains valid, so recover the guard.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn note_beat(&self) {
        self.beat.fetch_add(1, Ordering::Relaxed);
        self.last_beat_ms
            .store(elapsed_ms(self.started), Ordering::Relaxed);
    }

    fn supervisor_stale_ms(&self) -> u64 {
        elapsed_ms(self.started).saturating_sub(self.last_beat_ms.load(Ordering::Relaxed))
    }
}

/// Handle to a running service. Dropping it without
/// [`shutdown`](Service::shutdown) abandons the workers (they exit once
/// the queue drains and the shutdown flag is set by `Drop`).
pub struct Service {
    inner: Arc<Inner>,
    supervisor: Option<thread::JoinHandle<()>>,
}

impl Service {
    /// Start a service with no journal (jobs do not survive a crash).
    pub fn start(estimator: M3Estimator, config: ServiceConfig) -> Service {
        Service::build(estimator, config, None, Vec::new())
    }

    /// Start a service journaling to `path` (created fresh, truncating any
    /// existing file).
    pub fn start_journaled(
        estimator: M3Estimator,
        config: ServiceConfig,
        path: impl AsRef<Path>,
    ) -> io::Result<Service> {
        let journal = Journal::create(path)?;
        Ok(Service::build(estimator, config, Some(journal), Vec::new()))
    }

    /// Resume from an existing journal: jobs that were accepted but never
    /// settled are re-enqueued (in acceptance order) and processed to
    /// terminal states; already-settled outcomes are available from
    /// [`outcome`](Self::outcome) immediately.
    pub fn resume(
        estimator: M3Estimator,
        config: ServiceConfig,
        path: impl AsRef<Path>,
    ) -> io::Result<(Service, Replay)> {
        let (journal, replay) = Journal::open(path)?;
        let pending: Vec<Job> = replay
            .pending()
            .into_iter()
            .map(|(id, request)| Job {
                id,
                request,
                accepted_at: Instant::now(),
                attempt: 0,
            })
            .collect();
        let svc = Service::build(estimator, config, Some(journal), pending);
        {
            let mut st = svc.inner.lock();
            st.next_id = replay.next_id();
            st.journal_corruption = replay.corruption.clone();
            // `build` already counted the re-enqueued pending jobs.
            let settled = (replay.accepted.len() - replay.pending().len()) as u64;
            st.accepted = replay.accepted.len() as u64;
            svc.inner.metrics.accepted.add(settled);
            for (id, outcome) in &replay.terminal {
                bump_terminal_counter(&svc.inner.metrics, outcome);
                st.outcomes.insert(*id, outcome.clone());
            }
        }
        svc.inner.cond.notify_all();
        Ok((svc, replay))
    }

    fn build(
        estimator: M3Estimator,
        config: ServiceConfig,
        journal: Option<Journal>,
        preloaded: Vec<Job>,
    ) -> Service {
        let accepted_preload = preloaded.len() as u64;
        let registry = MetricsRegistry::new();
        let metrics = ServeMetrics::register(&registry);
        metrics.accepted.add(accepted_preload);
        metrics.queue_depth.set(accepted_preload as f64);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: preloaded.into(),
                in_flight: HashMap::new(),
                outcomes: BTreeMap::new(),
                accepted: accepted_preload,
                flowsim_breaker: CircuitBreaker::new(config.breaker),
                forward_breaker: CircuitBreaker::new(config.breaker),
                journal,
                next_id: 0,
                shutdown: false,
                journal_corruption: None,
            }),
            cond: Condvar::new(),
            estimator: Arc::new(estimator),
            cache: SharedScenarioCache::new(config.cache_capacity),
            config,
            registry,
            metrics,
            started: Instant::now(),
            beat: AtomicU64::new(0),
            last_beat_ms: AtomicU64::new(0),
            stall_supervisor: AtomicBool::new(false),
        });
        let supervisor = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("m3-serve-supervisor".into())
                .spawn(move || supervise(inner))
                .unwrap_or_else(|e| panic!("failed to spawn m3-serve supervisor: {e}"))
        };
        Service {
            inner,
            supervisor: Some(supervisor),
        }
    }

    /// Submit a request. On success the job is journaled and queued and
    /// its id is returned; on `QueueFull` it was shed.
    pub fn submit(&self, request: EstimateRequest) -> Result<u64, SubmitError> {
        let mut st = self.inner.lock();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.config.queue_capacity {
            self.inner.metrics.shed_at_submit.inc();
            return Err(SubmitError::QueueFull {
                capacity: self.inner.config.queue_capacity,
            });
        }
        let id = st.next_id;
        if let Some(j) = st.journal.as_mut() {
            j.append(&JournalRecord::Accepted {
                id,
                request: Box::new(request.clone()),
                trace: self
                    .inner
                    .config
                    .trace
                    .is_enabled()
                    .then(|| trace_id_for(id)),
            })
            .map_err(SubmitError::Journal)?;
        }
        st.next_id += 1;
        st.accepted += 1;
        self.inner.metrics.accepted.inc();
        st.queue.push_back(Job {
            id,
            request,
            accepted_at: Instant::now(),
            attempt: 0,
        });
        self.inner.metrics.queue_depth.set(st.queue.len() as f64);
        drop(st);
        self.inner.cond.notify_all();
        Ok(id)
    }

    /// The terminal outcome of job `id`, if it has settled.
    pub fn outcome(&self, id: u64) -> Option<JobOutcome> {
        self.inner.lock().outcomes.get(&id).cloned()
    }

    /// Block until every accepted job has settled, or `timeout` elapses.
    /// Returns true if idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.lock();
        loop {
            let idle = st.queue.is_empty()
                && st.in_flight.is_empty()
                && st.outcomes.len() as u64 >= st.accepted;
            if idle {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .inner
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Health/stats snapshot, built from the live metrics registry plus
    /// the lock-protected queue/breaker state.
    pub fn stats(&self) -> ServiceStats {
        let st = self.inner.lock();
        let m = &self.inner.metrics;
        ServiceStats {
            accepted: st.accepted,
            completed: m.completed.get(),
            degraded: m.degraded.get(),
            failed: m.failed.get(),
            shed: m.shed.get(),
            shed_at_submit: m.shed_at_submit.get(),
            queue_depth: st.queue.len(),
            in_flight: st.in_flight.len(),
            retries: m.retries.get(),
            worker_panics: m.worker_panics.get(),
            workers_respawned: m.workers_respawned.get(),
            flowsim_breaker: st.flowsim_breaker.state(),
            forward_breaker: st.forward_breaker.state(),
            breaker_trips: st.flowsim_breaker.trips() + st.forward_breaker.trips(),
            cache: self.inner.cache.stats(),
            workers: self.inner.config.workers,
            supervisor_stale_ms: self.inner.supervisor_stale_ms(),
            liveness_timeout_ms: self.inner.config.liveness_timeout.as_millis() as u64,
            journal_corruption: st.journal_corruption.clone(),
        }
    }

    /// Supervisor liveness tick counter. Monotonically increasing while
    /// the supervisor loop is running; a failure detector that sees the
    /// same value across several polls should suspect the node. The
    /// counter starts at 0 and first advances within a few milliseconds of
    /// startup.
    pub fn heartbeat(&self) -> u64 {
        self.inner.beat.load(Ordering::Relaxed)
    }

    /// Milliseconds since the supervisor's last liveness tick.
    pub fn supervisor_stale_ms(&self) -> u64 {
        self.inner.supervisor_stale_ms()
    }

    /// Freeze (or thaw) the supervisor loop: while stalled it stops
    /// ticking its heartbeat and reaping workers, exactly like a wedged
    /// supervisor thread. Workers keep processing. Used by liveness tests
    /// and by the cluster's `ShardStall` fault injection; hidden because
    /// it exists to *create* the failure mode, not to manage a service.
    #[doc(hidden)]
    pub fn stall_supervisor(&self, stalled: bool) {
        self.inner
            .stall_supervisor
            .store(stalled, Ordering::Relaxed);
    }

    /// The service's live telemetry registry. The same registry backs
    /// [`stats`](Self::stats) and accumulates the pipeline metrics of every
    /// processed job (`pipeline.*` / `flowsim.*` prefixes).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Point-in-time snapshot of every service and pipeline metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.registry.snapshot()
    }

    /// Drain the queue, stop all workers, and join them. Jobs still queued
    /// are processed first; new submissions are rejected.
    pub fn shutdown(mut self) {
        self.begin_shutdown(false);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }

    /// Abandon ungracefully: stop pulling new jobs NOW, leaving queued jobs
    /// unsettled in the journal — they stay replayable via
    /// [`resume`](Self::resume). In-flight jobs still settle (a thread
    /// cannot be killed mid-estimate from safe code); this approximates a
    /// crash at job granularity, while torn-record crashes are covered by
    /// the journal's own recovery tests.
    pub fn abort(mut self) {
        self.begin_shutdown(true);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }

    fn begin_shutdown(&self, drop_queue: bool) {
        let mut st = self.inner.lock();
        st.shutdown = true;
        if drop_queue {
            st.queue.clear();
        }
        drop(st);
        self.inner.cond.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_shutdown(false);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

fn bump_terminal_counter(m: &ServeMetrics, outcome: &JobOutcome) {
    match outcome {
        JobOutcome::Completed { .. } => m.completed.inc(),
        JobOutcome::Degraded { .. } => m.degraded.inc(),
        JobOutcome::Failed { .. } => m.failed.inc(),
        JobOutcome::Shed { .. } => m.shed.inc(),
    }
}

/// Write a JSON snapshot of the service registry to `config.metrics_out`,
/// if configured. Best-effort: a failed write is not worth failing jobs
/// over.
fn dump_metrics(inner: &Inner) {
    if let Some(path) = &inner.config.metrics_out {
        let _ = std::fs::write(path, inner.registry.snapshot().to_json());
    }
}

/// Supervisor loop: keep `config.workers` workers alive until shutdown,
/// reaping panicked ones and recovering their jobs.
fn supervise(inner: Arc<Inner>) {
    let n = inner.config.workers;
    let mut handles: Vec<(usize, thread::JoinHandle<()>)> = (0..n)
        .map(|token| (token, spawn_worker(&inner, token)))
        .collect();
    let mut last_dump = Instant::now();

    loop {
        // Injected wedge: stop ticking (and reaping) but keep the thread,
        // exactly like a supervisor stuck on a slow syscall. Shutdown
        // thaws it so teardown never hangs on an injected fault.
        if inner.stall_supervisor.load(Ordering::Relaxed) {
            let wedged = !inner.lock().shutdown;
            if wedged {
                thread::sleep(Duration::from_millis(2));
                continue;
            }
        }
        inner.note_beat();
        if inner.config.metrics_out.is_some()
            && last_dump.elapsed() >= inner.config.metrics_dump_every
        {
            dump_metrics(&inner);
            last_dump = Instant::now();
        }
        // Reap finished workers.
        let mut i = 0;
        while i < handles.len() {
            if handles[i].1.is_finished() {
                let (token, h) = handles.swap_remove(i);
                let panicked = h.join().is_err();
                let mut st = inner.lock();
                if panicked {
                    inner.metrics.worker_panics.inc();
                    // Recover the job the dead worker was holding: back to
                    // the front of the queue with its attempt count bumped,
                    // so attempt-bounded fault plans make progress.
                    if let Some(mut job) = st.in_flight.remove(&token) {
                        job.attempt += 1;
                        st.queue.push_front(job);
                    }
                    inner.metrics.queue_depth.set(st.queue.len() as f64);
                    inner.metrics.in_flight.set(st.in_flight.len() as f64);
                }
                let respawn = !st.shutdown || !st.queue.is_empty();
                if panicked && respawn {
                    inner.metrics.workers_respawned.inc();
                }
                drop(st);
                if panicked {
                    inner.cond.notify_all();
                    if respawn {
                        handles.push((token, spawn_worker(&inner, token)));
                    }
                }
            } else {
                i += 1;
            }
        }

        let st = inner.lock();
        let done = st.shutdown && st.queue.is_empty() && st.in_flight.is_empty();
        drop(st);
        if done && handles.iter().all(|(_, h)| h.is_finished()) {
            for (_, h) in handles {
                let _ = h.join();
            }
            dump_metrics(&inner);
            return;
        }
        if n == 0 {
            // No workers to supervise: just wait for shutdown.
            let st = inner.lock();
            if st.shutdown {
                drop(st);
                dump_metrics(&inner);
                return;
            }
            drop(st);
        }
        thread::sleep(Duration::from_millis(2));
    }
}

fn spawn_worker(inner: &Arc<Inner>, token: usize) -> thread::JoinHandle<()> {
    let inner = Arc::clone(inner);
    thread::Builder::new()
        .name(format!("m3-serve-worker-{token}"))
        .spawn(move || worker_loop(inner, token))
        .unwrap_or_else(|e| {
            // Thread spawn failing at startup is unrecoverable for the
            // pool; surface it loudly rather than running with fewer
            // workers than configured.
            panic!("failed to spawn m3-serve worker {token}: {e}")
        })
}

fn worker_loop(inner: Arc<Inner>, token: usize) {
    loop {
        let job = {
            let mut st = inner.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.in_flight.insert(token, job.clone());
                    inner.metrics.queue_depth.set(st.queue.len() as f64);
                    inner.metrics.in_flight.set(st.in_flight.len() as f64);
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = inner.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let outcome = process(&inner, &job);
        settle(&inner, token, &job, outcome);
    }
}

/// Record a terminal outcome: journal it, count it, observe its latency,
/// publish it, release the in-flight slot, and wake any `wait_idle`
/// callers.
fn settle(inner: &Arc<Inner>, token: usize, job: &Job, outcome: JobOutcome) {
    let mut st = inner.lock();
    if let Some(j) = st.journal.as_mut() {
        // A failed terminal append leaves the job pending in the journal;
        // on restart it will be replayed (idempotent by determinism), so
        // losing the record is safe, just wasteful.
        let _ = j.append(&JournalRecord::Terminal {
            id: job.id,
            outcome: Box::new(outcome.clone()),
        });
    }
    bump_terminal_counter(&inner.metrics, &outcome);
    inner
        .metrics
        .request_latency
        .observe(job.accepted_at.elapsed().as_secs_f64());
    st.outcomes.insert(job.id, outcome);
    st.in_flight.remove(&token);
    inner.metrics.in_flight.set(st.in_flight.len() as f64);
    drop(st);
    inner.cond.notify_all();
}

/// Milliseconds since `start`, saturating.
fn elapsed_ms(start: Instant) -> u64 {
    start.elapsed().as_millis().min(u64::MAX as u128) as u64
}

/// Run one job to a terminal outcome (never panics except via an injected
/// `WorkerPanic`, which is the supervisor's test hook).
fn process(inner: &Arc<Inner>, job: &Job) -> JobOutcome {
    let req = &job.request;

    // Per-job trace context: every attempt of this job (and its journal
    // entry) shares one trace id. The serve-level span records job-scope
    // events (shed / breaker routing / retries); the pipeline opens its
    // own stage tree from the same context.
    let mut tctx = TraceCtx::new(inner.config.trace.clone(), trace_id_for(job.id));
    tctx.probe_stride_ns = inner.config.trace_stride_ns;
    let jspan = tctx.root("serve.job");

    // Deadline gate at pickup: a job that waited out its whole deadline in
    // the queue is shed without burning worker time on it.
    if let Some(deadline) = req.deadline_ms {
        let waited = elapsed_ms(job.accepted_at);
        if waited >= deadline {
            jspan.instant(
                "shed",
                format!("deadline {deadline} ms expired in queue ({waited} ms)"),
            );
            return JobOutcome::Shed {
                reason: format!("deadline {deadline} ms expired in queue ({waited} ms)"),
            };
        }
    }

    // Materialize once per job, not per attempt: spec errors are
    // persistent by construction, so they fail fast.
    let (topo, flows, config) = match req.scenario.materialize(req.seed) {
        Ok(parts) => parts,
        Err(e) => {
            return JobOutcome::Failed {
                error: e,
                attempts: job.attempt + 1,
            }
        }
    };

    let retry = inner.config.retry;
    let mut attempt = job.attempt;
    loop {
        // Synthetic remote-shard latency (see `ServiceConfig::simulated_io`).
        if !inner.config.simulated_io.is_zero() {
            thread::sleep(inner.config.simulated_io);
        }
        // Injected worker crash: panic *outside* the pipeline's own panic
        // isolation so the supervisor path is genuinely exercised. The
        // attempt stamp lets `with_first_attempts` plans converge.
        if let Some(plan) = &req.fault_plan {
            if plan
                .at_attempt(attempt)
                .hits(InjectedFault::WorkerPanic, job.id as usize)
            {
                panic!("injected worker panic (job {}, attempt {attempt})", job.id);
            }
        }

        // Deadline gate between attempts.
        if let Some(deadline) = req.deadline_ms {
            let elapsed = elapsed_ms(job.accepted_at);
            if elapsed >= deadline {
                return JobOutcome::Failed {
                    error: M3Error::DeadlineExceeded {
                        deadline_ms: deadline,
                        elapsed_ms: elapsed,
                    },
                    attempts: attempt + 1,
                };
            }
        }

        // Consult the breakers. A denied acquire routes this job down the
        // degraded path; `try_acquire` on an open breaker also counts one
        // cooldown observation.
        let (fs_ok, fw_ok) = {
            let mut st = inner.lock();
            let fs = st.flowsim_breaker.try_acquire();
            let fw = st.forward_breaker.try_acquire();
            if fs != fw {
                // Only one stage granted: release that probe/claim so the
                // other stage's outage doesn't wedge it.
                if fs {
                    st.flowsim_breaker.cancel_probe();
                }
                if fw {
                    st.forward_breaker.cancel_probe();
                }
            }
            (fs, fw)
        };
        if !(fs_ok && fw_ok) {
            jspan.instant(
                "degraded",
                format!(
                    "breaker open (flowsim granted: {fs_ok}, forward granted: {fw_ok}): \
                     serving flowSim-only path"
                ),
            );
            let estimate = flowsim_estimate_sliced(
                &topo,
                &flows,
                &config,
                req.paths,
                req.seed,
                req.path_slice,
            );
            return JobOutcome::Degraded {
                estimate,
                attempts: attempt + 1,
                via_breaker: true,
            };
        }

        // Layer the remaining deadline onto the flowSim stage budget so a
        // slow attempt cannot blow through the request deadline.
        let mut budget = StageBudget::default();
        if let Some(deadline) = req.deadline_ms {
            let left = deadline.saturating_sub(elapsed_ms(job.accepted_at)).max(1);
            budget.flowsim = FluidBudget::default().with_wall(Duration::from_millis(left));
        }
        let options = EstimateOptions {
            policy: req.policy.unwrap_or_default(),
            budget,
            fault_plan: req.fault_plan.as_ref().map(|p| p.at_attempt(attempt)),
            path_slice: req.path_slice,
            metrics: Some(inner.registry.clone()),
            trace: tctx.clone(),
        };

        let result = inner.estimator.try_estimate_with_shared_cache(
            &topo,
            &flows,
            &config,
            req.paths,
            req.seed,
            &inner.cache,
            &options,
        );

        match result {
            Ok(estimate) => {
                {
                    let mut st = inner.lock();
                    st.flowsim_breaker.on_success();
                    st.forward_breaker.on_success();
                }
                return finish_success(estimate, attempt + 1);
            }
            Err(e) => {
                record_failure_for_breakers(inner, &e);
                let next = attempt + 1;
                if e.is_transient() && next < retry.max_attempts.max(1) {
                    inner.metrics.retries.inc();
                    jspan.instant(
                        "retry",
                        format!("attempt {next} after transient fault: {e}"),
                    );
                    thread::sleep(Duration::from_millis(retry.delay_ms(job.id, attempt)));
                    attempt = next;
                    continue;
                }
                return JobOutcome::Failed {
                    error: e,
                    attempts: next,
                };
            }
        }
    }
}

/// A successful estimate is `Completed` when clean, `Degraded` when the
/// per-sample policy absorbed faults along the way.
fn finish_success(estimate: NetworkEstimate, attempts: u32) -> JobOutcome {
    if estimate.degradation.is_clean() {
        JobOutcome::Completed { estimate, attempts }
    } else {
        JobOutcome::Degraded {
            estimate,
            attempts,
            via_breaker: false,
        }
    }
}

/// Attribute a pipeline failure to the breaker guarding the faulting
/// stage; the other stage's claim is released without prejudice.
fn record_failure_for_breakers(inner: &Arc<Inner>, e: &M3Error) {
    let mut st = inner.lock();
    let trips_before = st.flowsim_breaker.trips() + st.forward_breaker.trips();
    match e {
        M3Error::StageFault { stage, .. } => match stage {
            Stage::FlowSim => {
                st.flowsim_breaker.on_failure();
                st.forward_breaker.cancel_probe();
            }
            Stage::Forward | Stage::Features => {
                // flowSim demonstrably worked if the forward stage failed.
                st.flowsim_breaker.on_success();
                st.forward_breaker.on_failure();
            }
            _ => {
                st.flowsim_breaker.cancel_probe();
                st.forward_breaker.cancel_probe();
            }
        },
        // Degradation-limit and no-usable-samples failures are dominated
        // by flowSim-stage sample loss in this pipeline.
        M3Error::DegradationLimitExceeded { .. } | M3Error::NoUsableSamples { .. } => {
            st.flowsim_breaker.on_failure();
            st.forward_breaker.cancel_probe();
        }
        _ => {
            st.flowsim_breaker.cancel_probe();
            st.forward_breaker.cancel_probe();
        }
    }
    let tripped = st.flowsim_breaker.trips() + st.forward_breaker.trips() - trips_before;
    inner.metrics.breaker_trips.add(tripped);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ConfigSpec, ScenarioSpec, TopoSpec, WorkloadSpec};
    use m3_core::prelude::SPEC_DIM;
    use m3_nn::prelude::{M3Net, ModelConfig};

    fn tiny_estimator() -> M3Estimator {
        let cfg = ModelConfig {
            embed: 16,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            mlp_hidden: 32,
            ..ModelConfig::repro_default(SPEC_DIM)
        };
        M3Estimator::new(M3Net::new(cfg, 3))
    }

    fn tiny_request(seed: u64) -> EstimateRequest {
        EstimateRequest::new(
            ScenarioSpec {
                topology: TopoSpec::FatTreeSmall { oversub: 2 },
                workload: WorkloadSpec {
                    n_flows: 50,
                    matrix: "B".into(),
                    sizes: "WebServer".into(),
                    sigma: 1.0,
                    max_load: 0.3,
                },
                config: ConfigSpec::default(),
            },
            2,
            seed,
        )
    }

    /// Satellite regression: a wedged supervisor (and a pending queue with
    /// nobody to drain it) must read as unhealthy, not idle. Before the
    /// liveness timestamp existed, `healthy()` only looked at the breakers
    /// and reported this exact state as healthy.
    #[test]
    fn wedged_supervisor_and_stalled_queue_report_unhealthy() {
        let config = ServiceConfig {
            workers: 0,
            liveness_timeout: Duration::from_millis(60),
            ..ServiceConfig::default()
        };
        let svc = Service::start(tiny_estimator(), config);

        // Wait for the first supervisor tick, then confirm baseline health.
        let t0 = Instant::now();
        while svc.heartbeat() == 0 && t0.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(2));
        }
        assert!(svc.heartbeat() > 0, "supervisor never ticked");
        assert!(svc.stats().healthy(), "fresh idle service must be healthy");

        // A queued job with zero workers is a stalled queue, not idleness.
        svc.submit(tiny_request(1)).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.workers, 0);
        assert!(
            !stats.healthy(),
            "pending work with no workers must be unhealthy"
        );

        // Wedge the supervisor: the heartbeat freezes and staleness grows
        // past the liveness timeout.
        svc.stall_supervisor(true);
        let frozen = svc.heartbeat();
        thread::sleep(Duration::from_millis(150));
        let stats = svc.stats();
        assert_eq!(svc.heartbeat(), frozen, "stalled supervisor still ticked");
        assert!(
            stats.supervisor_stale_ms > stats.liveness_timeout_ms,
            "staleness {} must exceed timeout {}",
            stats.supervisor_stale_ms,
            stats.liveness_timeout_ms
        );
        assert!(!stats.healthy());

        // Thawing restores liveness (the queue is still stalled, though).
        svc.stall_supervisor(false);
        let t1 = Instant::now();
        while svc.heartbeat() == frozen && t1.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(2));
        }
        assert!(svc.heartbeat() > frozen, "supervisor never thawed");
        svc.shutdown();
    }
}
