//! Capped exponential backoff with deterministic full jitter.
//!
//! Retry delays follow the classic "full jitter" scheme: attempt `a` draws
//! uniformly from `[0, min(cap, base * 2^a)]`. The draw is not random — it
//! is hashed from `(seed, job id, attempt)` with the same FNV-1a used by
//! checkpoint integrity checks, so a retry schedule is a pure function of
//! the job. That keeps soak runs reproducible and lets tests assert exact
//! delays, while still spreading concurrent retries apart in time the way
//! real jitter would.

use m3_nn::prelude::checksum64;
use serde::{Deserialize, Serialize};

/// Retry policy: how many attempts, and how their delays grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Delay cap growth base for attempt 0→1 (milliseconds).
    pub base_delay_ms: u64,
    /// Upper bound every per-attempt cap saturates at (milliseconds).
    pub max_delay_ms: u64,
    /// Seed folded into every jitter draw.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 500,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The deterministic cap for the delay after failed attempt `attempt`
    /// (0-based): `min(max_delay_ms, base_delay_ms * 2^attempt)`, with the
    /// doubling saturating instead of overflowing.
    pub fn cap_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_delay_ms
            .saturating_mul(factor)
            .min(self.max_delay_ms)
    }

    /// Full-jitter delay before retrying `job_id` after failed attempt
    /// `attempt`: uniform-ish in `[0, cap_ms(attempt)]`, hashed from
    /// `(seed, job_id, attempt)` so the schedule replays bit-identically.
    pub fn delay_ms(&self, job_id: u64, attempt: u32) -> u64 {
        let cap = self.cap_ms(attempt);
        if cap == 0 {
            return 0;
        }
        let mut key = [0u8; 20];
        key[..8].copy_from_slice(&self.seed.to_le_bytes());
        key[8..16].copy_from_slice(&job_id.to_le_bytes());
        key[16..].copy_from_slice(&attempt.to_le_bytes());
        checksum64(&key) % (cap + 1)
    }

    /// Worst-case total delay across a full retry run (every draw at its
    /// cap). Bounded for any attempt count because each term saturates at
    /// `max_delay_ms`.
    pub fn total_delay_bound_ms(&self) -> u64 {
        (0..self.max_attempts.saturating_sub(1))
            .fold(0u64, |acc, a| acc.saturating_add(self.cap_ms(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_double_then_saturate() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 10,
            max_delay_ms: 100,
            seed: 0,
        };
        assert_eq!(p.cap_ms(0), 10);
        assert_eq!(p.cap_ms(1), 20);
        assert_eq!(p.cap_ms(2), 40);
        assert_eq!(p.cap_ms(3), 80);
        assert_eq!(p.cap_ms(4), 100);
        assert_eq!(p.cap_ms(63), 100);
        assert_eq!(p.cap_ms(64), 100, "shift overflow must saturate");
    }

    #[test]
    fn delays_are_deterministic_and_within_cap() {
        let p = RetryPolicy::default();
        for job in 0..20u64 {
            for a in 0..6u32 {
                let d = p.delay_ms(job, a);
                assert_eq!(d, p.delay_ms(job, a));
                assert!(d <= p.cap_ms(a), "job {job} attempt {a}: {d}");
            }
        }
    }

    #[test]
    fn jitter_varies_across_jobs() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 1000,
            max_delay_ms: 10_000,
            seed: 7,
        };
        let delays: Vec<u64> = (0..16).map(|j| p.delay_ms(j, 2)).collect();
        let distinct: std::collections::HashSet<_> = delays.iter().collect();
        assert!(distinct.len() > 8, "jitter collapsed: {delays:?}");
    }

    #[test]
    fn total_bound_sums_caps() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 10,
            max_delay_ms: 100,
            seed: 0,
        };
        // 10 + 20 + 40 + 80 + 100
        assert_eq!(p.total_delay_bound_ms(), 250);
        let one = RetryPolicy {
            max_attempts: 1,
            ..p
        };
        assert_eq!(one.total_delay_bound_ms(), 0);
    }
}
