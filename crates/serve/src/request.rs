//! Serializable scenario and job specifications.
//!
//! A job is fully described by data — topology recipe, workload recipe,
//! config knobs, sampling parameters, policies — never by live objects, so
//! it can be journaled, replayed after a crash, and shipped between
//! processes. Materialization is deterministic: the same spec always yields
//! the same topology, flows, and config, which is what makes journal replay
//! bit-identical.

use m3_core::prelude::{DegradationPolicy, FaultPlan, M3Error, PathSlice, Stage};
use m3_netsim::prelude::{
    CcProtocol, FatTree, FatTreeSpec, FlowSpec, Routing, SimConfig, Topology,
};
use m3_workload::prelude::{generate, Scenario, SizeDistribution, TrafficMatrix};
use serde::{Deserialize, Serialize};

fn invalid(reason: impl Into<String>) -> M3Error {
    M3Error::InvalidSpec {
        stage: Stage::Validate,
        reason: reason.into(),
    }
}

/// Topology recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TopoSpec {
    FatTreeSmall { oversub: usize },
    FatTreeLarge,
}

/// Workload recipe (traffic matrix, size distribution, burstiness, load).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    pub n_flows: usize,
    pub matrix: String,
    pub sizes: String,
    pub sigma: f64,
    pub max_load: f64,
}

/// Network-configuration knobs layered over [`SimConfig::default`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpec {
    #[serde(default)]
    pub cc: Option<String>,
    #[serde(default)]
    pub init_window: Option<u64>,
    #[serde(default)]
    pub buffer_size: Option<u64>,
    #[serde(default)]
    pub pfc: Option<bool>,
}

impl ConfigSpec {
    /// Resolve to a [`SimConfig`]; unknown protocol names are typed
    /// [`M3Error::InvalidSpec`]s, not process aborts.
    pub fn to_sim_config(&self) -> Result<SimConfig, M3Error> {
        let mut c = SimConfig::default();
        if let Some(cc) = &self.cc {
            c.cc = match cc.as_str() {
                "dctcp" => CcProtocol::Dctcp,
                "timely" => CcProtocol::Timely,
                "dcqcn" => CcProtocol::Dcqcn,
                "hpcc" => CcProtocol::Hpcc,
                other => return Err(invalid(format!("unknown cc protocol {other:?}"))),
            };
        }
        if let Some(w) = self.init_window {
            c.init_window = w;
        }
        if let Some(b) = self.buffer_size {
            c.buffer_size = b;
        }
        if let Some(p) = self.pfc {
            c.pfc_enabled = p;
        }
        Ok(c)
    }
}

/// A complete estimation scenario: what network, what traffic, what config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    pub topology: TopoSpec,
    pub workload: WorkloadSpec,
    #[serde(default)]
    pub config: ConfigSpec,
}

impl ScenarioSpec {
    /// Deterministically materialize the scenario. All validation errors
    /// are typed [`M3Error::InvalidSpec`]s.
    pub fn materialize(&self, seed: u64) -> Result<(Topology, Vec<FlowSpec>, SimConfig), M3Error> {
        let ft = match self.topology {
            TopoSpec::FatTreeSmall { oversub } => FatTree::build(FatTreeSpec::small(oversub)),
            TopoSpec::FatTreeLarge => FatTree::build(FatTreeSpec::large()),
        };
        let routing = Routing::new(&ft.topo);
        let sizes = SizeDistribution::by_name(&self.workload.sizes).ok_or_else(|| {
            invalid(format!(
                "unknown size distribution {:?}",
                self.workload.sizes
            ))
        })?;
        // `generate` panics on an unknown matrix name; validate it here so
        // a bad spec surfaces as a typed error, not a worker panic.
        if TrafficMatrix::by_name(&self.workload.matrix, ft.spec.total_racks()).is_none() {
            return Err(invalid(format!(
                "unknown traffic matrix {:?}",
                self.workload.matrix
            )));
        }
        let w = generate(
            &ft,
            &routing,
            &Scenario {
                n_flows: self.workload.n_flows,
                matrix_name: self.workload.matrix.clone(),
                sizes,
                sigma: self.workload.sigma,
                max_load: self.workload.max_load,
                seed,
            },
        );
        let config = self.config.to_sim_config()?;
        Ok((ft.topo, w.flows, config))
    }
}

/// One estimation job as accepted by the service (and journaled verbatim).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateRequest {
    pub scenario: ScenarioSpec,
    /// Paths to sample (k in the paper's Fig. 4).
    pub paths: usize,
    pub seed: u64,
    /// Per-request degradation policy; `None` uses the pipeline default.
    #[serde(default)]
    pub policy: Option<DegradationPolicy>,
    /// Wall-clock deadline from acceptance. Expiry before the first attempt
    /// sheds the job; expiry between retries fails it. The remaining time
    /// is also layered onto the flowSim stage budget of each attempt.
    /// Deadlines are wall-clock and therefore restart on journal replay.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Deterministic fault injection (robustness tests and soak runs).
    #[serde(default)]
    pub fault_plan: Option<FaultPlan>,
    /// Process only this contiguous slice of the k sampled paths — the
    /// scatter unit a cluster coordinator uses to split one large scenario
    /// across shards. `None` (and absent in journals written before
    /// clustering existed) processes all k paths.
    #[serde(default)]
    pub path_slice: Option<PathSlice>,
}

impl EstimateRequest {
    /// A plain request for one scenario with default policies.
    pub fn new(scenario: ScenarioSpec, paths: usize, seed: u64) -> Self {
        EstimateRequest {
            scenario,
            paths,
            seed,
            policy: None,
            deadline_ms: None,
            fault_plan: None,
            path_slice: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            topology: TopoSpec::FatTreeSmall { oversub: 2 },
            workload: WorkloadSpec {
                n_flows: 500,
                matrix: "B".into(),
                sizes: "WebServer".into(),
                sigma: 1.0,
                max_load: 0.4,
            },
            config: ConfigSpec::default(),
        }
    }

    #[test]
    fn materialization_is_deterministic() {
        let s = spec();
        let (t1, f1, c1) = s.materialize(7).unwrap();
        let (t2, f2, c2) = s.materialize(7).unwrap();
        assert_eq!(t1.node_count(), t2.node_count());
        assert_eq!(f1, f2);
        // SimConfig has no PartialEq; JSON equality is what journal replay needs.
        assert_eq!(
            serde_json::to_string(&c1).unwrap(),
            serde_json::to_string(&c2).unwrap()
        );
        let (_, f3, _) = s.materialize(8).unwrap();
        assert_ne!(f1, f3, "seed must matter");
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let mut s = spec();
        s.workload.sizes = "NoSuchDist".into();
        assert!(matches!(s.materialize(1), Err(M3Error::InvalidSpec { .. })));
        let mut s = spec();
        s.workload.matrix = "Z".into();
        assert!(matches!(s.materialize(1), Err(M3Error::InvalidSpec { .. })));
        let mut s = spec();
        s.config.cc = Some("carrier-pigeon".into());
        assert!(matches!(s.materialize(1), Err(M3Error::InvalidSpec { .. })));
    }

    #[test]
    fn request_roundtrips_through_json() {
        let mut req = EstimateRequest::new(spec(), 8, 3);
        req.deadline_ms = Some(5000);
        req.policy = Some(DegradationPolicy::FailFast);
        let json = serde_json::to_string(&req).unwrap();
        let back: EstimateRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }
}
