//! Per-stage circuit breaker.
//!
//! Tracks consecutive failures of one pipeline stage across jobs. After
//! `failure_threshold` consecutive failures the breaker *opens*: workers
//! stop attempting the full ML pipeline and route jobs down the
//! flowSim-only degraded path until the breaker cools down. Cooldown is
//! counted in *observations* (degraded jobs routed past the open breaker),
//! not wall-clock time, so breaker behavior is deterministic under test
//! and replay. After cooldown the breaker goes *half-open* and admits a
//! single probe job: success closes it, failure re-opens it with a fresh
//! cooldown.

use serde::{Deserialize, Serialize};

/// Breaker position, reported on the service stats snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Tripped: route around the stage. `cooldown_left` observations remain
    /// before a probe is admitted.
    Open { cooldown_left: u32 },
    /// Cooldown elapsed; one probe job is (or is about to be) in flight.
    HalfOpen,
}

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// Observations the breaker stays open before admitting a probe.
    pub cooldown_observations: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_observations: 2,
        }
    }
}

/// The breaker itself. Not internally synchronized: the service keeps it
/// inside its state mutex.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// True while a half-open probe is in flight (only one at a time).
    probe_in_flight: bool,
    /// Lifetime trip count, for the stats snapshot.
    trips: u64,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_in_flight: false,
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Should the caller attempt the protected stage right now?
    ///
    /// * `Closed` — yes.
    /// * `HalfOpen` with no probe out — yes, and this call claims the
    ///   probe slot (the caller MUST report the outcome via
    ///   [`on_success`](Self::on_success)/[`on_failure`](Self::on_failure)
    ///   or release it with [`cancel_probe`](Self::cancel_probe)).
    /// * `Open` — no; this call counts one cooldown observation and moves
    ///   the breaker to `HalfOpen` once the cooldown reaches zero (the
    ///   *next* caller gets the probe).
    pub fn try_acquire(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
            BreakerState::Open { cooldown_left } => {
                let left = cooldown_left.saturating_sub(1);
                self.state = if left == 0 {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open {
                        cooldown_left: left,
                    }
                };
                false
            }
        }
    }

    /// Record a successful pass through the protected stage.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.probe_in_flight = false;
        self.state = BreakerState::Closed;
    }

    /// Record a failure of the protected stage.
    pub fn on_failure(&mut self) {
        self.probe_in_flight = false;
        match self.state {
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Release a claimed half-open probe without an outcome (e.g. the job
    /// failed before reaching the protected stage).
    pub fn cancel_probe(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probe_in_flight = false;
        }
    }

    fn trip(&mut self) {
        self.trips += 1;
        self.consecutive_failures = 0;
        self.state = BreakerState::Open {
            cooldown_left: self.config.cooldown_observations.max(1),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_observations: 2,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = breaker();
        b.on_failure();
        b.on_failure();
        b.on_success(); // resets the streak
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_counts_observations_then_probes() {
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure();
        }
        // Two observations of cooldown: both denied.
        assert!(!b.try_acquire());
        assert!(!b.try_acquire());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Exactly one probe is admitted.
        assert!(b.try_acquire());
        assert!(!b.try_acquire(), "second probe denied while one in flight");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire());
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure();
        }
        assert!(!b.try_acquire());
        assert!(!b.try_acquire());
        assert!(b.try_acquire()); // probe
        b.on_failure();
        assert_eq!(
            b.state(),
            BreakerState::Open { cooldown_left: 2 },
            "failed probe re-opens"
        );
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn cancelled_probe_frees_the_slot() {
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure();
        }
        b.try_acquire();
        b.try_acquire();
        assert!(b.try_acquire()); // probe claimed
        b.cancel_probe();
        assert!(b.try_acquire(), "slot reusable after cancel");
    }
}
