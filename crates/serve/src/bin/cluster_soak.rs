//! Soak driver for the sharded estimation cluster: run a seeded job mix
//! through an N-shard cluster under a seeded kill/restart schedule, then
//! assert the coordinator's core guarantees:
//!
//! 1. **Zero lost accepted jobs** — every submitted id reaches exactly
//!    one terminal state, shard deaths notwithstanding.
//! 2. **Lossless rerouting** — the faulted run's estimates are
//!    bit-identical to a fault-free run of the same jobs (placement
//!    never changes results, so failover cannot either).
//! 3. **Deterministic merged telemetry** — two fault-free runs with the
//!    same seed produce byte-identical merged deterministic metric
//!    views.
//!
//! Usage: `cluster_soak [N_JOBS] [SEED] [JOURNAL_DIR]`
//! Exit codes: 0 = invariants held, 1 = violation, 2 = usage/setup error.

use m3_core::prelude::*;
use m3_nn::prelude::{checksum64, M3Net, ModelConfig};
use m3_serve::prelude::*;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn small_net() -> M3Net {
    let cfg = ModelConfig {
        embed: 16,
        heads: 2,
        layers: 1,
        ff_hidden: 16,
        mlp_hidden: 32,
        ..ModelConfig::repro_default(SPEC_DIM)
    };
    M3Net::new(cfg, 3)
}

fn scenario(n_flows: usize) -> ScenarioSpec {
    ScenarioSpec {
        topology: TopoSpec::FatTreeSmall { oversub: 2 },
        workload: WorkloadSpec {
            n_flows,
            matrix: "B".into(),
            sizes: "WebServer".into(),
            sigma: 1.0,
            max_load: 0.4,
        },
        config: ConfigSpec::default(),
    }
}

const SHARDS: usize = 4;

/// The seeded job mix: mostly small requests, every sixth large enough to
/// scatter into path-slice children.
fn requests(n_jobs: u64, seed: u64) -> Vec<EstimateRequest> {
    (0..n_jobs)
        .map(|j| {
            let paths = if j % 6 == 5 { 6 } else { 2 };
            EstimateRequest::new(scenario(40 + (j as usize % 4) * 15), paths, seed ^ j)
        })
        .collect()
}

/// Find a kill schedule near `seed` that hits at least one shard (a soak
/// without a kill exercises nothing); deterministic in `seed`.
fn kill_plan(seed: u64) -> FaultPlan {
    for s in seed.. {
        let plan = FaultPlan::new(s)
            .with(InjectedFault::ShardCrash, 0.3)
            .with(InjectedFault::ShardStall, 0.15)
            .with(InjectedFault::ShardSlowStart, 0.25);
        let crashed = plan.slots_hit(InjectedFault::ShardCrash, SHARDS);
        let stalled = plan.slots_hit(InjectedFault::ShardStall, SHARDS);
        // At least one fault, at least one survivor to reroute onto.
        if !(crashed.is_empty() && stalled.is_empty()) && crashed.len() < SHARDS {
            return plan;
        }
    }
    unreachable!("the search space is dense enough to always hit");
}

fn cluster_config(seed: u64, journal_dir: &Path, plan: Option<FaultPlan>) -> ClusterConfig {
    ClusterConfig {
        shards: SHARDS,
        shard: ServiceConfig {
            workers: 1,
            queue_capacity: 256,
            retry: RetryPolicy {
                max_attempts: 4,
                base_delay_ms: 1,
                max_delay_ms: 8,
                seed,
            },
            cache_capacity: 64,
            simulated_io: Duration::from_millis(10),
            ..ServiceConfig::default()
        },
        journal_dir: Some(journal_dir.to_path_buf()),
        heartbeat_every: Duration::from_millis(3),
        // Loose enough that a busy-but-alive shard on a loaded one-core
        // machine rarely false-positives; a genuinely frozen heartbeat
        // (crash or stall) is still declared dead within ~60 ms. Spurious
        // deaths remain *correct* (failover is lossless), just churny.
        suspect_misses: if plan.is_some() { 5 } else { 500 },
        dead_misses: if plan.is_some() { 20 } else { 1000 },
        reroute_retry: RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 2,
            max_delay_ms: 20,
            seed,
        },
        scatter_threshold: 4,
        scatter_chunk: 2,
        fault_after_dispatches: if plan.is_some() { 5 } else { 0 },
        fault_plan: plan,
        restart_dead_shards: true,
        ..ClusterConfig::default()
    }
}

struct RunResult {
    /// FNV digest over every caller-visible estimate's raw bits, in
    /// submission order.
    estimate_digest: u64,
    /// Merged deterministic metric view, serialized.
    metrics_json: String,
    stats: ClusterStats,
    violations: u32,
}

fn run_once(
    label: &str,
    jobs: &[EstimateRequest],
    config: ClusterConfig,
) -> Result<RunResult, String> {
    let cluster = Cluster::start(small_net(), config)
        .map_err(|e| format!("{label}: cannot start cluster: {e}"))?;
    let ids: Vec<u64> = jobs
        .iter()
        .map(|r| cluster.submit(r.clone()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{label}: submit failed: {e}"))?;
    if !cluster.wait_idle(Duration::from_secs(300)) {
        return Err(format!("{label}: cluster did not settle within 300 s"));
    }
    let mut violations = 0;
    let mut digest_buf: Vec<u8> = Vec::new();
    for &id in &ids {
        match cluster.outcome(id) {
            None => {
                eprintln!("{label}: job {id} accepted but has no terminal outcome");
                violations += 1;
            }
            Some(outcome) => match outcome.estimate() {
                Some(est) => {
                    for bucket in &est.bucket_samples {
                        for v in bucket {
                            digest_buf.extend_from_slice(&v.to_bits().to_le_bytes());
                        }
                    }
                    for c in est.bucket_counts {
                        digest_buf.extend_from_slice(&(c as u64).to_le_bytes());
                    }
                }
                None => {
                    eprintln!("{label}: job {id} did not complete: {outcome:?}");
                    violations += 1;
                }
            },
        }
    }
    let stats = cluster.stats();
    if stats.settled != stats.submitted {
        eprintln!(
            "{label}: settled {} != submitted {}",
            stats.settled, stats.submitted
        );
        violations += 1;
    }
    let metrics_json = cluster.merged_metrics().deterministic_view().to_json();
    cluster.shutdown();
    Ok(RunResult {
        estimate_digest: checksum64(&digest_buf),
        metrics_json,
        stats,
        violations,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let usage = || eprintln!("usage: cluster_soak [N_JOBS] [SEED] [JOURNAL_DIR]");
    let n_jobs: u64 = match args.get(1).map(|s| s.parse()).unwrap_or(Ok(24)) {
        Ok(n) => n,
        Err(_) => {
            usage();
            return ExitCode::from(2);
        }
    };
    let seed: u64 = match args.get(2).map(|s| s.parse()).unwrap_or(Ok(1)) {
        Ok(s) => s,
        Err(_) => {
            usage();
            return ExitCode::from(2);
        }
    };
    let journal_dir = args.get(3).map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("m3-cluster-soak-{}", std::process::id()))
    });
    if let Err(e) = std::fs::create_dir_all(&journal_dir) {
        eprintln!("cluster_soak: cannot create journal dir: {e}");
        return ExitCode::from(2);
    }

    let jobs = requests(n_jobs, seed);
    let plan = kill_plan(seed);
    let crashed = plan.slots_hit(InjectedFault::ShardCrash, SHARDS);
    let stalled = plan.slots_hit(InjectedFault::ShardStall, SHARDS);
    println!(
        "cluster_soak: {n_jobs} jobs, seed {seed}, {SHARDS} shards; kill schedule: crash {crashed:?}, stall {stalled:?}"
    );

    // Faulted run: shards die and restart mid-stream.
    let faulted = match run_once(
        "faulted",
        &jobs,
        cluster_config(seed, &journal_dir, Some(plan)),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cluster_soak: {e}");
            std::fs::remove_dir_all(&journal_dir).ok();
            return ExitCode::from(2);
        }
    };
    let mut violations = faulted.violations;
    if faulted.stats.shard_deaths == 0 {
        eprintln!("cluster_soak: kill schedule injected but no shard death detected");
        violations += 1;
    }

    // Two fault-free runs: reference results + merged-metrics determinism.
    let clean_a = match run_once("clean-a", &jobs, cluster_config(seed, &journal_dir, None)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cluster_soak: {e}");
            std::fs::remove_dir_all(&journal_dir).ok();
            return ExitCode::from(2);
        }
    };
    let clean_b = match run_once("clean-b", &jobs, cluster_config(seed, &journal_dir, None)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cluster_soak: {e}");
            std::fs::remove_dir_all(&journal_dir).ok();
            return ExitCode::from(2);
        }
    };
    violations += clean_a.violations + clean_b.violations;

    if faulted.estimate_digest != clean_a.estimate_digest {
        eprintln!(
            "cluster_soak: LOSSY REROUTING — faulted digest {:#018x} != clean {:#018x}",
            faulted.estimate_digest, clean_a.estimate_digest
        );
        violations += 1;
    }
    if clean_a.estimate_digest != clean_b.estimate_digest {
        eprintln!("cluster_soak: fault-free runs disagree (nondeterministic estimates)");
        violations += 1;
    }
    if clean_a.metrics_json != clean_b.metrics_json {
        eprintln!("cluster_soak: merged deterministic metric views differ between clean runs");
        violations += 1;
    }

    std::fs::remove_dir_all(&journal_dir).ok();
    if violations > 0 {
        eprintln!("cluster_soak: FAILED with {violations} violation(s)");
        ExitCode::from(1)
    } else {
        println!(
            "cluster_soak: OK — {} jobs x3 runs; faulted run: {} deaths, {} recoveries, {} rerouted, {} dup terminals dropped; estimates bit-identical across all runs",
            n_jobs,
            faulted.stats.shard_deaths,
            faulted.stats.shard_recoveries,
            faulted.stats.rerouted,
            faulted.stats.duplicate_terminals_dropped
        );
        ExitCode::SUCCESS
    }
}
