//! Soak driver for the estimation service: submit a randomized (but
//! seeded, hence reproducible) mix of clean, faulty, deadline-bound, and
//! overload traffic, then assert the service's core guarantee — **no
//! accepted job is lost**: every accepted id reaches exactly one terminal
//! state, and the books balance.
//!
//! Usage: `soak [N_JOBS] [SEED] [JOURNAL_PATH]`
//! Exit codes: 0 = invariants held, 1 = violation, 2 = usage/setup error.

use m3_core::prelude::*;
use m3_nn::prelude::{M3Net, ModelConfig};
use m3_serve::prelude::*;
use std::process::ExitCode;
use std::time::Duration;

fn small_estimator() -> M3Estimator {
    let cfg = ModelConfig {
        embed: 16,
        heads: 2,
        layers: 1,
        ff_hidden: 16,
        mlp_hidden: 32,
        ..ModelConfig::repro_default(SPEC_DIM)
    };
    M3Estimator::new(M3Net::new(cfg, 3))
}

fn scenario(n_flows: usize) -> ScenarioSpec {
    ScenarioSpec {
        topology: TopoSpec::FatTreeSmall { oversub: 2 },
        workload: WorkloadSpec {
            n_flows,
            matrix: "B".into(),
            sizes: "WebServer".into(),
            sigma: 1.0,
            max_load: 0.4,
        },
        config: ConfigSpec::default(),
    }
}

/// Deterministically pick this job's fault profile from the soak seed.
fn fault_plan_for(seed: u64, job: u64) -> Option<FaultPlan> {
    match (seed.wrapping_add(job * 7)) % 6 {
        // Clean jobs.
        0 | 1 => None,
        // Transient: budget faults on the first attempt only — must
        // complete undegraded after a retry.
        2 => Some(FaultPlan::new(seed ^ job).with_first_attempts(
            InjectedFault::FlowsimBudget,
            1.0,
            1,
        )),
        // Transient: one injected worker panic, then clean — exercises
        // supervisor recovery and respawn.
        3 => {
            Some(FaultPlan::new(seed ^ job).with_first_attempts(InjectedFault::WorkerPanic, 1.0, 1))
        }
        // Sporadic forward poisoning, absorbed by the degrade policy.
        4 => Some(FaultPlan::new(seed ^ job).with(InjectedFault::ForwardPoison, 0.3)),
        // Persistent flowSim NaN on a slice of slots: degrades or fails
        // depending on the per-request policy.
        _ => Some(FaultPlan::new(seed ^ job).with(InjectedFault::FlowsimNan, 0.2)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let n_jobs: u64 = match args.get(1).map(|s| s.parse()).unwrap_or(Ok(24)) {
        Ok(n) => n,
        Err(_) => {
            eprintln!("usage: soak [N_JOBS] [SEED] [JOURNAL_PATH]");
            return ExitCode::from(2);
        }
    };
    let seed: u64 = match args.get(2).map(|s| s.parse()).unwrap_or(Ok(1)) {
        Ok(s) => s,
        Err(_) => {
            eprintln!("usage: soak [N_JOBS] [SEED] [JOURNAL_PATH]");
            return ExitCode::from(2);
        }
    };
    let journal = args.get(3).cloned().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("m3-soak-{}.journal", std::process::id()))
            .display()
            .to_string()
    });

    let config = ServiceConfig {
        workers: 3,
        // Deliberately smaller than the job count so overload sheds.
        queue_capacity: (n_jobs as usize / 2).max(4),
        retry: RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 1,
            max_delay_ms: 8,
            seed,
        },
        breaker: BreakerConfig::default(),
        cache_capacity: 64,
        ..ServiceConfig::default()
    };
    let svc = match Service::start_journaled(small_estimator(), config, &journal) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("soak: cannot create journal {journal}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut accepted_ids = Vec::new();
    let mut shed_at_submit = 0u64;
    for job in 0..n_jobs {
        let mut req = EstimateRequest::new(scenario(300 + (job as usize % 3) * 200), 6, seed ^ job);
        req.fault_plan = fault_plan_for(seed, job);
        req.policy = Some(if job % 4 == 0 {
            DegradationPolicy::FailFast
        } else {
            DegradationPolicy::Degrade {
                max_degraded_frac: 0.5,
            }
        });
        if job % 8 == 5 {
            req.deadline_ms = Some(30_000);
        }
        match svc.submit(req) {
            Ok(id) => accepted_ids.push(id),
            Err(SubmitError::QueueFull { .. }) => shed_at_submit += 1,
            Err(e) => {
                eprintln!("soak: unexpected submit error: {e}");
                return ExitCode::from(1);
            }
        }
        // Brief stalls let the queue drain a little so not everything is
        // shed — overload is exercised, not total.
        if job % 5 == 4 {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    if !svc.wait_idle(Duration::from_secs(300)) {
        eprintln!("soak: service did not settle all jobs within 300 s");
        return ExitCode::from(1);
    }
    let stats = svc.stats();

    // Invariant 1: no accepted job lost — every id has a terminal outcome.
    let mut violations = 0;
    for &id in &accepted_ids {
        if svc.outcome(id).is_none() {
            eprintln!("soak: job {id} accepted but has no terminal outcome");
            violations += 1;
        }
    }
    // Invariant 2: the books balance.
    if stats.settled() != stats.accepted {
        eprintln!(
            "soak: settled {} != accepted {}",
            stats.settled(),
            stats.accepted
        );
        violations += 1;
    }
    if stats.accepted != accepted_ids.len() as u64 || stats.shed_at_submit != shed_at_submit {
        eprintln!("soak: stats disagree with the submitting client");
        violations += 1;
    }

    svc.shutdown();
    match serde_json::to_string_pretty(&stats) {
        Ok(s) => println!("{s}"),
        Err(e) => eprintln!("soak: stats serialization failed: {e}"),
    }
    std::fs::remove_file(&journal).ok();
    if violations > 0 {
        eprintln!("soak: FAILED with {violations} violation(s)");
        ExitCode::from(1)
    } else {
        println!(
            "soak: OK — {} accepted, {} shed at submit, {} retries, {} worker panics, all jobs terminal",
            stats.accepted, stats.shed_at_submit, stats.retries, stats.worker_panics
        );
        ExitCode::SUCCESS
    }
}
