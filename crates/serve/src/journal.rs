//! Write-ahead job journal: the service's crash-recovery log.
//!
//! Every accepted request is appended (and fsync'd) *before* the submit
//! call returns, and every terminal outcome is appended when the job
//! settles. A service that is killed and restarted replays the journal:
//! jobs with an `Accepted` record but no `Terminal` record are re-enqueued
//! and — because requests are pure data and the pipeline is deterministic —
//! complete with bit-identical results to an uninterrupted run.
//!
//! The on-disk format reuses the checkpoint-hardening idiom from
//! `m3-nn`: a magic/version header, then length-prefixed records each
//! carrying an FNV-1a checksum (`[len u32 LE][checksum64 u64 LE][json]`).
//! Recovery validates the header, verifies every record checksum, and
//! truncates a torn tail (a record cut short by the crash) rather than
//! refusing to start.

use crate::request::EstimateRequest;
use m3_core::prelude::{M3Error, NetworkEstimate};
use m3_nn::prelude::{encode_record, scan_records_lenient};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: "m3 serve journal".
const MAGIC: &[u8; 8] = b"M3SRVJRN";
const VERSION: u32 = 1;
const HEADER_LEN: usize = MAGIC.len() + 4;

/// Terminal state of a job. Every accepted job reaches exactly one of
/// these; the variant (with its payload) is what the journal persists.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "state", rename_all = "snake_case")]
pub enum JobOutcome {
    /// Full pipeline succeeded (possibly after retries).
    Completed {
        estimate: NetworkEstimate,
        attempts: u32,
    },
    /// Served by the flowSim-only path because the circuit breaker was
    /// open, or completed with degraded samples under the policy.
    Degraded {
        estimate: NetworkEstimate,
        attempts: u32,
        /// True when the breaker (not the per-sample policy) forced the
        /// degraded path.
        via_breaker: bool,
    },
    /// Retries exhausted or a persistent fault failed fast.
    Failed { error: M3Error, attempts: u32 },
    /// Never attempted: rejected by admission control after acceptance
    /// (deadline already expired at pickup).
    Shed { reason: String },
}

impl JobOutcome {
    /// The estimate carried by a successful (completed or degraded)
    /// outcome.
    pub fn estimate(&self) -> Option<&NetworkEstimate> {
        match self {
            JobOutcome::Completed { estimate, .. } | JobOutcome::Degraded { estimate, .. } => {
                Some(estimate)
            }
            JobOutcome::Failed { .. } | JobOutcome::Shed { .. } => None,
        }
    }
}

/// One journal record.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "rec", rename_all = "snake_case")]
pub enum JournalRecord {
    Accepted {
        id: u64,
        request: Box<EstimateRequest>,
        /// Trace id stamped on the request for causal-tracing correlation:
        /// a trace exported by the service carries the same id, so a
        /// post-crash investigation can match journal entries to trace
        /// spans. Absent (`None`) in journals written before tracing
        /// existed; `#[serde(default)]` keeps those readable.
        #[serde(default)]
        trace: Option<u64>,
    },
    Terminal {
        id: u64,
        outcome: Box<JobOutcome>,
    },
}

/// Typed account of mid-file journal corruption found during recovery.
/// Corrupt records are quarantined to a `.corrupt` sidecar and replay
/// continues past them; this summary is surfaced on
/// [`ServiceStats`](crate::service::ServiceStats) so operators see the
/// damage instead of a silently shortened replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalCorruption {
    /// Checksum-mismatched records skipped (and quarantined) mid-file.
    pub records_quarantined: usize,
    /// Total frame bytes (headers included) moved to the sidecar.
    pub bytes_quarantined: usize,
    /// Byte offset of the first corrupt frame within the journal file.
    pub first_offset: usize,
    /// Path of the sidecar file the corrupt frames were written to, when
    /// the write succeeded (quarantine is best-effort: recovery proceeds
    /// even if the sidecar cannot be written). Stored as a display string
    /// so the summary serializes into stats snapshots.
    pub sidecar: Option<String>,
}

/// The journal as reconstructed at startup.
#[derive(Debug, Default)]
pub struct Replay {
    /// Accepted requests by job id.
    pub accepted: BTreeMap<u64, EstimateRequest>,
    /// Trace id recorded with each acceptance (absent for pre-tracing
    /// journals), for correlating journal entries with exported traces.
    pub trace_ids: BTreeMap<u64, u64>,
    /// Terminal outcomes by job id.
    pub terminal: BTreeMap<u64, JobOutcome>,
    /// True if a torn tail was truncated during recovery.
    pub truncated_tail: bool,
    /// Mid-file corruption quarantined during recovery (`None` on a clean
    /// replay). Unlike a torn tail, the corrupt bytes stay in the journal
    /// file — every reopen re-reports them — but the sidecar plus this
    /// summary make the damage visible and auditable.
    pub corruption: Option<JournalCorruption>,
}

impl Replay {
    /// Jobs that were accepted but never settled — the re-enqueue set.
    pub fn pending(&self) -> Vec<(u64, EstimateRequest)> {
        self.accepted
            .iter()
            .filter(|(id, _)| !self.terminal.contains_key(id))
            .map(|(id, req)| (*id, req.clone()))
            .collect()
    }

    /// First job id not yet used (ids are allocated monotonically).
    pub fn next_id(&self) -> u64 {
        self.accepted
            .keys()
            .next_back()
            .map(|id| id + 1)
            .unwrap_or(0)
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Write quarantined frames to the `.corrupt` sidecar as JSON lines
/// (`{"offset":N,"reason":"...","frame_hex":"..."}`), preserving the raw
/// bytes for postmortem analysis. The sidecar is rewritten on every open
/// that finds corruption — the journal file itself is not modified
/// mid-file, so reopening re-derives the same set.
fn write_quarantine(path: &Path, frames: &[m3_nn::integrity::CorruptFrame]) -> io::Result<()> {
    // Owned fields: the vendored serde derive does not support borrowed
    // (lifetime-parameterized) structs.
    #[derive(Serialize)]
    struct QuarantineLine {
        offset: usize,
        reason: String,
        frame_hex: String,
    }
    let mut out = String::new();
    for f in frames {
        let mut hex = String::with_capacity(f.bytes.len() * 2);
        for b in &f.bytes {
            use std::fmt::Write as _;
            let _ = write!(hex, "{b:02x}");
        }
        let line = QuarantineLine {
            offset: f.offset,
            reason: f.reason.clone(),
            frame_hex: hex,
        };
        out.push_str(&serde_json::to_string(&line).map_err(|e| bad_data(e.to_string()))?);
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Append-only, checksummed, fsync'd job journal.
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Create a fresh journal at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.sync_data()?;
        Ok(Journal { file, path })
    }

    /// Open an existing journal, replaying its records. A torn final
    /// record (from a crash mid-append) is truncated away. A
    /// checksum-mismatched record *mid-file* (bit rot, hostile edit) no
    /// longer aborts the rest of the replay: the bad frame is quarantined
    /// to a `<path>.corrupt` sidecar, scanning resumes at the next frame
    /// boundary, and the damage is summarized in [`Replay::corruption`].
    /// Returns the journal positioned for appending plus the replay state.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Replay)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        if buf.len() < HEADER_LEN || &buf[..MAGIC.len()] != MAGIC {
            return Err(bad_data(format!("{}: not an m3 journal", path.display())));
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&buf[MAGIC.len()..HEADER_LEN]);
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(bad_data(format!(
                "{}: journal version {version} (supported: {VERSION})",
                path.display()
            )));
        }

        let scan = scan_records_lenient(&buf, HEADER_LEN);
        let corruption = if scan.corrupt.is_empty() {
            None
        } else {
            let sidecar_path = {
                let mut s = path.as_os_str().to_os_string();
                s.push(".corrupt");
                PathBuf::from(s)
            };
            let sidecar = write_quarantine(&sidecar_path, &scan.corrupt)
                .ok()
                .map(|()| sidecar_path.display().to_string());
            Some(JournalCorruption {
                records_quarantined: scan.corrupt.len(),
                bytes_quarantined: scan.corrupt.iter().map(|f| f.bytes.len()).sum(),
                first_offset: scan.corrupt.first().map(|f| f.offset).unwrap_or(0),
                sidecar,
            })
        };
        let mut replay = Replay {
            truncated_tail: scan.torn.is_some(),
            corruption,
            ..Replay::default()
        };
        for payload in &scan.records {
            let rec: JournalRecord = serde_json::from_slice(payload)
                .map_err(|e| bad_data(format!("{}: bad journal record: {e}", path.display())))?;
            match rec {
                JournalRecord::Accepted { id, request, trace } => {
                    replay.accepted.insert(id, *request);
                    if let Some(t) = trace {
                        replay.trace_ids.insert(id, t);
                    }
                }
                JournalRecord::Terminal { id, outcome } => {
                    replay.terminal.insert(id, *outcome);
                }
            }
        }
        if replay.truncated_tail {
            // Drop the torn bytes so the next append starts on a clean
            // frame boundary.
            file.set_len(scan.valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Journal { file, path }, replay))
    }

    /// Append one record and fsync before returning — a record the caller
    /// has seen acknowledged survives a crash.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let payload = serde_json::to_vec(record)
            .map_err(|e| bad_data(format!("{}: encode: {e}", self.path.display())))?;
        self.file.write_all(&encode_record(&payload))?;
        self.file.sync_data()?;
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ConfigSpec, ScenarioSpec, TopoSpec, WorkloadSpec};

    fn req(seed: u64) -> EstimateRequest {
        EstimateRequest::new(
            ScenarioSpec {
                topology: TopoSpec::FatTreeSmall { oversub: 2 },
                workload: WorkloadSpec {
                    n_flows: 100,
                    matrix: "B".into(),
                    sizes: "WebServer".into(),
                    sigma: 1.0,
                    max_load: 0.3,
                },
                config: ConfigSpec::default(),
            },
            4,
            seed,
        )
    }

    fn tmpfile(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("m3-serve-journal-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_accepted_and_terminal() {
        let path = tmpfile("roundtrip");
        let mut j = Journal::create(&path).unwrap();
        j.append(&JournalRecord::Accepted {
            id: 0,
            request: Box::new(req(1)),
            trace: Some(1),
        })
        .unwrap();
        j.append(&JournalRecord::Accepted {
            id: 1,
            request: Box::new(req(2)),
            trace: Some(2),
        })
        .unwrap();
        j.append(&JournalRecord::Terminal {
            id: 0,
            outcome: Box::new(JobOutcome::Shed {
                reason: "test".into(),
            }),
        })
        .unwrap();
        drop(j);

        let (_j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.accepted.len(), 2);
        assert_eq!(replay.terminal.len(), 1);
        assert_eq!(replay.pending().len(), 1);
        assert_eq!(replay.pending()[0].0, 1);
        assert_eq!(replay.next_id(), 2);
        assert_eq!(replay.trace_ids.get(&0), Some(&1));
        assert_eq!(replay.trace_ids.get(&1), Some(&2));
        assert!(!replay.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_append_resumes() {
        let path = tmpfile("torn");
        let mut j = Journal::create(&path).unwrap();
        j.append(&JournalRecord::Accepted {
            id: 0,
            request: Box::new(req(1)),
            trace: None,
        })
        .unwrap();
        drop(j);
        // Simulate a crash mid-append: write half a record.
        let full_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x55; 7]).unwrap();
        }
        let (mut j, replay) = Journal::open(&path).unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(replay.accepted.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len);
        // Appends after recovery land on a clean boundary.
        j.append(&JournalRecord::Terminal {
            id: 0,
            outcome: Box::new(JobOutcome::Shed {
                reason: "after recovery".into(),
            }),
        })
        .unwrap();
        drop(j);
        let (_j, replay) = Journal::open(&path).unwrap();
        assert!(replay.pending().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn accepted_record_without_trace_field_still_parses() {
        // Journals written before tracing existed have no `trace` key.
        let json = serde_json::to_vec(&JournalRecord::Accepted {
            id: 7,
            request: Box::new(req(1)),
            trace: Some(8),
        })
        .unwrap();
        let text = String::from_utf8(json)
            .unwrap()
            .replace(",\"trace\":8", "")
            .replace("\"trace\":8,", "");
        assert!(!text.contains("trace"), "field not stripped: {text}");
        let rec: JournalRecord = serde_json::from_slice(text.as_bytes()).unwrap();
        match rec {
            JournalRecord::Accepted { id, trace, .. } => {
                assert_eq!(id, 7);
                assert_eq!(trace, None);
            }
            other => panic!("unexpected record: {other:?}"),
        }
    }

    #[test]
    fn bit_flipped_record_is_quarantined_and_replay_continues() {
        let path = tmpfile("bitflip");
        let mut j = Journal::create(&path).unwrap();
        j.append(&JournalRecord::Accepted {
            id: 0,
            request: Box::new(req(1)),
            trace: None,
        })
        .unwrap();
        let second_at = std::fs::metadata(&path).unwrap().len() as usize;
        j.append(&JournalRecord::Accepted {
            id: 1,
            request: Box::new(req(2)),
            trace: None,
        })
        .unwrap();
        let third_at = std::fs::metadata(&path).unwrap().len() as usize;
        j.append(&JournalRecord::Terminal {
            id: 0,
            outcome: Box::new(JobOutcome::Shed {
                reason: "after the damage".into(),
            }),
        })
        .unwrap();
        let full_len = std::fs::metadata(&path).unwrap().len();
        drop(j);

        // Flip one bit inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[second_at + 12 + 5] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (_j, replay) = Journal::open(&path).unwrap();
        // The record *after* the corrupt one was still replayed.
        assert_eq!(replay.accepted.len(), 1, "corrupt acceptance dropped");
        assert!(replay.accepted.contains_key(&0));
        assert_eq!(replay.terminal.len(), 1);
        assert!(replay.pending().is_empty());
        assert!(!replay.truncated_tail, "mid-file damage is not a torn tail");
        let c = replay.corruption.expect("corruption surfaced");
        assert_eq!(c.records_quarantined, 1);
        assert_eq!(c.first_offset, second_at);
        assert_eq!(c.bytes_quarantined, third_at - second_at);
        // The journal file is not truncated; the sidecar holds the frame.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len);
        let sidecar = c.sidecar.expect("sidecar written");
        let side = std::fs::read_to_string(&sidecar).unwrap();
        assert!(side.contains("checksum mismatch"), "{side}");
        assert_eq!(side.lines().count(), 1);

        // Reopening re-reports the same corruption (documented behavior).
        let (_j, replay2) = Journal::open(&path).unwrap();
        assert_eq!(
            replay2
                .corruption
                .map(|c| (c.records_quarantined, c.first_offset)),
            Some((1, second_at))
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"NOTAJRNL\x01\x00\x00\x00").unwrap();
        assert!(Journal::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
