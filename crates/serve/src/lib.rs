//! # m3-serve
//!
//! A supervised estimation service over the m3 pipeline: a bounded
//! multi-worker job queue that accepts [`EstimateRequest`]s (workload
//! spec, configuration, policy) and guarantees every accepted job reaches
//! a terminal [`JobOutcome`] — completed, degraded, failed, or shed — in
//! the face of transient stage faults (retried with capped exponential
//! backoff and deterministic full jitter), persistent faults (failed
//! fast), worker panics (supervised respawn with job recovery), repeated
//! stage failures (per-stage circuit breakers routing to the flowSim-only
//! degraded path), overload (admission control with load shedding), and
//! whole-process crashes (write-ahead job journal with fsync'd,
//! checksummed records and bit-identical replay).
//!
//! ```no_run
//! use m3_serve::prelude::*;
//! use m3_core::prelude::*;
//! use m3_nn::prelude::*;
//!
//! let net = M3Net::new(ModelConfig::repro_default(SPEC_DIM), 1);
//! let svc = Service::start(M3Estimator::new(net), ServiceConfig::default());
//! let req = EstimateRequest::new(
//!     ScenarioSpec {
//!         topology: TopoSpec::FatTreeSmall { oversub: 2 },
//!         workload: WorkloadSpec {
//!             n_flows: 1000, matrix: "B".into(), sizes: "WebServer".into(),
//!             sigma: 1.0, max_load: 0.4,
//!         },
//!         config: ConfigSpec::default(),
//!     },
//!     16, 7,
//! );
//! let id = svc.submit(req).unwrap();
//! svc.wait_idle(std::time::Duration::from_secs(60));
//! println!("{:?}", svc.outcome(id));
//! ```

// Robustness policy: non-test library code must not unwrap/expect — errors
// either propagate as typed Results or use an explicitly justified panic.
// scripts/check.sh runs clippy with -D warnings, making these hard errors.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod backoff;
pub mod breaker;
pub mod cluster;
pub mod journal;
pub mod request;
pub mod routing;
pub mod service;

pub mod prelude {
    pub use crate::backoff::RetryPolicy;
    pub use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
    pub use crate::cluster::{
        merge_estimates, Cluster, ClusterConfig, ClusterStats, ShardHealth, ShardStatus,
    };
    pub use crate::journal::{JobOutcome, Journal, JournalCorruption, JournalRecord, Replay};
    pub use crate::request::{ConfigSpec, EstimateRequest, ScenarioSpec, TopoSpec, WorkloadSpec};
    pub use crate::routing::{rank, route, routing_key};
    pub use crate::service::{
        trace_id_for, ServeMetrics, Service, ServiceConfig, ServiceStats, SubmitError,
    };
}

pub use prelude::*;
