//! Rendezvous (highest-random-weight) routing for the estimation cluster.
//!
//! Each request is hashed to a stable 64-bit routing key — the FNV-1a
//! content hash (the same `checksum64` the scenario cache and journal use)
//! of its canonical JSON — and assigned to the live shard with the highest
//! `hash(key ‖ shard)` score. Rendezvous hashing gives the two properties
//! the coordinator's failover depends on, *by construction*:
//!
//! * **Determinism**: placement is a pure function of `(key, live set)` —
//!   no ring state, no rebalancing history. Two coordinators (or one
//!   coordinator before and after a crash) agree on every assignment.
//! * **Minimal disruption**: removing a shard only moves the keys that
//!   were assigned to it (each surviving shard's score for a key is
//!   unchanged), so a shard death reroutes ~1/N of the keyspace instead
//!   of reshuffling everything.
//!
//! `rank` orders *all* live shards by score, giving the dispatch path a
//! deterministic failover sequence: if the top shard's breaker is open or
//! its queue is full, the next-ranked shard is the unique, stable second
//! choice.

use crate::request::EstimateRequest;
use m3_nn::prelude::checksum64;

/// Stable routing key for a request: `checksum64` of its canonical JSON.
///
/// Scatter children of one large scenario differ only in `path_slice`,
/// which is part of the serialized form — so the children of a single
/// request spread across shards instead of piling onto one.
pub fn routing_key(request: &EstimateRequest) -> u64 {
    match serde_json::to_string(request) {
        Ok(json) => checksum64(json.as_bytes()),
        // Serialization of a plain-data request cannot fail in practice;
        // a zero key still routes (to a deterministic shard).
        Err(_) => 0,
    }
}

/// Rendezvous score of `shard` for `key`.
fn score(key: u64, shard: usize) -> u64 {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&key.to_le_bytes());
    buf[8..].copy_from_slice(&(shard as u64).to_le_bytes());
    checksum64(&buf)
}

/// The live shard that owns `key`: argmax of the rendezvous score over
/// `live`.
/// Returns `None` when `live` is empty. Pure in `(key, live set)` — the
/// order of `live` does not matter (ties, vanishingly rare with a 64-bit
/// hash, break toward the smaller shard index to stay order-free).
pub fn route(key: u64, live: &[usize]) -> Option<usize> {
    live.iter().copied().max_by(|&a, &b| {
        score(key, a).cmp(&score(key, b)).then(b.cmp(&a)) // prefer the smaller index on a score tie
    })
}

/// All live shards ordered by descending rendezvous score for `key`:
/// `rank(...)[0] == route(...)` and the tail is the deterministic failover
/// order. Pure in `(key, live set)`.
pub fn rank(key: u64, live: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = live.to_vec();
    order.sort_by(|&a, &b| {
        score(key, b).cmp(&score(key, a)).then(a.cmp(&b)) // smaller index first on a score tie
    });
    order.dedup();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ConfigSpec, ScenarioSpec, TopoSpec, WorkloadSpec};

    fn req(seed: u64) -> EstimateRequest {
        EstimateRequest::new(
            ScenarioSpec {
                topology: TopoSpec::FatTreeSmall { oversub: 2 },
                workload: WorkloadSpec {
                    n_flows: 100,
                    matrix: "B".into(),
                    sizes: "WebServer".into(),
                    sigma: 1.0,
                    max_load: 0.4,
                },
                config: ConfigSpec::default(),
            },
            4,
            seed,
        )
    }

    #[test]
    fn key_is_stable_and_content_sensitive() {
        assert_eq!(routing_key(&req(1)), routing_key(&req(1)));
        assert_ne!(routing_key(&req(1)), routing_key(&req(2)));
        let mut sliced = req(1);
        sliced.path_slice = Some(m3_core::prelude::PathSlice { start: 0, end: 2 });
        assert_ne!(
            routing_key(&req(1)),
            routing_key(&sliced),
            "scatter children must hash differently from their parent"
        );
    }

    #[test]
    fn route_is_rank_head_and_order_free() {
        let live = [0usize, 1, 2, 3, 4];
        let mut shuffled = [3usize, 0, 4, 2, 1];
        for key in 0..200u64 {
            let r = rank(key, &live);
            assert_eq!(route(key, &live), r.first().copied());
            assert_eq!(route(key, &live), route(key, &shuffled));
            assert_eq!(rank(key, &live), rank(key, &shuffled));
            shuffled.rotate_left(1);
        }
        assert_eq!(route(7, &[]), None);
    }

    #[test]
    fn keys_spread_across_shards() {
        let live = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for key in 0..400u64 {
            counts[route(key, &live).unwrap()] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > 400 / 4 / 3,
                "shard {shard} starved: {counts:?} (hash badly skewed)"
            );
        }
    }

    #[test]
    fn removal_only_moves_the_dead_shards_keys() {
        let live = [0usize, 1, 2, 3, 4, 5, 6, 7];
        let survivors: Vec<usize> = live.iter().copied().filter(|&s| s != 3).collect();
        let mut moved = 0usize;
        for key in 0..1000u64 {
            let before = route(key, &live).unwrap();
            let after = route(key, &survivors).unwrap();
            if before == 3 {
                moved += 1;
                assert_ne!(after, 3);
            } else {
                assert_eq!(before, after, "key {key} moved off a surviving shard");
            }
        }
        // ~1/8 of 1000 keys lived on shard 3; all of them (and only them)
        // moved.
        assert!((60..250).contains(&moved), "moved {moved} of 1000");
    }
}
