//! Fault-tolerant sharded estimation cluster.
//!
//! A coordinator in front of N independent [`Service`] shards, each with
//! its own journal, scenario cache, per-stage breakers, and metrics
//! registry. The coordinator extends the single-node contract — **every
//! accepted job reaches exactly one terminal state** — across shard
//! failures:
//!
//! 1. **Routing** — requests are placed by rendezvous hashing on their
//!    content key ([`crate::routing`]): deterministic, and a shard death
//!    moves only the dead shard's keys. Dispatch walks the rendezvous
//!    rank order, skipping shards whose *per-shard circuit breaker* (a
//!    coordinator-level breaker layered above each shard's per-stage
//!    ones) is open.
//! 2. **Scatter/gather** — a request with at least
//!    [`ClusterConfig::scatter_threshold`] paths is split into
//!    [`PathSlice`] children that route independently; the parent's
//!    estimate is the deterministic merge ([`merge_estimates`]) of the
//!    children's, bit-identical to an unsharded run because path
//!    aggregation is order-independent.
//! 3. **Failure detection** — a monitor thread polls each shard's
//!    supervisor heartbeat. A frozen heartbeat walks the shard through
//!    typed states: `Alive` → [`ShardHealth::Suspect`] after
//!    `suspect_misses` silent polls → [`ShardHealth::Dead`] after
//!    `dead_misses`.
//! 4. **Failover** — a dead shard is drained (in-flight jobs settle; a
//!    thread cannot be killed mid-estimate from safe code), its journal
//!    is replayed, already-settled outcomes are **adopted** —
//!    at-most-once per terminal state: a result the coordinator already
//!    harvested is dropped, counted in `duplicate_terminals_dropped` —
//!    and unsettled jobs are **rerouted** by rehashing over the
//!    survivors, with bounded retries under the deterministic-jitter
//!    [`RetryPolicy`].
//! 5. **Recovery** — dead shards are restarted with a fresh journal and
//!    walk `Dead` → [`ShardHealth::Recovering`] →
//!    [`ShardHealth::Recovered`]; a [`InjectedFault::ShardSlowStart`]
//!    plan keeps a restarted shard out of the routing set for a warmup
//!    window.
//!
//! Shard-level faults ([`InjectedFault::ShardCrash`] /
//! [`InjectedFault::ShardStall`] / [`InjectedFault::ShardSlowStart`])
//! are injected deterministically from the cluster's [`FaultPlan`] after
//! a configured number of dispatches, so kill-a-shard scenarios replay
//! exactly in tests and soak runs.

use crate::backoff::RetryPolicy;
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::journal::{JobOutcome, Journal};
use crate::request::EstimateRequest;
use crate::routing::{rank, routing_key};
use crate::service::{Service, ServiceConfig, ServiceStats, SubmitError};
use m3_core::prelude::{
    DegradationReport, FaultPlan, InjectedFault, M3Estimator, NetworkEstimate, PathSlice,
    NUM_OUTPUT_BUCKETS,
};
use m3_nn::prelude::M3Net;
use m3_telemetry::{Counter, MetricsRegistry, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Cluster tuning knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shard count. Each shard is a full [`Service`] built from
    /// [`shard`](ClusterConfig::shard).
    pub shards: usize,
    /// Template config applied to every shard. Use `workers >= 1`: a
    /// cluster over zero-worker shards never settles anything.
    pub shard: ServiceConfig,
    /// When set, shard `i` journals to `<dir>/shard-<i>.jrn` and failover
    /// adopts settled outcomes from the dead shard's journal instead of
    /// recomputing them. `None` runs journal-less: failover simply
    /// recomputes unharvested jobs (still exactly-once at the
    /// coordinator, which only records the first terminal per job).
    pub journal_dir: Option<PathBuf>,
    /// Monitor poll interval (heartbeat check + outcome harvest + retry
    /// dispatch).
    pub heartbeat_every: Duration,
    /// Consecutive silent polls before a shard is `Suspect`.
    pub suspect_misses: u32,
    /// Consecutive silent polls before a shard is declared `Dead` and
    /// failed over. Must be > `suspect_misses`.
    pub dead_misses: u32,
    /// Retry policy for dispatch/reroute attempts (deterministic full
    /// jitter, same scheme as the in-shard stage retries). A job that
    /// exhausts `max_attempts` dispatches is `Shed`.
    pub reroute_retry: RetryPolicy,
    /// Per-shard circuit breaker (above the per-stage breakers inside
    /// each shard): trips on consecutive dispatch failures to one shard.
    pub shard_breaker: BreakerConfig,
    /// Requests with at least this many paths are scattered into
    /// [`PathSlice`] children. `usize::MAX` (default) disables scatter.
    pub scatter_threshold: usize,
    /// Paths per scatter child.
    pub scatter_chunk: usize,
    /// Deterministic shard-fault plan, evaluated with the shard index as
    /// the slot. `ShardCrash` aborts the shard, `ShardStall` freezes its
    /// supervisor heartbeat (workers keep running), `ShardSlowStart`
    /// delays the restarted shard's readmission to routing.
    pub fault_plan: Option<FaultPlan>,
    /// Total dispatches after which the fault plan fires (once). 0 never
    /// fires.
    pub fault_after_dispatches: u64,
    /// Restart dead shards (fresh journal) after failover.
    pub restart_dead_shards: bool,
    /// Monitor polls a restarted shard spends in
    /// [`ShardHealth::Recovering`] when its slot is hit by
    /// `ShardSlowStart` (otherwise a restarted shard is `Recovered` — and
    /// routable — immediately).
    pub warmup_polls: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            shard: ServiceConfig::default(),
            journal_dir: None,
            heartbeat_every: Duration::from_millis(5),
            suspect_misses: 3,
            dead_misses: 8,
            reroute_retry: RetryPolicy {
                max_attempts: 8,
                base_delay_ms: 2,
                max_delay_ms: 50,
                seed: 0,
            },
            shard_breaker: BreakerConfig::default(),
            scatter_threshold: usize::MAX,
            scatter_chunk: 8,
            fault_plan: None,
            fault_after_dispatches: 0,
            restart_dead_shards: true,
            warmup_polls: 3,
        }
    }
}

/// Failure-detector state of one shard, as typed transitions:
/// `Alive → Suspect → Dead → Recovering → Recovered`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardHealth {
    /// Heartbeat advancing; routable.
    Alive,
    /// Heartbeat silent for `misses` polls; still routable (a suspect may
    /// merely be slow — killing it early would churn the keyspace), but
    /// one more poll window away from `Dead`.
    Suspect { misses: u32 },
    /// Declared dead and failed over; not routable.
    Dead,
    /// Restarted after death but still warming (slow-start); not routable
    /// for `polls_left` more monitor polls.
    Recovering { polls_left: u32 },
    /// Restarted and readmitted to the routing set.
    Recovered,
}

impl ShardHealth {
    /// Shards in this state receive new dispatches.
    pub fn routable(self) -> bool {
        matches!(
            self,
            ShardHealth::Alive | ShardHealth::Suspect { .. } | ShardHealth::Recovered
        )
    }
}

/// Point-in-time status of one shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardStatus {
    pub index: usize,
    pub health: ShardHealth,
    /// Coordinator-level breaker for this shard.
    pub breaker: BreakerState,
    /// Jobs dispatched to this shard over its lifetime (reset on restart).
    pub dispatched: u64,
    /// Live service stats (`None` while the shard is down).
    pub stats: Option<ServiceStats>,
}

/// Point-in-time cluster snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterStats {
    pub shards: Vec<ShardStatus>,
    /// Jobs accepted by `submit` (scatter children included).
    pub submitted: u64,
    /// Jobs with a terminal outcome.
    pub settled: u64,
    pub rerouted: u64,
    pub shard_deaths: u64,
    pub shard_recoveries: u64,
    /// Terminals re-reported for an already-settled job (journal adoption
    /// racing the harvest) and dropped — the at-most-once guarantee doing
    /// its job, not an error.
    pub duplicate_terminals_dropped: u64,
    /// Dispatches waiting on backoff or on a routable shard.
    pub dispatch_queue_depth: usize,
}

impl ClusterStats {
    /// Every accepted job has settled and nothing is waiting to dispatch.
    pub fn drained(&self) -> bool {
        self.settled >= self.submitted && self.dispatch_queue_depth == 0
    }
}

/// Coordinator-level counters, registered under the `cluster.` prefix.
#[derive(Debug, Clone)]
struct ClusterMetrics {
    submitted: Counter,
    dispatched: Counter,
    rerouted: Counter,
    scattered: Counter,
    scatter_children: Counter,
    merges: Counter,
    shard_deaths: Counter,
    shard_recoveries: Counter,
    duplicate_terminals_dropped: Counter,
    completed: Counter,
    degraded: Counter,
    failed: Counter,
    shed: Counter,
}

impl ClusterMetrics {
    fn register(r: &MetricsRegistry) -> Self {
        ClusterMetrics {
            submitted: r.counter("cluster.submitted"),
            dispatched: r.counter("cluster.dispatched"),
            rerouted: r.counter("cluster.rerouted"),
            scattered: r.counter("cluster.scattered"),
            scatter_children: r.counter("cluster.scatter_children"),
            merges: r.counter("cluster.merges"),
            shard_deaths: r.counter("cluster.shard_deaths"),
            shard_recoveries: r.counter("cluster.shard_recoveries"),
            duplicate_terminals_dropped: r.counter("cluster.duplicate_terminals_dropped"),
            completed: r.counter("cluster.completed"),
            degraded: r.counter("cluster.degraded"),
            failed: r.counter("cluster.failed"),
            shed: r.counter("cluster.shed"),
        }
    }
}

/// One shard slot: the service (if up), its detector state, and the
/// coordinator-side bookkeeping for jobs assigned to it.
struct ShardSlot {
    service: Option<Service>,
    /// Clone of the shard service's registry: Arc-backed, so retired
    /// shards' metrics stay readable after the `Service` is gone.
    registry: MetricsRegistry,
    health: ShardHealth,
    breaker: CircuitBreaker,
    last_beat: u64,
    misses: u32,
    journal_path: Option<PathBuf>,
    /// Dispatches to this shard since (re)start.
    dispatched: u64,
    /// shard-local job id → cluster job id, for every dispatched job not
    /// yet harvested.
    assigned: HashMap<u64, u64>,
    /// Slow-start applies when this slot restarts.
    slow_start: bool,
}

/// One cluster-level job.
struct ClusterJob {
    request: EstimateRequest,
    outcome: Option<JobOutcome>,
    /// Dispatch attempts consumed (initial dispatch included).
    attempts: u32,
    /// Set for scatter children.
    parent: Option<u64>,
    /// Set (in slice order) for scatter parents; parents are never
    /// dispatched themselves.
    children: Vec<u64>,
}

/// A dispatch waiting on backoff (initial retry or post-failover reroute).
struct PendingDispatch {
    job_id: u64,
    not_before: Instant,
}

struct ClusterState {
    shards: Vec<ShardSlot>,
    jobs: BTreeMap<u64, ClusterJob>,
    next_id: u64,
    settled: u64,
    dispatch_queue: VecDeque<PendingDispatch>,
    dispatched_total: u64,
    faults_due: bool,
    faults_applied: bool,
    /// Snapshots of shards that died without restart (their registry
    /// handle lives in the slot otherwise).
    retired: Vec<MetricsSnapshot>,
    shutdown: bool,
}

struct ClusterInner {
    state: Mutex<ClusterState>,
    cond: Condvar,
    config: ClusterConfig,
    net: M3Net,
    registry: MetricsRegistry,
    metrics: ClusterMetrics,
}

impl ClusterInner {
    /// Lock the state, recovering from a poisoned mutex: cluster state is
    /// kept consistent by construction (each mutation completes before the
    /// lock drops), so a panicked holder leaves usable state.
    fn lock(&self) -> MutexGuard<'_, ClusterState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sharded estimation cluster.
pub struct Cluster {
    inner: Arc<ClusterInner>,
    monitor: Option<thread::JoinHandle<()>>,
}

impl Cluster {
    /// Start `config.shards` shard services (each with its own estimator
    /// built from a clone of `net`) plus the monitor thread.
    pub fn start(net: M3Net, config: ClusterConfig) -> io::Result<Cluster> {
        assert!(config.shards > 0, "cluster needs at least one shard");
        assert!(
            config.dead_misses > config.suspect_misses,
            "dead_misses must exceed suspect_misses"
        );
        if let Some(dir) = &config.journal_dir {
            fs::create_dir_all(dir)?;
        }
        let registry = MetricsRegistry::new();
        let metrics = ClusterMetrics::register(&registry);
        let mut shards = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let journal_path = config
                .journal_dir
                .as_ref()
                .map(|d| d.join(format!("shard-{i}.jrn")));
            let service = start_shard(&net, &config.shard, journal_path.as_ref())?;
            let reg = service.metrics().clone();
            shards.push(ShardSlot {
                service: Some(service),
                registry: reg,
                health: ShardHealth::Alive,
                breaker: CircuitBreaker::new(config.shard_breaker),
                last_beat: 0,
                misses: 0,
                journal_path,
                dispatched: 0,
                assigned: HashMap::new(),
                slow_start: false,
            });
        }
        let inner = Arc::new(ClusterInner {
            state: Mutex::new(ClusterState {
                shards,
                jobs: BTreeMap::new(),
                next_id: 0,
                settled: 0,
                dispatch_queue: VecDeque::new(),
                dispatched_total: 0,
                faults_due: false,
                faults_applied: false,
                retired: Vec::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            config,
            net,
            registry,
            metrics,
        });
        let monitor = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("m3-cluster-monitor".into())
                .spawn(move || monitor_loop(&inner))
                .map_err(|e| io::Error::other(format!("failed to spawn cluster monitor: {e}")))?
        };
        Ok(Cluster {
            inner,
            monitor: Some(monitor),
        })
    }

    /// Submit a request. Large requests (>= `scatter_threshold` paths)
    /// are scattered into path-slice children; the returned id is always
    /// the caller-visible (parent) job. Accepted jobs are guaranteed a
    /// terminal outcome even across shard deaths.
    pub fn submit(&self, request: EstimateRequest) -> Result<u64, SubmitError> {
        let inner = &self.inner;
        let mut st = inner.lock();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let id = st.next_id;
        st.next_id += 1;
        inner.metrics.submitted.inc();
        let cfg = &inner.config;
        let slices = if request.path_slice.is_none() && request.paths >= cfg.scatter_threshold {
            PathSlice::chunks(request.paths, cfg.scatter_chunk)
        } else {
            Vec::new()
        };
        if slices.len() > 1 {
            inner.metrics.scattered.inc();
            let mut children = Vec::with_capacity(slices.len());
            for sl in slices {
                let cid = st.next_id;
                st.next_id += 1;
                let mut creq = request.clone();
                creq.path_slice = Some(sl);
                st.jobs.insert(
                    cid,
                    ClusterJob {
                        request: creq,
                        outcome: None,
                        attempts: 0,
                        parent: Some(id),
                        children: Vec::new(),
                    },
                );
                children.push(cid);
                inner.metrics.submitted.inc();
                inner.metrics.scatter_children.inc();
            }
            st.jobs.insert(
                id,
                ClusterJob {
                    request,
                    outcome: None,
                    attempts: 0,
                    parent: None,
                    children: children.clone(),
                },
            );
            for cid in children {
                try_dispatch(inner, &mut st, cid);
            }
        } else {
            st.jobs.insert(
                id,
                ClusterJob {
                    request,
                    outcome: None,
                    attempts: 0,
                    parent: None,
                    children: Vec::new(),
                },
            );
            try_dispatch(inner, &mut st, id);
        }
        drop(st);
        inner.cond.notify_all();
        Ok(id)
    }

    /// Terminal outcome of job `id`, if settled.
    pub fn outcome(&self, id: u64) -> Option<JobOutcome> {
        self.inner
            .lock()
            .jobs
            .get(&id)
            .and_then(|j| j.outcome.clone())
    }

    /// Block until every accepted job settled and the dispatch queue is
    /// empty, or `timeout`. Returns true if idle was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.lock();
        loop {
            let idle = st.settled >= st.jobs.len() as u64 && st.dispatch_queue.is_empty();
            if idle {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .inner
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Point-in-time cluster snapshot.
    pub fn stats(&self) -> ClusterStats {
        let st = self.inner.lock();
        let m = &self.inner.metrics;
        ClusterStats {
            shards: st
                .shards
                .iter()
                .enumerate()
                .map(|(index, s)| ShardStatus {
                    index,
                    health: s.health,
                    breaker: s.breaker.state(),
                    dispatched: s.dispatched,
                    stats: s.service.as_ref().map(Service::stats),
                })
                .collect(),
            submitted: m.submitted.get(),
            settled: st.settled,
            rerouted: m.rerouted.get(),
            shard_deaths: m.shard_deaths.get(),
            shard_recoveries: m.shard_recoveries.get(),
            duplicate_terminals_dropped: m.duplicate_terminals_dropped.get(),
            dispatch_queue_depth: st.dispatch_queue.len(),
        }
    }

    /// Deterministic merge of the cluster's own registry with every
    /// shard's (live, restarted, and retired), in shard-index order.
    /// [`MetricsSnapshot::merge`] is associative and commutative over
    /// counters, so the result is independent of harvest timing for any
    /// fault-free run.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let st = self.inner.lock();
        let mut merged = self.inner.registry.snapshot();
        for slot in &st.shards {
            merged.merge(&slot.registry.snapshot());
        }
        for snap in &st.retired {
            merged.merge(snap);
        }
        merged
    }

    /// Drain and stop: waits for every accepted job to settle (rerouting
    /// and retrying as needed), then shuts every shard down gracefully.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut st = self.inner.lock();
        st.shutdown = true;
        drop(st);
        self.inner.cond.notify_all();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

fn start_shard(
    net: &M3Net,
    template: &ServiceConfig,
    journal_path: Option<&PathBuf>,
) -> io::Result<Service> {
    let estimator = M3Estimator::new(net.clone());
    match journal_path {
        Some(p) => Service::start_journaled(estimator, template.clone(), p),
        None => Ok(Service::start(estimator, template.clone())),
    }
}

/// Dispatch one job: walk the rendezvous rank order over routable shards,
/// skipping open per-shard breakers; on total failure, requeue with
/// deterministic-jitter backoff or shed after `max_attempts`.
fn try_dispatch(inner: &ClusterInner, st: &mut ClusterState, job_id: u64) -> bool {
    let request = match st.jobs.get(&job_id) {
        Some(j) if j.outcome.is_none() => j.request.clone(),
        _ => return false, // already settled (e.g. adopted from a journal)
    };
    let key = routing_key(&request);
    let routable: Vec<usize> = st
        .shards
        .iter()
        .enumerate()
        .filter(|(_, s)| s.health.routable() && s.service.is_some())
        .map(|(i, _)| i)
        .collect();
    if let Some(j) = st.jobs.get_mut(&job_id) {
        j.attempts += 1;
    }
    for idx in rank(key, &routable) {
        let slot = &mut st.shards[idx];
        if !slot.breaker.try_acquire() {
            continue;
        }
        let Some(svc) = slot.service.as_ref() else {
            slot.breaker.cancel_probe();
            continue;
        };
        match svc.submit(request.clone()) {
            Ok(sid) => {
                slot.breaker.on_success();
                slot.assigned.insert(sid, job_id);
                slot.dispatched += 1;
                inner.metrics.dispatched.inc();
                st.dispatched_total += 1;
                let cfg = &inner.config;
                if cfg.fault_plan.is_some()
                    && cfg.fault_after_dispatches > 0
                    && st.dispatched_total == cfg.fault_after_dispatches
                {
                    st.faults_due = true;
                }
                return true;
            }
            Err(_) => {
                slot.breaker.on_failure();
            }
        }
    }
    // No shard took the job.
    let attempts = st.jobs.get(&job_id).map(|j| j.attempts).unwrap_or(0);
    if attempts >= inner.config.reroute_retry.max_attempts {
        settle(
            inner,
            st,
            job_id,
            JobOutcome::Shed {
                reason: format!(
                    "dispatch retries exhausted after {attempts} attempts: no routable shard"
                ),
            },
        );
    } else {
        let delay = inner
            .config
            .reroute_retry
            .delay_ms(job_id, attempts.saturating_sub(1));
        st.dispatch_queue.push_back(PendingDispatch {
            job_id,
            not_before: Instant::now() + Duration::from_millis(delay),
        });
    }
    false
}

/// Record a terminal outcome for a cluster job — at most once: a second
/// terminal for the same job (journal adoption racing an already-harvested
/// result) is dropped and counted.
fn settle(inner: &ClusterInner, st: &mut ClusterState, job_id: u64, outcome: JobOutcome) {
    let parent = {
        let Some(job) = st.jobs.get_mut(&job_id) else {
            return;
        };
        if job.outcome.is_some() {
            inner.metrics.duplicate_terminals_dropped.inc();
            return;
        }
        match &outcome {
            JobOutcome::Completed { .. } => inner.metrics.completed.inc(),
            JobOutcome::Degraded { .. } => inner.metrics.degraded.inc(),
            JobOutcome::Failed { .. } => inner.metrics.failed.inc(),
            JobOutcome::Shed { .. } => inner.metrics.shed.inc(),
        }
        job.outcome = Some(outcome);
        job.parent
    };
    st.settled += 1;
    if let Some(pid) = parent {
        try_finalize_parent(inner, st, pid);
    }
    inner.cond.notify_all();
}

/// If every child of scatter parent `pid` has settled, merge them into the
/// parent's terminal outcome.
fn try_finalize_parent(inner: &ClusterInner, st: &mut ClusterState, pid: u64) {
    let outcomes: Vec<JobOutcome> = {
        let Some(parent) = st.jobs.get(&pid) else {
            return;
        };
        if parent.outcome.is_some() {
            return;
        }
        let mut collected = Vec::with_capacity(parent.children.len());
        for cid in &parent.children {
            match st.jobs.get(cid).and_then(|c| c.outcome.clone()) {
                Some(o) => collected.push(o),
                None => return, // a child is still in flight
            }
        }
        collected
    };
    inner.metrics.merges.inc();
    let merged = merge_outcomes(&outcomes);
    settle(inner, st, pid, merged);
}

/// Merge scatter-child outcomes (in slice order) into one terminal. Any
/// failed or shed child fails the parent with that child's outcome; clean
/// children merge estimate-wise via [`merge_estimates`].
fn merge_outcomes(children: &[JobOutcome]) -> JobOutcome {
    let mut parts: Vec<&NetworkEstimate> = Vec::with_capacity(children.len());
    let mut attempts_max = 0;
    let mut any_degraded = false;
    let mut via_breaker_any = false;
    for o in children {
        match o {
            JobOutcome::Completed { estimate, attempts } => {
                parts.push(estimate);
                attempts_max = attempts_max.max(*attempts);
            }
            JobOutcome::Degraded {
                estimate,
                attempts,
                via_breaker,
            } => {
                parts.push(estimate);
                attempts_max = attempts_max.max(*attempts);
                any_degraded = true;
                via_breaker_any |= *via_breaker;
            }
            JobOutcome::Failed { .. } | JobOutcome::Shed { .. } => return o.clone(),
        }
    }
    let estimate = merge_estimates(&parts);
    if any_degraded {
        JobOutcome::Degraded {
            estimate,
            attempts: attempts_max,
            via_breaker: via_breaker_any,
        }
    } else {
        JobOutcome::Completed {
            estimate,
            attempts: attempts_max,
        }
    }
}

/// Deterministically merge partial [`NetworkEstimate`]s (disjoint path
/// slices of one scenario) into the whole-scenario estimate.
///
/// Bit-identical to the unsharded run: [`NetworkEstimate::aggregate`] is
/// a concat-then-total-order-sort over per-path sample vectors, so
/// aggregating a partition of the paths and merging (concat, re-sort,
/// sum counts) produces exactly the same sorted sample multiset and
/// counts as aggregating all paths at once. Timings are summed (they are
/// operator info, excluded from value equality); degradation reports are
/// summed field-wise with events concatenated in slice order.
pub fn merge_estimates(parts: &[&NetworkEstimate]) -> NetworkEstimate {
    assert!(!parts.is_empty(), "need at least one partial estimate");
    let mut bucket_samples: Vec<Vec<f64>> = vec![Vec::new(); NUM_OUTPUT_BUCKETS];
    let mut bucket_counts = [0usize; NUM_OUTPUT_BUCKETS];
    let mut timings = parts[0].timings.clone();
    let mut degradation = DegradationReport::default();
    for (i, e) in parts.iter().enumerate() {
        for b in 0..NUM_OUTPUT_BUCKETS {
            bucket_samples[b].extend_from_slice(&e.bucket_samples[b]);
            bucket_counts[b] += e.bucket_counts[b];
        }
        if i > 0 {
            let t = &e.timings;
            timings.decompose_s += t.decompose_s;
            timings.flowsim_s += t.flowsim_s;
            timings.features_s += t.features_s;
            timings.forward_s += t.forward_s;
            timings.aggregate_s += t.aggregate_s;
            timings.sampled_paths += t.sampled_paths;
            timings.unique_scenarios += t.unique_scenarios;
            timings.flowsim_runs += t.flowsim_runs;
            timings.cache_hits += t.cache_hits;
            timings.cache_misses += t.cache_misses;
            timings.cache_evictions += t.cache_evictions;
        }
        degradation.total_samples += e.degradation.total_samples;
        degradation.degraded_samples += e.degradation.degraded_samples;
        degradation.dropped_samples += e.degradation.dropped_samples;
        degradation
            .events
            .extend(e.degradation.events.iter().cloned());
    }
    for v in bucket_samples.iter_mut() {
        v.sort_by(|a, b| a.total_cmp(b));
    }
    NetworkEstimate {
        bucket_samples,
        bucket_counts,
        timings,
        degradation,
    }
}

// ---------------------------------------------------------------------------
// Monitor thread: heartbeat detection, fault injection, failover, harvest.
// ---------------------------------------------------------------------------

fn monitor_loop(inner: &Arc<ClusterInner>) {
    loop {
        // Sleep one poll interval (shutdown wakes us early).
        {
            let st = inner.lock();
            if !st.shutdown {
                let _ = inner
                    .cond
                    .wait_timeout(st, inner.config.heartbeat_every)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        apply_due_faults(inner);
        let dead = poll_heartbeats(inner);
        for idx in dead {
            failover(inner, idx);
        }
        harvest(inner);
        dispatch_due(inner);
        let st = inner.lock();
        if st.shutdown {
            let drained = st.settled >= st.jobs.len() as u64 && st.dispatch_queue.is_empty();
            if drained {
                drop(st);
                break;
            }
        }
    }
    // Graceful shard shutdown: drain queues, join workers, close journals.
    let services: Vec<Service> = {
        let mut st = inner.lock();
        st.shards
            .iter_mut()
            .filter_map(|s| s.service.take())
            .collect()
    };
    for svc in services {
        svc.stall_supervisor(false);
        svc.shutdown();
    }
}

/// Fire the configured shard faults once the dispatch threshold passed.
fn apply_due_faults(inner: &ClusterInner) {
    let crash_victims: Vec<(usize, Service)> = {
        let mut st = inner.lock();
        if !st.faults_due || st.faults_applied {
            return;
        }
        st.faults_applied = true;
        let Some(plan) = inner.config.fault_plan.clone() else {
            return;
        };
        let mut victims = Vec::new();
        for (idx, slot) in st.shards.iter_mut().enumerate() {
            if plan.hits(InjectedFault::ShardCrash, idx) {
                if let Some(svc) = slot.service.take() {
                    victims.push((idx, svc));
                }
            } else if plan.hits(InjectedFault::ShardStall, idx) {
                if let Some(svc) = slot.service.as_ref() {
                    svc.stall_supervisor(true);
                }
            }
            if plan.hits(InjectedFault::ShardSlowStart, idx) {
                slot.slow_start = true;
            }
        }
        victims
    };
    // Abort outside the lock: in-flight jobs settle into the journal (a
    // crash at job granularity; torn-record crashes are the journal's own
    // recovery tests). The slot's service is already `None`, so the
    // failure detector sees a frozen heartbeat and walks it to Dead.
    for (_idx, svc) in crash_victims {
        svc.abort();
    }
}

/// Advance the failure detector one poll. Returns shards newly declared
/// dead (to be failed over by the caller).
fn poll_heartbeats(inner: &ClusterInner) -> Vec<usize> {
    let mut st = inner.lock();
    let cfg = &inner.config;
    let mut dead = Vec::new();
    for (idx, slot) in st.shards.iter_mut().enumerate() {
        if slot.health == ShardHealth::Dead && slot.service.is_none() {
            continue; // stays dead (restart disabled)
        }
        let beat = slot.service.as_ref().map(|s| s.heartbeat());
        match beat {
            Some(b) if b > slot.last_beat => {
                slot.last_beat = b;
                slot.misses = 0;
                slot.health = match slot.health {
                    ShardHealth::Recovering { polls_left } if polls_left > 1 => {
                        ShardHealth::Recovering {
                            polls_left: polls_left - 1,
                        }
                    }
                    ShardHealth::Recovering { .. } => ShardHealth::Recovered,
                    ShardHealth::Suspect { .. } | ShardHealth::Alive => ShardHealth::Alive,
                    other => other,
                };
            }
            _ => {
                slot.misses = slot.misses.saturating_add(1);
                if slot.misses >= cfg.dead_misses {
                    if slot.health != ShardHealth::Dead {
                        slot.health = ShardHealth::Dead;
                        dead.push(idx);
                    }
                } else if slot.misses >= cfg.suspect_misses && slot.health.routable() {
                    slot.health = ShardHealth::Suspect {
                        misses: slot.misses,
                    };
                }
            }
        }
    }
    dead
}

/// Fail over a dead shard: drain it, adopt settled outcomes from its
/// journal (at most once each), reroute unsettled jobs over the
/// survivors, and (optionally) restart it.
fn failover(inner: &ClusterInner, idx: usize) {
    // Phase 1 (locked): detach the shard.
    let (service, journal_path, assigned, old_registry) = {
        let mut st = inner.lock();
        inner.metrics.shard_deaths.inc();
        let slot = &mut st.shards[idx];
        slot.health = ShardHealth::Dead;
        slot.breaker.on_failure();
        (
            slot.service.take(),
            slot.journal_path.clone(),
            std::mem::take(&mut slot.assigned),
            slot.registry.clone(),
        )
    };
    // Phase 2 (unlocked): drain the corpse and read its journal. `abort`
    // joins the worker pool, so every in-flight job has settled (and been
    // journaled) by the time we read; queued jobs come back as pending.
    if let Some(svc) = &service {
        svc.stall_supervisor(false);
    }
    if let Some(svc) = service {
        svc.abort();
    }
    let adopted: BTreeMap<u64, JobOutcome> = journal_path
        .as_ref()
        .and_then(|p| Journal::open(p).ok())
        .map(|(_, replay)| replay.terminal)
        .unwrap_or_default();
    let restarted = if inner.config.restart_dead_shards {
        start_shard(&inner.net, &inner.config.shard, journal_path.as_ref()).ok()
    } else {
        None
    };
    // Phase 3 (locked): adopt terminals, reroute the rest, reinstall the
    // restarted service.
    let mut st = inner.lock();
    let mut reroute = Vec::new();
    for (sid, cluster_id) in assigned {
        match adopted.get(&sid) {
            Some(outcome) => settle(inner, &mut st, cluster_id, outcome.clone()),
            None => reroute.push(cluster_id),
        }
    }
    reroute.sort_unstable();
    for cluster_id in reroute {
        if st
            .jobs
            .get(&cluster_id)
            .is_some_and(|j| j.outcome.is_none())
        {
            inner.metrics.rerouted.inc();
            try_dispatch(inner, &mut st, cluster_id);
        }
    }
    if let Some(svc) = restarted {
        inner.metrics.shard_recoveries.inc();
        // Retire the dead incarnation's metrics before the slot's registry
        // handle is replaced.
        st.retired.push(old_registry.snapshot());
        let slot = &mut st.shards[idx];
        slot.registry = svc.metrics().clone();
        slot.service = Some(svc);
        slot.breaker = CircuitBreaker::new(inner.config.shard_breaker);
        slot.last_beat = 0;
        slot.misses = 0;
        slot.dispatched = 0;
        slot.health = if slot.slow_start && inner.config.warmup_polls > 0 {
            ShardHealth::Recovering {
                polls_left: inner.config.warmup_polls,
            }
        } else {
            ShardHealth::Recovered
        };
    } else {
        st.retired.push(old_registry.snapshot());
    }
    drop(st);
    inner.cond.notify_all();
}

/// Collect terminal outcomes from every live shard.
fn harvest(inner: &ClusterInner) {
    let mut st = inner.lock();
    let mut done: Vec<(usize, u64, u64, JobOutcome)> = Vec::new();
    for (idx, slot) in st.shards.iter().enumerate() {
        let Some(svc) = slot.service.as_ref() else {
            continue;
        };
        for (&sid, &cluster_id) in &slot.assigned {
            if let Some(outcome) = svc.outcome(sid) {
                done.push((idx, sid, cluster_id, outcome));
            }
        }
    }
    // Deterministic settle order (shard, shard-local id).
    done.sort_by_key(|(idx, sid, _, _)| (*idx, *sid));
    for (idx, sid, cluster_id, outcome) in done {
        st.shards[idx].assigned.remove(&sid);
        settle(inner, &mut st, cluster_id, outcome);
    }
}

/// Dispatch queued (backed-off) jobs that are due.
fn dispatch_due(inner: &ClusterInner) {
    let mut st = inner.lock();
    let now = Instant::now();
    let mut later = VecDeque::new();
    while let Some(pd) = st.dispatch_queue.pop_front() {
        if st.jobs.get(&pd.job_id).is_none_or(|j| j.outcome.is_some()) {
            continue; // settled while waiting (e.g. adopted)
        }
        if pd.not_before <= now {
            try_dispatch(inner, &mut st, pd.job_id);
        } else {
            later.push_back(pd);
        }
    }
    st.dispatch_queue = later;
    drop(st);
    inner.cond.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ConfigSpec, ScenarioSpec, TopoSpec, WorkloadSpec};
    use m3_core::prelude::{PathDistribution, SPEC_DIM};
    use m3_nn::prelude::ModelConfig;

    fn tiny_net() -> M3Net {
        let cfg = ModelConfig {
            embed: 16,
            heads: 2,
            layers: 1,
            ff_hidden: 16,
            mlp_hidden: 32,
            ..ModelConfig::repro_default(SPEC_DIM)
        };
        M3Net::new(cfg, 3)
    }

    fn tiny_request(seed: u64, paths: usize) -> EstimateRequest {
        EstimateRequest::new(
            ScenarioSpec {
                topology: TopoSpec::FatTreeSmall { oversub: 2 },
                workload: WorkloadSpec {
                    n_flows: 60,
                    matrix: "B".into(),
                    sizes: "WebServer".into(),
                    sigma: 1.0,
                    max_load: 0.4,
                },
                config: ConfigSpec::default(),
            },
            paths,
            seed,
        )
    }

    fn quick_cluster_config(shards: usize) -> ClusterConfig {
        ClusterConfig {
            shards,
            shard: ServiceConfig {
                workers: 1,
                queue_capacity: 256,
                ..ServiceConfig::default()
            },
            heartbeat_every: Duration::from_millis(3),
            // Generous death threshold: fault-free tests must never
            // false-positive a busy shard on a loaded CI machine.
            suspect_misses: 40,
            dead_misses: 80,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn fault_free_cluster_drains_and_settles_every_job() {
        let cluster = Cluster::start(tiny_net(), quick_cluster_config(3)).unwrap();
        let ids: Vec<u64> = (0..6)
            .map(|s| cluster.submit(tiny_request(s, 2)).unwrap())
            .collect();
        assert!(cluster.wait_idle(Duration::from_secs(120)));
        for id in ids {
            let o = cluster.outcome(id).expect("job settled");
            assert!(matches!(o, JobOutcome::Completed { .. }), "job {id}: {o:?}");
        }
        let stats = cluster.stats();
        assert!(stats.drained(), "{stats:?}");
        assert_eq!(stats.shard_deaths, 0);
        assert_eq!(stats.submitted, 6);
        // Work spread across shards (6 distinct scenarios, 3 shards:
        // all landing on one shard would mean routing collapsed).
        let active = stats.shards.iter().filter(|s| s.dispatched > 0).count();
        assert!(active >= 2, "routing collapsed onto {active} shard(s)");
        cluster.shutdown();
    }

    #[test]
    fn scatter_parent_merges_children_bit_identically() {
        let mut cfg = quick_cluster_config(3);
        cfg.scatter_threshold = 4;
        cfg.scatter_chunk = 2;
        let cluster = Cluster::start(tiny_net(), cfg).unwrap();
        let id = cluster.submit(tiny_request(11, 6)).unwrap();
        assert!(cluster.wait_idle(Duration::from_secs(120)));
        let merged = match cluster.outcome(id).expect("parent settled") {
            JobOutcome::Completed { estimate, .. } => estimate,
            other => panic!("parent not completed: {other:?}"),
        };
        let stats = cluster.stats();
        assert_eq!(stats.submitted, 1 + 3, "parent + 3 children of 2 paths");
        cluster.shutdown();

        // Reference: the same request through a single unsharded service.
        let svc = Service::start(
            M3Estimator::new(tiny_net()),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let rid = svc.submit(tiny_request(11, 6)).unwrap();
        assert!(svc.wait_idle(Duration::from_secs(120)));
        let reference = match svc.outcome(rid).expect("reference settled") {
            JobOutcome::Completed { estimate, .. } => estimate,
            other => panic!("reference not completed: {other:?}"),
        };
        svc.shutdown();
        assert_estimates_bit_identical(&merged, &reference);
    }

    pub(crate) fn assert_estimates_bit_identical(a: &NetworkEstimate, b: &NetworkEstimate) {
        assert_eq!(a.bucket_counts, b.bucket_counts);
        for bucket in 0..NUM_OUTPUT_BUCKETS {
            let (sa, sb) = (&a.bucket_samples[bucket], &b.bucket_samples[bucket]);
            assert_eq!(sa.len(), sb.len(), "bucket {bucket} sample count");
            for (i, (x, y)) in sa.iter().zip(sb).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "bucket {bucket} sample {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn merge_estimates_matches_direct_aggregation() {
        // Partition 6 synthetic path distributions, aggregate each part,
        // merge — must be bit-identical to aggregating all at once.
        let paths: Vec<PathDistribution> = (0..6u64)
            .map(|p| {
                let samples: Vec<(u64, f64)> = (0..40u64)
                    .map(|i| (1000 << (i % 5), 1.0 + ((p * 40 + i) % 17) as f64 / 3.0))
                    .collect();
                PathDistribution::from_samples(&samples)
            })
            .collect();
        let whole = NetworkEstimate::aggregate(&paths);
        let part_a = NetworkEstimate::aggregate(&paths[..2]);
        let part_b = NetworkEstimate::aggregate(&paths[2..5]);
        let part_c = NetworkEstimate::aggregate(&paths[5..]);
        let merged = merge_estimates(&[&part_a, &part_b, &part_c]);
        assert_estimates_bit_identical(&merged, &whole);
    }

    #[test]
    fn merge_outcomes_propagates_failure_and_degradation() {
        let est = NetworkEstimate::aggregate(&[PathDistribution::from_samples(&[
            (1000, 1.5),
            (2000, 2.0),
        ])]);
        let ok = JobOutcome::Completed {
            estimate: est.clone(),
            attempts: 1,
        };
        let degraded = JobOutcome::Degraded {
            estimate: est.clone(),
            attempts: 2,
            via_breaker: true,
        };
        let failed = JobOutcome::Failed {
            error: m3_core::prelude::M3Error::InvalidSpec {
                stage: m3_core::prelude::Stage::Validate,
                reason: "x".into(),
            },
            attempts: 3,
        };
        assert!(matches!(
            merge_outcomes(&[ok.clone(), degraded.clone()]),
            JobOutcome::Degraded {
                attempts: 2,
                via_breaker: true,
                ..
            }
        ));
        assert!(matches!(
            merge_outcomes(&[ok.clone(), failed, ok.clone()]),
            JobOutcome::Failed { attempts: 3, .. }
        ));
        assert!(matches!(
            merge_outcomes(&[ok.clone(), ok]),
            JobOutcome::Completed { attempts: 1, .. }
        ));
    }

    #[test]
    fn shard_health_transitions_and_routability() {
        assert!(ShardHealth::Alive.routable());
        assert!(ShardHealth::Suspect { misses: 3 }.routable());
        assert!(!ShardHealth::Dead.routable());
        assert!(!ShardHealth::Recovering { polls_left: 2 }.routable());
        assert!(ShardHealth::Recovered.routable());
    }
}
