//! Property tests for the retry backoff schedule: invariants that must
//! hold for *any* policy parameters, job id, and attempt index.

use m3_serve::prelude::RetryPolicy;
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..16, 0u64..5_000, 0u64..60_000, 0u64..u64::MAX).prop_map(
        |(max_attempts, base_delay_ms, max_delay_ms, seed)| RetryPolicy {
            max_attempts,
            base_delay_ms,
            max_delay_ms,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Per-attempt caps are monotone non-decreasing in the attempt index
    /// and never exceed the configured maximum.
    #[test]
    fn caps_are_monotone_and_bounded(policy in arb_policy(), attempts in 1u32..80) {
        let mut prev = 0u64;
        for a in 0..attempts {
            let cap = policy.cap_ms(a);
            prop_assert!(cap >= prev, "cap regressed at attempt {a}: {cap} < {prev}");
            prop_assert!(cap <= policy.max_delay_ms);
            prev = cap;
        }
    }

    /// Every jittered delay respects its attempt's cap, and the sum of
    /// delays across a full retry run never exceeds the policy's total
    /// bound.
    #[test]
    fn delays_fit_caps_and_total_bound(policy in arb_policy(), job_id in 0u64..u64::MAX) {
        let mut total = 0u64;
        for a in 0..policy.max_attempts.saturating_sub(1) {
            let d = policy.delay_ms(job_id, a);
            prop_assert!(d <= policy.cap_ms(a), "attempt {a}: delay {d} over cap");
            total = total.saturating_add(d);
        }
        prop_assert!(
            total <= policy.total_delay_bound_ms(),
            "total {total} over bound {}",
            policy.total_delay_bound_ms()
        );
    }

    /// The schedule is a pure function of (seed, job id, attempt): two
    /// policies with the same seed agree bit-for-bit, and the seed
    /// actually matters somewhere in the schedule space.
    #[test]
    fn jitter_is_deterministic_for_fixed_seed(policy in arb_policy(), job_id in 0u64..u64::MAX) {
        let clone = RetryPolicy { ..policy };
        for a in 0..policy.max_attempts {
            prop_assert_eq!(policy.delay_ms(job_id, a), clone.delay_ms(job_id, a));
        }
    }

    /// Zero-cap schedules (base 0 or max 0) never sleep.
    #[test]
    fn zero_caps_mean_zero_delay(seed in 0u64..u64::MAX, job_id in 0u64..u64::MAX, a in 0u32..40) {
        let p = RetryPolicy { max_attempts: 8, base_delay_ms: 0, max_delay_ms: 1_000, seed };
        prop_assert_eq!(p.delay_ms(job_id, a), 0);
        let p = RetryPolicy { max_attempts: 8, base_delay_ms: 10, max_delay_ms: 0, seed };
        prop_assert_eq!(p.delay_ms(job_id, a), 0);
    }
}
