//! Property tests for the retry backoff schedule: invariants that must
//! hold for *any* policy parameters, job id, and attempt index.

use m3_serve::prelude::RetryPolicy;
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..16, 0u64..5_000, 0u64..60_000, 0u64..u64::MAX).prop_map(
        |(max_attempts, base_delay_ms, max_delay_ms, seed)| RetryPolicy {
            max_attempts,
            base_delay_ms,
            max_delay_ms,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Per-attempt caps are monotone non-decreasing in the attempt index
    /// and never exceed the configured maximum.
    #[test]
    fn caps_are_monotone_and_bounded(policy in arb_policy(), attempts in 1u32..80) {
        let mut prev = 0u64;
        for a in 0..attempts {
            let cap = policy.cap_ms(a);
            prop_assert!(cap >= prev, "cap regressed at attempt {a}: {cap} < {prev}");
            prop_assert!(cap <= policy.max_delay_ms);
            prev = cap;
        }
    }

    /// Every jittered delay respects its attempt's cap, and the sum of
    /// delays across a full retry run never exceeds the policy's total
    /// bound.
    #[test]
    fn delays_fit_caps_and_total_bound(policy in arb_policy(), job_id in 0u64..u64::MAX) {
        let mut total = 0u64;
        for a in 0..policy.max_attempts.saturating_sub(1) {
            let d = policy.delay_ms(job_id, a);
            prop_assert!(d <= policy.cap_ms(a), "attempt {a}: delay {d} over cap");
            total = total.saturating_add(d);
        }
        prop_assert!(
            total <= policy.total_delay_bound_ms(),
            "total {total} over bound {}",
            policy.total_delay_bound_ms()
        );
    }

    /// The schedule is a pure function of (seed, job id, attempt): two
    /// policies with the same seed agree bit-for-bit, and the seed
    /// actually matters somewhere in the schedule space.
    #[test]
    fn jitter_is_deterministic_for_fixed_seed(policy in arb_policy(), job_id in 0u64..u64::MAX) {
        let clone = RetryPolicy { ..policy };
        for a in 0..policy.max_attempts {
            prop_assert_eq!(policy.delay_ms(job_id, a), clone.delay_ms(job_id, a));
        }
    }

    /// Zero-cap schedules (base 0 or max 0) never sleep.
    #[test]
    fn zero_caps_mean_zero_delay(seed in 0u64..u64::MAX, job_id in 0u64..u64::MAX, a in 0u32..40) {
        let p = RetryPolicy { max_attempts: 8, base_delay_ms: 0, max_delay_ms: 1_000, seed };
        prop_assert_eq!(p.delay_ms(job_id, a), 0);
        let p = RetryPolicy { max_attempts: 8, base_delay_ms: 10, max_delay_ms: 0, seed };
        prop_assert_eq!(p.delay_ms(job_id, a), 0);
    }
}

// ---------------------------------------------------------------------------
// Rendezvous routing: the invariants the cluster's failover correctness
// rests on. Placement must be a pure function of (key, live set) — no
// order sensitivity — and removing a shard may move only the keys that
// lived on it (~1/N of the keyspace), never reshuffle the survivors'.
// ---------------------------------------------------------------------------

mod routing_props {
    use m3_serve::prelude::{rank, route};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Removing one shard moves exactly the keys that were routed to
        /// it: every other key keeps its shard, and the moved fraction is
        /// in the ballpark of 1/N (loose bounds — it is a hash, not a
        /// quota).
        #[test]
        fn removal_is_minimal_disruption(
            n in 2usize..10,
            dead_pick in 0usize..10,
            key0 in 0u64..u64::MAX,
        ) {
            let live: Vec<usize> = (0..n).collect();
            let dead = dead_pick % n;
            let survivors: Vec<usize> =
                live.iter().copied().filter(|&s| s != dead).collect();
            let total = 512u64;
            let mut moved = 0u64;
            for i in 0..total {
                let key = key0.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let before = route(key, &live).expect("live non-empty");
                let after = route(key, &survivors).expect("survivors non-empty");
                if before == dead {
                    moved += 1;
                    prop_assert!(after != dead, "key {} still routed to dead shard", key);
                } else {
                    prop_assert!(
                        before == after,
                        "key {} moved off surviving shard {}", key, before
                    );
                }
            }
            // Expected moved ≈ total/n. Allow a wide band (hash variance),
            // but catch both "nothing moves" (stale ring state) and
            // "everything moves" (mod-N hashing) failure modes.
            let expect = total / n as u64;
            prop_assert!(
                moved >= expect / 4 && moved <= expect * 4,
                "moved {} of {} with {} shards (expected ~{})",
                moved, total, n, expect
            );
        }

        /// Placement is a pure function of (key, live *set*): the order
        /// the live shards are listed in must not matter, for both the
        /// owner and the whole failover rank order.
        #[test]
        fn placement_is_order_free(
            key in 0u64..u64::MAX,
            n in 1usize..12,
            rot in 0usize..12,
        ) {
            let live: Vec<usize> = (0..n).collect();
            let mut shuffled = live.clone();
            shuffled.rotate_left(rot % n.max(1));
            shuffled.reverse();
            prop_assert_eq!(route(key, &live), route(key, &shuffled));
            prop_assert_eq!(rank(key, &live), rank(key, &shuffled));
        }

        /// The owner is always the head of the rank order, and the rank
        /// order is a permutation of the live set.
        #[test]
        fn rank_head_is_route(key in 0u64..u64::MAX, n in 1usize..12) {
            let live: Vec<usize> = (0..n).collect();
            let order = rank(key, &live);
            prop_assert_eq!(route(key, &live), order.first().copied());
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, live);
        }
    }
}
