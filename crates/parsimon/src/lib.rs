//! # m3-parsimon
//!
//! The Parsimon baseline (Zhao et al., NSDI 2023), reimplemented on top of
//! this workspace's packet-level engine: the network is decomposed into
//! *independent link-level simulations* — one per directed channel — run in
//! parallel, and each flow's end-to-end FCT is estimated as its ideal FCT
//! plus the sum of the extra delays it incurred in every link simulation
//! along its path.
//!
//! This is exactly the assumption m3 improves on (§2.1, §5.3): when the
//! bottleneck is the transport itself (e.g. a small initial window), the
//! per-link decomposition counts the same slowdown once per hop and
//! overestimates tail latency (Fig. 12); at high load, ignoring inter-link
//! correlation degrades accuracy (Fig. 10(b)).
//!
//! Per-link topology (following the Parsimon paper): every flow crossing
//! the target channel enters through a private ingress link whose capacity
//! is the bottleneck of its upstream path segment and leaves through a
//! private egress link with its downstream bottleneck, so only the target
//! channel itself is contended.

use m3_netsim::prelude::*;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-flow Parsimon estimate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParsimonRecord {
    pub id: FlowId,
    pub size: Bytes,
    /// Ideal end-to-end FCT over the full path.
    pub ideal_fct: Nanos,
    /// Estimated FCT = ideal + sum of per-link extra delays.
    pub est_fct: Nanos,
}

impl ParsimonRecord {
    pub fn slowdown(&self) -> f64 {
        self.est_fct as f64 / self.ideal_fct.max(1) as f64
    }
}

/// A flow's traversal of one directed channel, with its up/downstream
/// bottlenecks (used to build the link-level topology).
#[derive(Debug, Clone, Copy)]
struct Crossing {
    flow_idx: u32,
    upstream_bw: Bps,
    downstream_bw: Bps,
}

/// Run the full Parsimon estimation pipeline.
///
/// Note: like the published Rust implementation, accuracy claims in the
/// paper are for DCTCP; this port accepts any of the four CC protocols.
pub fn parsimon_estimate(
    topo: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
) -> Vec<ParsimonRecord> {
    // Group flows by directed channel.
    let mut crossings: HashMap<(LinkId, bool), Vec<Crossing>> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        let mut cur = f.src;
        let bws: Vec<Bps> = f.path.iter().map(|&l| topo.link(l).bandwidth).collect();
        for (hop, &l) in f.path.iter().enumerate() {
            let link = topo.link(l);
            let forward = link.a == cur;
            let upstream_bw = bws[..hop].iter().copied().min().unwrap_or(bws[hop]);
            let downstream_bw = bws[hop + 1..].iter().copied().min().unwrap_or(bws[hop]);
            crossings.entry((l, forward)).or_default().push(Crossing {
                flow_idx: i as u32,
                upstream_bw,
                downstream_bw,
            });
            cur = link.other(cur);
        }
    }
    // Deterministic order for reproducibility.
    let mut channels: Vec<((LinkId, bool), Vec<Crossing>)> = crossings.into_iter().collect();
    channels.sort_by_key(|&((l, fwd), _)| (l.0, !fwd));

    // Simulate each channel independently and collect per-flow extra delays.
    let delay_sets: Vec<Vec<(u32, Nanos)>> = channels
        .par_iter()
        .map(|&((link, _fwd), ref crossing)| simulate_channel(topo, flows, link, crossing, config))
        .collect();

    let mut extra = vec![0u64; flows.len()];
    for set in &delay_sets {
        for &(fi, d) in set {
            extra[fi as usize] += d;
        }
    }
    flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let ideal = topo.ideal_fct(&f.path, f.size, config.mtu);
            ParsimonRecord {
                id: f.id,
                size: f.size,
                ideal_fct: ideal,
                est_fct: ideal + extra[i],
            }
        })
        .collect()
}

/// Simulate one directed channel: all crossing flows contend on a copy of
/// the target link only. Returns (flow index, extra delay beyond the
/// link-local ideal FCT).
fn simulate_channel(
    topo: &Topology,
    flows: &[FlowSpec],
    link: LinkId,
    crossings: &[Crossing],
    config: &SimConfig,
) -> Vec<(u32, Nanos)> {
    let target = topo.link(link);
    let mut mini = Topology::new();
    let a = mini.add_switch();
    let b = mini.add_switch();
    let channel = mini.add_link(a, b, target.bandwidth, target.delay);
    let attach_delay = USEC;
    let mut mini_flows = Vec::with_capacity(crossings.len());
    for (j, c) in crossings.iter().enumerate() {
        let f = &flows[c.flow_idx as usize];
        let src = mini.add_host();
        let l_in = mini.add_link(src, a, c.upstream_bw, attach_delay);
        let dst = mini.add_host();
        let l_out = mini.add_link(b, dst, c.downstream_bw, attach_delay);
        mini_flows.push(FlowSpec {
            id: j as FlowId,
            src,
            dst,
            size: f.size,
            arrival: f.arrival,
            path: vec![l_in, channel, l_out],
        });
    }
    let paths: Vec<Vec<LinkId>> = mini_flows.iter().map(|f| f.path.clone()).collect();
    let out = run_simulation(&mini, *config, mini_flows);
    out.records
        .iter()
        .map(|r| {
            let j = r.id as usize;
            let ideal_local = mini.ideal_fct(&paths[j], r.size, config.mtu);
            let extra = r.fct.saturating_sub(ideal_local);
            (crossings[j].flow_idx, extra)
        })
        .collect()
}

/// Slowdown samples `(size, slowdown)` from Parsimon records, for
/// aggregation with `m3_core`'s estimators.
pub fn slowdown_samples(records: &[ParsimonRecord]) -> Vec<(u64, f64)> {
    records.iter().map(|r| (r.size, r.slowdown())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_workload::prelude::*;

    fn small_workload(n: usize, load: f64) -> (FatTree, Vec<FlowSpec>, SimConfig) {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let sc = Scenario {
            n_flows: n,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: load,
            seed: 21,
        };
        (
            ft.clone(),
            generate(&ft, &routing, &sc).flows,
            SimConfig::default(),
        )
    }

    #[test]
    fn estimates_every_flow() {
        let (ft, flows, cfg) = small_workload(800, 0.4);
        let recs = parsimon_estimate(&ft.topo, &flows, &cfg);
        assert_eq!(recs.len(), flows.len());
        for r in &recs {
            assert!(r.est_fct >= r.ideal_fct, "estimate below ideal");
            assert!(r.slowdown() >= 1.0);
        }
    }

    #[test]
    fn single_link_decomposition_is_nearly_exact() {
        // When every flow crosses exactly one contended link, Parsimon's
        // assumption holds and it should track a full simulation closely.
        let mut topo = Topology::new();
        let s = topo.add_switch();
        let dst = topo.add_host();
        let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
        let mut flows = Vec::new();
        for i in 0..12u32 {
            let h = topo.add_host();
            let l = topo.add_link(h, s, 10 * GBPS, USEC);
            flows.push(FlowSpec {
                id: i,
                src: h,
                dst,
                size: 80_000,
                arrival: i as u64 * 2_000,
                path: vec![l, dst_l],
            });
        }
        let cfg = SimConfig::default();
        let truth = run_simulation(&topo, cfg, flows.clone());
        let est = parsimon_estimate(&topo, &flows, &cfg);
        let t99: f64 = {
            let mut s: Vec<f64> = truth.records.iter().map(|r| r.slowdown()).collect();
            m3_netsim::stats::percentile_unsorted(&mut s, 99.0)
        };
        let e99: f64 = {
            let mut s: Vec<f64> = est.iter().map(|r| r.slowdown()).collect();
            m3_netsim::stats::percentile_unsorted(&mut s, 99.0)
        };
        let err = ((e99 - t99) / t99).abs();
        assert!(err < 0.5, "single-bottleneck p99: est {e99} vs truth {t99}");
    }

    #[test]
    fn overcounts_with_small_window_on_long_paths() {
        // Table 5 / Fig. 12 pathology: window-limited flows on multi-hop
        // paths get their transport-limited slowdown counted once per link.
        let (ft, flows, _) = small_workload(600, 0.3);
        let cfg = SimConfig {
            init_window: 5 * KB, // well below BDP
            ..SimConfig::default()
        };
        let truth = run_simulation(&ft.topo, cfg, flows.clone());
        let est = parsimon_estimate(&ft.topo, &flows, &cfg);
        // Compare mean slowdown of large flows (window-limited ones).
        let truth_mean: f64 = {
            let v: Vec<f64> = truth
                .records
                .iter()
                .filter(|r| r.size > 30_000)
                .map(|r| r.slowdown())
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let est_mean: f64 = {
            let v: Vec<f64> = est
                .iter()
                .filter(|r| r.size > 30_000)
                .map(|r| r.slowdown())
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        assert!(
            est_mean > truth_mean,
            "Parsimon should overcount transport-limited slowdown: {est_mean} vs {truth_mean}"
        );
    }

    #[test]
    fn deterministic() {
        let (ft, flows, cfg) = small_workload(300, 0.4);
        let a = parsimon_estimate(&ft.topo, &flows, &cfg);
        let b = parsimon_estimate(&ft.topo, &flows, &cfg);
        assert_eq!(
            a.iter().map(|r| r.est_fct).collect::<Vec<_>>(),
            b.iter().map(|r| r.est_fct).collect::<Vec<_>>()
        );
    }
}

// ---------------------------------------------------------------------------
// Link clustering
// ---------------------------------------------------------------------------

/// Clustering configuration: channels whose workload signatures quantize to
/// the same key share one representative simulation (the Parsimon paper's
/// clustering optimization). Coarser quantization = faster and less precise.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// Quantization of per-channel flow counts (log2 buckets when true).
    pub log_count_buckets: bool,
    /// Quantization granularity of total offered bytes (bytes per bucket).
    pub bytes_bucket: u64,
    /// Quantization granularity of the arrival span (ns per bucket).
    pub span_bucket: u64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            log_count_buckets: true,
            bytes_bucket: 4 << 20,
            span_bucket: 20_000_000,
        }
    }
}

/// Statistics from a clustered run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusterStats {
    pub total_channels: usize,
    pub simulated_channels: usize,
}

/// Parsimon with link clustering: channels with matching signatures reuse
/// the representative's *slowdown-by-size-rank* profile instead of being
/// simulated. Returns records plus dedup statistics.
pub fn parsimon_estimate_clustered(
    topo: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
    clustering: &ClusteringConfig,
) -> (Vec<ParsimonRecord>, ClusterStats) {
    // Group flows by directed channel (same as the exact path).
    let mut crossings: HashMap<(LinkId, bool), Vec<Crossing>> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        let mut cur = f.src;
        let bws: Vec<Bps> = f.path.iter().map(|&l| topo.link(l).bandwidth).collect();
        for (hop, &l) in f.path.iter().enumerate() {
            let link = topo.link(l);
            let forward = link.a == cur;
            let upstream_bw = bws[..hop].iter().copied().min().unwrap_or(bws[hop]);
            let downstream_bw = bws[hop + 1..].iter().copied().min().unwrap_or(bws[hop]);
            crossings.entry((l, forward)).or_default().push(Crossing {
                flow_idx: i as u32,
                upstream_bw,
                downstream_bw,
            });
            cur = link.other(cur);
        }
    }
    let mut channels: Vec<((LinkId, bool), Vec<Crossing>)> = crossings.into_iter().collect();
    channels.sort_by_key(|&((l, fwd), _)| (l.0, !fwd));
    let total_channels = channels.len();

    // Signature per channel.
    let signature = |link: LinkId, cr: &[Crossing]| -> (u64, u64, u64, u64) {
        let bw = topo.link(link).bandwidth;
        let count = if clustering.log_count_buckets {
            (cr.len() as u64).next_power_of_two()
        } else {
            cr.len() as u64
        };
        let bytes: u64 = cr.iter().map(|c| flows[c.flow_idx as usize].size).sum();
        let span: u64 = {
            let arr: Vec<Nanos> = cr
                .iter()
                .map(|c| flows[c.flow_idx as usize].arrival)
                .collect();
            arr.iter().max().unwrap() - arr.iter().min().unwrap()
        };
        (
            bw,
            count,
            bytes / clustering.bytes_bucket.max(1),
            span / clustering.span_bucket.max(1),
        )
    };

    // Choose representatives.
    let mut rep_of: HashMap<(u64, u64, u64, u64), usize> = HashMap::new();
    let mut members: Vec<(usize, usize)> = Vec::new(); // (channel idx, rep idx)
    for (ci, (link, cr)) in channels
        .iter()
        .map(|&((l, f), ref c)| ((l, f), c))
        .enumerate()
    {
        let sig = signature(link.0, cr);
        let rep = *rep_of.entry(sig).or_insert(ci);
        members.push((ci, rep));
    }
    let reps: std::collections::BTreeSet<usize> = members.iter().map(|&(_, r)| r).collect();

    // Simulate representatives; build slowdown-by-size-rank profiles
    // (extra delay normalized per byte, indexed by size rank quantile).
    let rep_profiles: HashMap<usize, Vec<(u64, Nanos)>> = reps
        .par_iter()
        .map(|&ri| {
            let (link, cr) = &channels[ri];
            let delays = simulate_channel(topo, flows, link.0, cr, config);
            // size-sorted (size, extra delay) profile.
            let mut prof: Vec<(u64, Nanos)> = delays
                .iter()
                .map(|&(fi, d)| (flows[fi as usize].size, d))
                .collect();
            prof.sort_by_key(|&(s, _)| s);
            (ri, prof)
        })
        .collect();

    // Apply: representative channels use their own per-flow delays; member
    // channels map each flow to the representative profile by size rank.
    let mut extra = vec![0u64; flows.len()];
    for &(ci, rep) in &members {
        let (link, cr) = &channels[ci];
        if ci == rep {
            let delays = {
                // Recompute from the stored profile is lossy for the rep's
                // own flows; simulate exact mapping only once (cheap reuse).
                let prof = &rep_profiles[&rep];
                let mut ranked: Vec<usize> = (0..cr.len()).collect();
                ranked.sort_by_key(|&j| flows[cr[j].flow_idx as usize].size);
                ranked
                    .iter()
                    .enumerate()
                    .map(|(rank, &j)| (cr[j].flow_idx, prof[rank.min(prof.len() - 1)].1))
                    .collect::<Vec<_>>()
            };
            for (fi, d) in delays {
                extra[fi as usize] += d;
            }
        } else {
            let prof = &rep_profiles[&rep];
            if prof.is_empty() {
                continue;
            }
            let mut ranked: Vec<usize> = (0..cr.len()).collect();
            ranked.sort_by_key(|&j| flows[cr[j].flow_idx as usize].size);
            for (rank, &j) in ranked.iter().enumerate() {
                // Map by rank quantile into the representative profile.
                let q = rank as f64 / cr.len().max(1) as f64;
                let pi = ((q * prof.len() as f64) as usize).min(prof.len() - 1);
                extra[cr[j].flow_idx as usize] += prof[pi].1;
            }
        }
        let _ = link;
    }
    let records = flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let ideal = topo.ideal_fct(&f.path, f.size, config.mtu);
            ParsimonRecord {
                id: f.id,
                size: f.size,
                ideal_fct: ideal,
                est_fct: ideal + extra[i],
            }
        })
        .collect();
    (
        records,
        ClusterStats {
            total_channels,
            simulated_channels: reps.len(),
        },
    )
}

#[cfg(test)]
mod clustering_tests {
    use super::*;
    use m3_workload::prelude::*;

    fn workload() -> (FatTree, Vec<FlowSpec>, SimConfig) {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let sc = Scenario {
            n_flows: 2_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.4,
            seed: 33,
        };
        (
            ft.clone(),
            generate(&ft, &routing, &sc).flows,
            SimConfig::default(),
        )
    }

    #[test]
    fn clustering_reduces_simulated_channels() {
        let (ft, flows, cfg) = workload();
        let (_, stats) =
            parsimon_estimate_clustered(&ft.topo, &flows, &cfg, &ClusteringConfig::default());
        assert!(stats.simulated_channels < stats.total_channels);
        assert!(stats.simulated_channels > 0);
    }

    #[test]
    fn clustered_estimate_tracks_exact_parsimon() {
        let (ft, flows, cfg) = workload();
        let exact = parsimon_estimate(&ft.topo, &flows, &cfg);
        let (clustered, _) =
            parsimon_estimate_clustered(&ft.topo, &flows, &cfg, &ClusteringConfig::default());
        let p99 = |rs: &[ParsimonRecord]| -> f64 {
            let mut v: Vec<f64> = rs.iter().map(|r| r.slowdown()).collect();
            m3_netsim::stats::percentile_unsorted(&mut v, 99.0)
        };
        let (e, c) = (p99(&exact), p99(&clustered));
        let err = ((c - e) / e).abs();
        assert!(err < 0.5, "clustered p99 {c} vs exact {e} (err {err})");
    }

    #[test]
    fn every_flow_estimated_in_clustered_mode() {
        let (ft, flows, cfg) = workload();
        let (recs, _) =
            parsimon_estimate_clustered(&ft.topo, &flows, &cfg, &ClusteringConfig::default());
        assert_eq!(recs.len(), flows.len());
        for r in &recs {
            assert!(r.est_fct >= r.ideal_fct);
        }
    }
}
