//! Base units used throughout the simulator.
//!
//! Time is measured in integer nanoseconds, sizes in bytes, and link
//! capacities in bits per second. Keeping time integral makes the
//! discrete-event simulation exactly reproducible across platforms; floating
//! point only appears in derived statistics (rates, slowdowns).

/// Simulation time in nanoseconds.
pub type Nanos = u64;

/// Data size in bytes.
pub type Bytes = u64;

/// Link capacity in bits per second.
pub type Bps = u64;

/// One microsecond in [`Nanos`].
pub const USEC: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MSEC: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SEC: Nanos = 1_000_000_000;

/// One kilobyte (10^3 bytes), matching the paper's KB-based flow buckets.
pub const KB: Bytes = 1_000;
/// One megabyte (10^6 bytes).
pub const MB: Bytes = 1_000_000;

/// One gigabit per second.
pub const GBPS: Bps = 1_000_000_000;

/// Time to serialize `bytes` onto a link of capacity `bps`, rounded up to the
/// next nanosecond so a packet is never delivered before its last bit.
#[inline]
pub fn tx_time(bytes: Bytes, bps: Bps) -> Nanos {
    debug_assert!(bps > 0, "link capacity must be positive");
    let bits = (bytes as u128) * 8 * 1_000_000_000;
    bits.div_ceil(bps as u128) as Nanos
}

/// Bytes transmittable in `dur` nanoseconds at `bps` (rounded down).
#[inline]
pub fn bytes_in(dur: Nanos, bps: Bps) -> Bytes {
    ((dur as u128) * (bps as u128) / (8 * 1_000_000_000)) as Bytes
}

/// Convert a rate in bits/sec to bytes/ns as `f64`, for fluid computations.
#[inline]
pub fn bps_to_bytes_per_ns(bps: Bps) -> f64 {
    bps as f64 / 8e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_exact() {
        // 1000 bytes at 10 Gbps = 8000 bits / 10 bits-per-ns = 800 ns.
        assert_eq!(tx_time(1000, 10 * GBPS), 800);
        // 1 byte at 10 Gbps: 8 bits / 10 bits-per-ns = 0.8 ns -> rounds up.
        assert_eq!(tx_time(1, 10 * GBPS), 1);
    }

    #[test]
    fn tx_time_rounds_up() {
        // 125 bytes at 3 Gbps: 1000 bits / 3 bits-per-ns = 333.33 -> 334.
        assert_eq!(tx_time(125, 3 * GBPS), 334);
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let bps = 40 * GBPS;
        let t = tx_time(9000, bps);
        assert!(bytes_in(t, bps) >= 9000);
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(tx_time(0, GBPS), 0);
    }
}
