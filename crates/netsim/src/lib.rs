//! # m3-netsim
//!
//! A packet-level discrete-event data center network simulator: the
//! ground-truth substrate of the m3 reproduction (the paper uses ns-3; see
//! DESIGN.md for the substitution rationale).
//!
//! The simulator models:
//! * store-and-forward switching with per-port FIFO queues and buffer limits,
//! * ECN marking (threshold and RED-style) and PFC backpressure,
//! * four congestion-control protocols: DCTCP, TIMELY, DCQCN and HPCC
//!   (with in-band network telemetry),
//! * per-flow static ECMP routes over arbitrary topologies, with builders
//!   for the paper's fat trees and parking lots,
//! * cumulative ACKs, go-back-N loss recovery, and retransmission timers.
//!
//! ## Quick example
//!
//! ```
//! use m3_netsim::prelude::*;
//!
//! // Two hosts, one switch.
//! let mut topo = Topology::new();
//! let a = topo.add_host();
//! let s = topo.add_switch();
//! let b = topo.add_host();
//! let l1 = topo.add_link(a, s, 10 * GBPS, USEC);
//! let l2 = topo.add_link(s, b, 10 * GBPS, USEC);
//!
//! let flow = FlowSpec { id: 0, src: a, dst: b, size: 30_000, arrival: 0, path: vec![l1, l2] };
//! let out = run_simulation(&topo, SimConfig::default(), vec![flow]);
//! assert_eq!(out.records.len(), 1);
//! assert!(out.records[0].slowdown() >= 1.0);
//! ```

pub mod cc;
pub mod config;
pub mod flow;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod units;

/// Convenient re-exports of the crate's primary types.
pub mod prelude {
    pub use crate::cc::{CcEnv, CcState, IntHop};
    pub use crate::config::{CcParams, CcProtocol, SimConfig};
    pub use crate::flow::{FctRecord, FlowId, FlowSpec};
    pub use crate::routing::Routing;
    pub use crate::sim::{
        run_simulation, ChannelStats, SimBudget, SimBudgetError, SimOutput, Simulator,
    };
    pub use crate::stats::{percentile, percentile_unsorted, relative_error, Ecdf, ErrorSummary};
    pub use crate::topology::{
        FatTree, FatTreeSpec, Link, LinkId, NodeId, NodeKind, ParkingLot, PortId, Topology,
    };
    pub use crate::units::{Bps, Bytes, Nanos, GBPS, KB, MB, MSEC, SEC, USEC};
}
