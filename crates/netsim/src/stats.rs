//! Small statistics toolkit shared by every estimator: percentiles,
//! empirical CDFs, and the paper's headline metric (relative p99 slowdown
//! error, Eq. 4).

use serde::{Deserialize, Serialize};

/// Percentile of a sample with linear interpolation, `p` in [0, 100].
/// Returns NaN on an empty sample.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Sort a sample and compute one percentile.
pub fn percentile_unsorted(values: &mut [f64], p: f64) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile(values, p)
}

/// The percentile grid used throughout the paper: 1%..=100% in 1% steps.
pub const NUM_PERCENTILES: usize = 100;

/// Evaluate the 100-point percentile vector (1..=100) of a sample.
pub fn percentile_vector(sorted: &[f64]) -> [f64; NUM_PERCENTILES] {
    let mut out = [f64::NAN; NUM_PERCENTILES];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = percentile(sorted, (i + 1) as f64);
    }
    out
}

/// Relative estimation error (Eq. 4): (est - truth) / truth.
pub fn relative_error(estimated: f64, ground_truth: f64) -> f64 {
    (estimated - ground_truth) / ground_truth
}

/// An empirical CDF over f64 samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| v.is_finite());
        values.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted: values }
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// P(X <= x).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile at `p` in [0, 100].
    pub fn quantile(&self, p: f64) -> f64 {
        percentile(&self.sorted, p)
    }

    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            f64::NAN
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }
}

/// Summary statistics over a set of relative errors (used by Figs. 10-11, 15-17).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ErrorSummary {
    pub mean_abs: f64,
    pub median_abs: f64,
    pub p25: f64,
    pub p50: f64,
    pub p75: f64,
    pub max_abs: f64,
    pub n: usize,
}

impl ErrorSummary {
    /// Summarize signed relative errors. Mean/median/max are over
    /// magnitudes (the paper "drops the sign" for aggregates); the quartiles
    /// retain sign for boxplots.
    pub fn from_signed(errors: &[f64]) -> Self {
        let mut signed: Vec<f64> = errors.iter().copied().filter(|e| e.is_finite()).collect();
        signed.sort_by(|a, b| a.total_cmp(b));
        let mut mags: Vec<f64> = signed.iter().map(|e| e.abs()).collect();
        mags.sort_by(|a, b| a.total_cmp(b));
        ErrorSummary {
            mean_abs: if mags.is_empty() {
                f64::NAN
            } else {
                mags.iter().sum::<f64>() / mags.len() as f64
            },
            median_abs: percentile(&mags, 50.0),
            p25: percentile(&signed, 25.0),
            p50: percentile(&signed, 50.0),
            p75: percentile(&signed, 75.0),
            max_abs: mags.last().copied().unwrap_or(f64::NAN),
            n: signed.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 50.0) - 5.0).abs() < 1e-12);
        assert!((percentile(&v, 99.0) - 9.9).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 37.0), 7.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_vector_monotone() {
        let v: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let pv = percentile_vector(&v);
        for w in pv.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn ecdf_roundtrip() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert!((e.cdf(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.cdf(3.0), 1.0);
        assert_eq!(e.quantile(100.0), 3.0);
    }

    #[test]
    fn ecdf_filters_nonfinite() {
        let e = Ecdf::new(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn relative_error_sign() {
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(9.0, 10.0) + 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_summary_magnitudes() {
        let s = ErrorSummary::from_signed(&[-0.2, 0.1, 0.3]);
        assert!((s.mean_abs - 0.2).abs() < 1e-12);
        assert_eq!(s.max_abs, 0.3);
        assert_eq!(s.n, 3);
        assert!(s.p25 < s.p75);
    }
}
