//! Flow specifications and per-flow results.

use crate::topology::{LinkId, NodeId, Topology};
use crate::units::{Bytes, Nanos};
use serde::{Deserialize, Serialize};

/// Identifier of a flow, dense within one simulation.
pub type FlowId = u32;

/// A flow to simulate: endpoints, size, arrival time, and its static route
/// (computed once by ECMP and shared by every estimator so all methods see
/// identical routing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    pub id: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    pub size: Bytes,
    pub arrival: Nanos,
    /// Links traversed in order from src to dst (including access links).
    pub path: Vec<LinkId>,
}

impl FlowSpec {
    /// Number of links traversed.
    pub fn hops(&self) -> usize {
        self.path.len()
    }
}

/// Result record for one completed flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FctRecord {
    pub id: FlowId,
    pub size: Bytes,
    pub arrival: Nanos,
    /// Time from arrival until the last data byte reached the receiver.
    pub fct: Nanos,
    /// Unloaded-network FCT over the same path ([`Topology::ideal_fct`]).
    pub ideal_fct: Nanos,
}

impl FctRecord {
    /// FCT slowdown: measured FCT normalized by the ideal FCT (§1). Always
    /// >= ~1 up to integer rounding.
    pub fn slowdown(&self) -> f64 {
        self.fct as f64 / self.ideal_fct.max(1) as f64
    }
}

/// Compute ideal FCTs for a batch of flows against a topology.
pub fn ideal_fcts(topo: &Topology, flows: &[FlowSpec], mtu: Bytes) -> Vec<Nanos> {
    flows
        .iter()
        .map(|f| topo.ideal_fct(&f.path, f.size, mtu))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_is_ratio() {
        let r = FctRecord {
            id: 0,
            size: 1000,
            arrival: 0,
            fct: 3000,
            ideal_fct: 1500,
        };
        assert!((r.slowdown() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_guards_zero_ideal() {
        let r = FctRecord {
            id: 0,
            size: 1,
            arrival: 0,
            fct: 10,
            ideal_fct: 0,
        };
        assert!(r.slowdown().is_finite());
    }
}
