//! Simulator configuration: the network-configuration parameter space of
//! Table 4 (init window, buffer size, PFC, CC protocol and its parameters)
//! plus packet-format constants.

use crate::units::{Bps, Bytes, Nanos, KB, MSEC, USEC};
use serde::{Deserialize, Serialize};

/// Congestion control protocol selector (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CcProtocol {
    Dctcp,
    Timely,
    Dcqcn,
    Hpcc,
}

impl CcProtocol {
    pub const ALL: [CcProtocol; 4] = [
        CcProtocol::Dctcp,
        CcProtocol::Timely,
        CcProtocol::Dcqcn,
        CcProtocol::Hpcc,
    ];

    /// Stable index used for one-hot encoding in m3's spec vector.
    pub fn index(self) -> usize {
        match self {
            CcProtocol::Dctcp => 0,
            CcProtocol::Timely => 1,
            CcProtocol::Dcqcn => 2,
            CcProtocol::Hpcc => 3,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CcProtocol::Dctcp => "dctcp",
            CcProtocol::Timely => "timely",
            CcProtocol::Dcqcn => "dcqcn",
            CcProtocol::Hpcc => "hpcc",
        }
    }
}

/// Congestion-control parameters; only the fields for the selected protocol
/// are consulted. Ranges follow Table 4.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CcParams {
    /// DCTCP marking threshold K.
    pub dctcp_k: Bytes,
    /// DCQCN RED-style marking thresholds (K_min, K_max).
    pub dcqcn_k_min: Bytes,
    pub dcqcn_k_max: Bytes,
    /// HPCC target utilization eta.
    pub hpcc_eta: f64,
    /// HPCC additive-increase rate (paper: RateAI, 500-1000 Mbps).
    pub hpcc_rate_ai: Bps,
    /// TIMELY RTT thresholds.
    pub timely_t_low: Nanos,
    pub timely_t_high: Nanos,
}

impl Default for CcParams {
    fn default() -> Self {
        CcParams {
            dctcp_k: 12 * KB,
            dcqcn_k_min: 30 * KB,
            dcqcn_k_max: 75 * KB,
            hpcc_eta: 0.95,
            hpcc_rate_ai: 750_000_000,
            timely_t_low: 50 * USEC,
            timely_t_high: 120 * USEC,
        }
    }
}

/// Full simulator configuration (Table 4 plus packet constants).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Maximum payload per packet.
    pub mtu: Bytes,
    /// ACK/control frame size on the wire.
    pub ack_size: Bytes,
    /// Initial (and, for rate-based CCs, fixed) window in bytes.
    pub init_window: Bytes,
    /// Per-egress-port buffer limit; arriving packets that would exceed it
    /// are dropped (unless PFC backpressure prevented the arrival).
    pub buffer_size: Bytes,
    /// Whether Priority Flow Control is enabled.
    pub pfc_enabled: bool,
    /// PFC XOFF threshold on per-ingress buffered bytes.
    pub pfc_threshold: Bytes,
    /// Hysteresis: resume when ingress usage falls below threshold - gap.
    pub pfc_resume_gap: Bytes,
    /// Retransmission timeout (go-back-N on expiry). Must exceed the
    /// worst-case queueing RTT (~2.4 ms with 500 kB buffers over 6 hops);
    /// a smaller value causes spurious retransmission cascades under load.
    pub rto: Nanos,
    pub cc: CcProtocol,
    pub params: CcParams,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mtu: 1000,
            ack_size: 64,
            init_window: 15 * KB,
            buffer_size: 400 * KB,
            pfc_enabled: false,
            pfc_threshold: 150 * KB,
            pfc_resume_gap: 30 * KB,
            rto: 5 * MSEC,
            cc: CcProtocol::Dctcp,
            params: CcParams::default(),
        }
    }
}

impl SimConfig {
    /// Number of full-size packets a flow of `size` bytes needs.
    pub fn packets_for(&self, size: Bytes) -> u64 {
        size.max(1).div_ceil(self.mtu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_indices_are_distinct() {
        let mut seen = [false; 4];
        for p in CcProtocol::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }

    #[test]
    fn packets_for_rounds_up() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.packets_for(1), 1);
        assert_eq!(cfg.packets_for(1000), 1);
        assert_eq!(cfg.packets_for(1001), 2);
        assert_eq!(cfg.packets_for(0), 1);
    }

    #[test]
    fn default_config_is_within_table4_ranges() {
        let c = SimConfig::default();
        assert!((5 * KB..=30 * KB).contains(&c.init_window));
        assert!((200 * KB..=500 * KB).contains(&c.buffer_size));
        assert!((5 * KB..=20 * KB).contains(&c.params.dctcp_k));
        assert!((0.70..=0.95).contains(&c.params.hpcc_eta));
    }
}
