//! The packet-level discrete-event simulation engine.
//!
//! A single binary-heap event queue drives per-port packet serialization,
//! store-and-forward switching, ECN marking, PFC backpressure, per-flow
//! congestion control, cumulative ACKs, and go-back-N loss recovery. This is
//! the repository's stand-in for ns-3: every estimator in the workspace is
//! validated against the FCT slowdowns this engine produces.
//!
//! Design notes:
//! * Time is integer nanoseconds; ties are broken by a monotonically
//!   increasing event sequence number, so runs are exactly reproducible.
//! * Flows carry precomputed static routes ([`FlowSpec::path`]); ACKs travel
//!   the reverse route. All estimators therefore see identical routing.
//! * FCT is recorded at the receiver when the last in-order byte arrives,
//!   and normalized by [`Topology::ideal_fct`] over the same path.

use crate::cc::{AckEvent, CcEnv, CcState, IntHop, IntVec};
use crate::config::{CcProtocol, SimConfig};
use crate::flow::{FctRecord, FlowId, FlowSpec};
use crate::topology::{LinkId, NodeKind, Topology};
use crate::units::{tx_time, Bytes, Nanos};
use m3_telemetry::trace::TraceSpan;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Index of a directed channel: `link.index() * 2 + (forward ? 0 : 1)`.
type PortIdx = u32;

#[inline]
fn port_idx(link: LinkId, forward: bool) -> PortIdx {
    link.0 * 2 + if forward { 0 } else { 1 }
}

#[inline]
fn port_link(p: PortIdx) -> LinkId {
    LinkId(p / 2)
}

#[inline]
fn port_forward(p: PortIdx) -> bool {
    p.is_multiple_of(2)
}

/// A packet on the wire. Data packets flow src -> dst along the path; ACKs
/// flow back along the reverse path. INT telemetry is boxed so the non-HPCC
/// fast path stays allocation-free.
#[derive(Debug, Clone)]
struct Packet {
    flow: FlowId,
    /// First payload byte offset (data) or echoed offset (ACK).
    seq: u64,
    /// Bytes on the wire.
    size: u32,
    is_ack: bool,
    /// ECN congestion-experienced mark (set by switches on data packets).
    ecn: bool,
    /// Sender timestamp, echoed by the receiver for RTT sampling.
    tx_time: Nanos,
    /// Data: index of the next link in `path` to traverse.
    /// ACK: index of the next link in `path` to traverse in reverse.
    hop: u16,
    /// Cumulative ACK (ACK packets only).
    ack_seq: u64,
    /// Directed port this packet most recently arrived on (PFC accounting);
    /// `u32::MAX` when host-originated.
    ingress: PortIdx,
    /// In-band telemetry accumulated hop by hop (HPCC only).
    int: Option<Box<IntVec>>,
    /// Strict-priority class (0 = highest). ACKs inherit the flow's class.
    prio: u8,
}

#[derive(Debug)]
enum Ev {
    FlowArrive(FlowId),
    /// The port finished serializing its current packet.
    PortFree(PortIdx),
    /// A packet reached the far end of a directed port.
    Deliver(PortIdx, Packet),
    /// Pacing timer for a rate-limited flow.
    PaceSend(FlowId),
    /// Retransmission-timer check.
    Timeout(FlowId),
    /// PFC pause/resume taking effect at the upstream transmitter.
    PfcSet(PortIdx, bool),
}

struct HeapEv {
    time: Nanos,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// State of one directed channel.
#[derive(Debug, Default)]
struct Port {
    /// Per-priority FIFO queues; index 0 is served first (strict priority).
    queues: Vec<std::collections::VecDeque<Packet>>,
    qbytes: Bytes,
    busy: bool,
    /// PFC pause asserted by the downstream node.
    paused: bool,
    /// Cumulative transmitted bytes (INT counter).
    tx_bytes: u64,
    /// Bytes buffered at the *downstream* node that arrived via this port
    /// and have not yet been forwarded (PFC ingress accounting).
    ingress_bytes: Bytes,
    /// Whether we have an outstanding PAUSE toward this port's transmitter.
    pause_sent: bool,
    /// Telemetry: peak queue occupancy observed.
    max_qbytes: Bytes,
    /// Telemetry: cumulative serialization (busy) time.
    busy_ns: Nanos,
    /// Telemetry: packets dropped at this channel's queue.
    drops: u64,
}

#[derive(Debug)]
struct Flow {
    spec: FlowSpec,
    env: CcEnv,
    cc: CcState,
    /// Bytes handed to the NIC (includes retransmissions rewinding it).
    next_seq: u64,
    /// Cumulative bytes acknowledged.
    acked: u64,
    /// Receiver's next expected in-order byte.
    recv_next: u64,
    dup_acks: u32,
    pace_next: Nanos,
    pace_scheduled: bool,
    /// Retransmission deadline; a single pending Timeout event lazily chases it.
    timer_expiry: Nanos,
    timer_scheduled: bool,
    started: bool,
    fct_recorded: bool,
    /// Strict-priority class (0 = highest; default for all flows).
    prio: u8,
}

impl Flow {
    fn send_done(&self) -> bool {
        self.next_seq >= self.spec.size
    }
    fn fully_acked(&self) -> bool {
        self.acked >= self.spec.size
    }
}

/// Per-directed-channel telemetry collected during a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelStats {
    /// Total bytes transmitted.
    pub tx_bytes: u64,
    /// Peak queue occupancy.
    pub max_qbytes: Bytes,
    /// Cumulative time spent serializing packets.
    pub busy_ns: Nanos,
    /// Packets dropped at this channel's queue.
    pub drops: u64,
}

impl ChannelStats {
    /// Utilization over a horizon (clamped to [0, 1]).
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        (self.busy_ns as f64 / horizon.max(1) as f64).min(1.0)
    }
}

/// Resource ceiling for a packet-level run. Unlike [`Simulator::set_deadline`]
/// (which truncates at a *simulated* time and returns partial results), a
/// budget is an error condition: exceeding it aborts the run with a typed
/// [`SimBudgetError`] so callers can distinguish "finished" from "runaway".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBudget {
    /// Maximum events popped from the queue.
    pub max_events: u64,
    /// Optional wall-clock ceiling, checked every few thousand events.
    pub max_wall: Option<Duration>,
}

impl SimBudget {
    pub const UNLIMITED: SimBudget = SimBudget {
        max_events: u64::MAX,
        max_wall: None,
    };

    pub fn events(max_events: u64) -> Self {
        SimBudget {
            max_events,
            max_wall: None,
        }
    }

    pub fn with_wall(mut self, limit: Duration) -> Self {
        self.max_wall = Some(limit);
        self
    }
}

impl Default for SimBudget {
    /// Generous but bounded; a packet sim that pops a billion events has
    /// almost certainly diverged.
    fn default() -> Self {
        SimBudget {
            max_events: 1_000_000_000,
            max_wall: None,
        }
    }
}

/// Typed budget violation from [`Simulator::try_run`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimBudgetError {
    EventBudgetExceeded {
        limit: u64,
        recorded: usize,
        total: usize,
    },
    WallClockExceeded {
        limit: Duration,
        events: u64,
        recorded: usize,
        total: usize,
    },
}

impl fmt::Display for SimBudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimBudgetError::EventBudgetExceeded {
                limit,
                recorded,
                total,
            } => write!(
                f,
                "packet sim event budget exceeded ({limit} events; {recorded}/{total} flows done)"
            ),
            SimBudgetError::WallClockExceeded {
                limit,
                events,
                recorded,
                total,
            } => write!(
                f,
                "packet sim wall-clock budget exceeded ({limit:?} after {events} events; \
                 {recorded}/{total} flows done)"
            ),
        }
    }
}

impl std::error::Error for SimBudgetError {}

/// Full simulation outcome.
#[derive(Debug, Clone)]
pub struct SimOutput {
    pub records: Vec<FctRecord>,
    /// Total data packets delivered (for event-throughput benchmarks).
    pub data_packets_delivered: u64,
    /// Packets dropped at full buffers.
    pub drops: u64,
    /// Simulated time at which the last flow completed.
    pub end_time: Nanos,
    /// Telemetry per directed channel, indexed `link.index() * 2 +
    /// (forward ? 0 : 1)`.
    pub channel_stats: Vec<ChannelStats>,
    /// Events popped from the event queue over the whole run.
    pub events: u64,
    /// Data packets ECN-marked at switch egress enqueue.
    pub ecn_marks: u64,
    /// PFC pause assertions sent (resume messages are not counted).
    pub pfc_pauses: u64,
}

impl SimOutput {
    /// Queue-depth high-water mark across every directed channel, bytes.
    pub fn max_queue_bytes(&self) -> u64 {
        self.channel_stats
            .iter()
            .map(|c| c.max_qbytes)
            .max()
            .unwrap_or(0)
    }

    /// Emit this run's counters into a telemetry registry under the
    /// `netsim.` prefix. All values are deterministic for a fixed
    /// workload (the simulator's RNG is fix-seeded); the queue high-water
    /// gauge is raised, never lowered, so repeated runs accumulate a max.
    pub fn record_into(&self, metrics: &m3_telemetry::MetricsRegistry) {
        metrics.counter("netsim.events").add(self.events);
        metrics
            .counter("netsim.data_packets_delivered")
            .add(self.data_packets_delivered);
        metrics.counter("netsim.drops").add(self.drops);
        metrics.counter("netsim.ecn_marks").add(self.ecn_marks);
        metrics.counter("netsim.pfc_pauses").add(self.pfc_pauses);
        metrics
            .gauge("netsim.queue_hwm_bytes")
            .set_max(self.max_queue_bytes() as f64);
    }
}

/// Time-series probe attached to a running simulator: per-directed-port
/// queue depth and utilization plus global ECN/PFC/drop counters, sampled
/// over *virtual* time at a fixed stride and emitted as counter-track
/// events on a tracing span. Track names are precomputed `Arc<str>`s so a
/// sample is a handful of atomic pushes; an unprobed run costs one branch
/// per event.
///
/// Samples are deterministic for a fixed scenario: they fire at stride
/// boundaries of the (deterministic) virtual clock and carry only values
/// derived from simulation state.
struct SimTraceProbe {
    span: TraceSpan,
    stride_ns: Nanos,
    next_sample: Nanos,
    /// Per directed port (`netsim.qbytes.l{link}.{fwd|rev}`).
    qbytes_tracks: Vec<Arc<str>>,
    /// Per directed port (`netsim.util.l{link}.{fwd|rev}`), cumulative
    /// busy fraction since t=0.
    util_tracks: Vec<Arc<str>>,
    ecn_track: Arc<str>,
    pfc_track: Arc<str>,
    drops_track: Arc<str>,
}

/// The simulator. Construct with a topology, configuration and flow set,
/// then call [`Simulator::run`].
pub struct Simulator<'a> {
    topo: &'a Topology,
    config: SimConfig,
    flows: Vec<Flow>,
    ports: Vec<Port>,
    events: BinaryHeap<HeapEv>,
    event_seq: u64,
    now: Nanos,
    rng: SmallRng,
    recorded: usize,
    records: Vec<FctRecord>,
    data_packets: u64,
    drops: u64,
    ecn_marks: u64,
    pfc_pauses: u64,
    /// Hard stop (safety net); `None` runs to completion.
    deadline: Option<Nanos>,
    /// Resource ceiling; exceeding it is an error (see [`SimBudget`]).
    budget: SimBudget,
    /// Optional virtual-time counter probe (see [`Simulator::set_trace_probe`]).
    probe: Option<SimTraceProbe>,
}

impl<'a> Simulator<'a> {
    pub fn new(topo: &'a Topology, config: SimConfig, flows: Vec<FlowSpec>) -> Self {
        let n_flows = flows.len();
        let flows = flows
            .into_iter()
            .map(|spec| {
                assert!(!spec.path.is_empty(), "flow {} has an empty path", spec.id);
                assert!(
                    spec.path.len() <= u16::MAX as usize,
                    "path too long for hop counter"
                );
                let env = flow_env(topo, &spec, &config);
                let cc = CcState::new(config.cc, &env);
                Flow {
                    spec,
                    env,
                    cc,
                    next_seq: 0,
                    acked: 0,
                    recv_next: 0,
                    dup_acks: 0,
                    pace_next: 0,
                    pace_scheduled: false,
                    timer_expiry: 0,
                    timer_scheduled: false,
                    started: false,
                    fct_recorded: false,
                    prio: 0,
                }
            })
            .collect::<Vec<_>>();
        let mut sim = Simulator {
            topo,
            config,
            flows,
            ports: (0..topo.link_count() * 2)
                .map(|_| Port::default())
                .collect(),
            events: BinaryHeap::new(),
            event_seq: 0,
            now: 0,
            rng: SmallRng::seed_from_u64(0x6D33_5EED),
            recorded: 0,
            records: Vec::with_capacity(n_flows),
            data_packets: 0,
            drops: 0,
            ecn_marks: 0,
            pfc_pauses: 0,
            deadline: None,
            budget: SimBudget::UNLIMITED,
            probe: None,
        };
        for i in 0..sim.flows.len() {
            let t = sim.flows[i].spec.arrival;
            sim.push(t, Ev::FlowArrive(i as FlowId));
        }
        sim
    }

    /// Abort the run at `t` even if flows remain (used as a safety net by
    /// callers that construct potentially overloaded scenarios).
    pub fn set_deadline(&mut self, t: Nanos) {
        self.deadline = Some(t);
    }

    /// Bound the run by event count and wall clock. Exceeding the budget
    /// makes [`Simulator::try_run`] return an error (and [`Simulator::run`]
    /// panic); the default is [`SimBudget::UNLIMITED`].
    pub fn set_budget(&mut self, budget: SimBudget) {
        self.budget = budget;
    }

    /// Attach a flight-recorder probe: every `stride_ns` of *virtual* time
    /// the run emits counter-track events on `span` — per-directed-port
    /// queue depth (`netsim.qbytes.l{n}.{fwd|rev}`) and cumulative
    /// utilization (`netsim.util...`), plus global `netsim.ecn_marks`,
    /// `netsim.pfc_pauses` and `netsim.drops`. The span is closed when the
    /// run finishes. Samples are deterministic for a fixed scenario; a
    /// disabled span's events are dropped at the recorder, so attaching a
    /// noop-backed span is harmless.
    pub fn set_trace_probe(&mut self, span: TraceSpan, stride_ns: Nanos) {
        let stride_ns = stride_ns.max(1);
        let n_ports = self.ports.len();
        let dir = |p: usize| {
            if port_forward(p as PortIdx) {
                "fwd"
            } else {
                "rev"
            }
        };
        let qbytes_tracks = (0..n_ports)
            .map(|p| {
                Arc::from(format!(
                    "netsim.qbytes.l{}.{}",
                    port_link(p as PortIdx).0,
                    dir(p)
                ))
            })
            .collect();
        let util_tracks = (0..n_ports)
            .map(|p| {
                Arc::from(format!(
                    "netsim.util.l{}.{}",
                    port_link(p as PortIdx).0,
                    dir(p)
                ))
            })
            .collect();
        self.probe = Some(SimTraceProbe {
            span,
            stride_ns,
            next_sample: stride_ns,
            qbytes_tracks,
            util_tracks,
            ecn_track: Arc::from("netsim.ecn_marks"),
            pfc_track: Arc::from("netsim.pfc_pauses"),
            drops_track: Arc::from("netsim.drops"),
        });
    }

    /// Emit probe samples for every stride boundary the clock just crossed
    /// (collapsed to the last one — port state is only observed at event
    /// times, so intermediate boundaries would repeat the same values).
    #[inline]
    fn maybe_probe(&mut self) {
        let Some(p) = &mut self.probe else { return };
        if self.now < p.next_sample {
            return;
        }
        let boundary = (self.now / p.stride_ns) * p.stride_ns;
        for (i, port) in self.ports.iter().enumerate() {
            p.span
                .counter(&p.qbytes_tracks[i], boundary, port.qbytes as f64);
            let util = (port.busy_ns as f64 / self.now.max(1) as f64).min(1.0);
            p.span.counter(&p.util_tracks[i], boundary, util);
        }
        p.span
            .counter(&p.ecn_track, boundary, self.ecn_marks as f64);
        p.span
            .counter(&p.pfc_track, boundary, self.pfc_pauses as f64);
        p.span.counter(&p.drops_track, boundary, self.drops as f64);
        p.next_sample = boundary.saturating_add(p.stride_ns);
    }

    /// Assign strict-priority classes per flow (0 = highest; the default).
    /// Switch egress ports serve class 0 exhaustively before class 1, and
    /// so on — the paper's "priority classes" future-work item (§3.6).
    /// `priorities` must be indexed by flow position in the input order.
    pub fn set_priorities(&mut self, priorities: &[u8]) {
        assert_eq!(priorities.len(), self.flows.len(), "one class per flow");
        for (f, &p) in self.flows.iter_mut().zip(priorities) {
            f.prio = p;
        }
    }

    fn push(&mut self, time: Nanos, ev: Ev) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        self.event_seq += 1;
        self.events.push(HeapEv {
            time,
            seq: self.event_seq,
            ev,
        });
    }

    /// Run to completion and return all flow records. Panics if a budget was
    /// set with [`Simulator::set_budget`] and exceeded; use
    /// [`Simulator::try_run`] for a fallible run.
    pub fn run(self) -> SimOutput {
        match self.try_run() {
            Ok(out) => out,
            Err(e) => panic!("packet simulation aborted: {e}"),
        }
    }

    /// Run to completion, aborting with a typed error if the configured
    /// [`SimBudget`] is exceeded.
    pub fn try_run(mut self) -> Result<SimOutput, SimBudgetError> {
        let total = self.flows.len();
        let mut popped: u64 = 0;
        let start = self.budget.max_wall.map(|_| std::time::Instant::now());
        while let Some(HeapEv { time, ev, .. }) = self.events.pop() {
            popped += 1;
            if popped > self.budget.max_events {
                return Err(SimBudgetError::EventBudgetExceeded {
                    limit: self.budget.max_events,
                    recorded: self.recorded,
                    total,
                });
            }
            if popped.is_multiple_of(8192) {
                if let (Some(limit), Some(start)) = (self.budget.max_wall, start) {
                    if start.elapsed() > limit {
                        return Err(SimBudgetError::WallClockExceeded {
                            limit,
                            events: popped,
                            recorded: self.recorded,
                            total,
                        });
                    }
                }
            }
            self.now = time;
            self.maybe_probe();
            if let Some(d) = self.deadline {
                if time > d {
                    break;
                }
            }
            match ev {
                Ev::FlowArrive(f) => self.on_flow_arrive(f),
                Ev::PortFree(p) => self.on_port_free(p),
                Ev::Deliver(p, pkt) => self.on_deliver(p, pkt),
                Ev::PaceSend(f) => {
                    self.flows[f as usize].pace_scheduled = false;
                    self.try_send(f);
                }
                Ev::Timeout(f) => self.on_timeout(f),
                Ev::PfcSet(p, paused) => self.on_pfc_set(p, paused),
            }
            if self.recorded == self.flows.len() {
                break;
            }
        }
        Ok(SimOutput {
            records: std::mem::take(&mut self.records),
            data_packets_delivered: self.data_packets,
            drops: self.drops,
            end_time: self.now,
            channel_stats: self
                .ports
                .iter()
                .map(|p| ChannelStats {
                    tx_bytes: p.tx_bytes,
                    max_qbytes: p.max_qbytes,
                    busy_ns: p.busy_ns,
                    drops: p.drops,
                })
                .collect(),
            events: popped,
            ecn_marks: self.ecn_marks,
            pfc_pauses: self.pfc_pauses,
        })
    }

    fn on_flow_arrive(&mut self, f: FlowId) {
        let flow = &mut self.flows[f as usize];
        flow.started = true;
        flow.pace_next = self.now;
        flow.timer_expiry = self.now + self.config.rto;
        self.arm_timer(f);
        self.try_send(f);
    }

    /// Push as many packets as window, pacing, and remaining data allow.
    fn try_send(&mut self, f: FlowId) {
        loop {
            let flow = &self.flows[f as usize];
            if flow.send_done() || flow.fully_acked() {
                return;
            }
            let inflight = flow.next_seq - flow.acked;
            let window = flow.cc.window();
            if (inflight as f64) >= window {
                return; // window-limited; ACKs will resume us
            }
            let rate = flow.cc.rate_bps();
            if rate.is_finite() && self.now < flow.pace_next {
                let when = flow.pace_next;
                if !flow.pace_scheduled {
                    self.flows[f as usize].pace_scheduled = true;
                    self.push(when, Ev::PaceSend(f));
                }
                return;
            }
            // Emit one packet.
            let flow = &mut self.flows[f as usize];
            let payload = (flow.spec.size - flow.next_seq).min(self.config.mtu) as u32;
            let seq = flow.next_seq;
            flow.next_seq += payload as u64;
            if rate.is_finite() {
                let pace_gap = (payload as f64 * 8e9 / rate).ceil() as Nanos;
                flow.pace_next = self.now.max(flow.pace_next) + pace_gap;
            }
            let int = if self.config.cc == CcProtocol::Hpcc {
                Some(Box::new(IntVec::default()))
            } else {
                None
            };
            let first_link = flow.spec.path[0];
            let src = flow.spec.src;
            let pkt = Packet {
                flow: f,
                seq,
                size: payload,
                is_ack: false,
                ecn: false,
                tx_time: self.now,
                hop: 1,
                ack_seq: 0,
                ingress: u32::MAX,
                int,
                prio: flow.prio,
            };
            let link = self.topo.link(first_link);
            let p = port_idx(first_link, link.a == src);
            self.enqueue(p, pkt);
        }
    }

    /// Enqueue a packet on a directed port, applying buffer limits, ECN
    /// marking, and PFC ingress accounting; start transmission if idle.
    fn enqueue(&mut self, p: PortIdx, mut pkt: Packet) {
        let from_switch = {
            let link = self.topo.link(port_link(p));
            let src_node = if port_forward(p) { link.a } else { link.b };
            self.topo.kind(src_node) == NodeKind::Switch
        };
        let port = &mut self.ports[p as usize];
        // Buffer limits apply at switch egress only: a host's NIC queue holds
        // its own windowed backlog (it cannot "drop" data it has not sent).
        if from_switch && port.qbytes + pkt.size as u64 > self.config.buffer_size {
            self.drops += 1;
            port.drops += 1;
            // PFC ingress accounting for the dropped packet's origin is not
            // incremented (the packet never occupies the buffer).
            return;
        }
        // ECN marking at switch egress enqueue, on data packets.
        if from_switch && !pkt.is_ack {
            let already_marked = pkt.ecn;
            match self.config.cc {
                CcProtocol::Dctcp | CcProtocol::Hpcc => {
                    if port.qbytes >= self.config.params.dctcp_k {
                        pkt.ecn = true;
                    }
                }
                CcProtocol::Dcqcn => {
                    let kmin = self.config.params.dcqcn_k_min;
                    let kmax = self.config.params.dcqcn_k_max;
                    if port.qbytes >= kmax {
                        pkt.ecn = true;
                    } else if port.qbytes > kmin {
                        let prob = (port.qbytes - kmin) as f64 / (kmax - kmin).max(1) as f64;
                        if self.rng.gen::<f64>() < prob {
                            pkt.ecn = true;
                        }
                    }
                }
                CcProtocol::Timely => {}
            }
            if pkt.ecn && !already_marked {
                self.ecn_marks += 1;
            }
        }
        // PFC ingress accounting: the packet now occupies buffer space at
        // this node, attributed to the port it arrived on.
        if self.config.pfc_enabled && pkt.ingress != u32::MAX {
            let ing = &mut self.ports[pkt.ingress as usize];
            ing.ingress_bytes += pkt.size as u64;
            if ing.ingress_bytes >= self.config.pfc_threshold && !ing.pause_sent {
                ing.pause_sent = true;
                self.pfc_pauses += 1;
                let delay = self.topo.link(port_link(pkt.ingress)).delay;
                let target = pkt.ingress;
                self.push(self.now + delay, Ev::PfcSet(target, true));
            }
        }
        let port = &mut self.ports[p as usize];
        port.qbytes += pkt.size as u64;
        port.max_qbytes = port.max_qbytes.max(port.qbytes);
        let prio = pkt.prio as usize;
        if port.queues.len() <= prio {
            port.queues.resize_with(prio + 1, Default::default);
        }
        port.queues[prio].push_back(pkt);
        if !port.busy && !port.paused {
            self.start_tx(p);
        }
    }

    /// Begin serializing the head-of-line packet of an idle, unpaused port.
    fn start_tx(&mut self, p: PortIdx) {
        let link = *self.topo.link(port_link(p));
        let port = &mut self.ports[p as usize];
        debug_assert!(!port.busy && !port.paused);
        // Strict priority: serve the lowest-index non-empty class first.
        let Some(mut pkt) = port.queues.iter_mut().find_map(|q| q.pop_front()) else {
            return;
        };
        port.qbytes -= pkt.size as u64;
        port.busy = true;
        port.tx_bytes += pkt.size as u64;
        let qlen_after = port.qbytes;
        let tx_bytes = port.tx_bytes;
        // Release PFC ingress accounting now that the packet leaves this node.
        if self.config.pfc_enabled && pkt.ingress != u32::MAX {
            let resume_below = self
                .config
                .pfc_threshold
                .saturating_sub(self.config.pfc_resume_gap);
            let ing_delay = self.topo.link(port_link(pkt.ingress)).delay;
            let ing = &mut self.ports[pkt.ingress as usize];
            ing.ingress_bytes = ing.ingress_bytes.saturating_sub(pkt.size as u64);
            if ing.pause_sent && ing.ingress_bytes < resume_below {
                ing.pause_sent = false;
                let target = pkt.ingress;
                self.push(self.now + ing_delay, Ev::PfcSet(target, false));
            }
        }
        // INT telemetry at dequeue (HPCC).
        if let Some(int) = pkt.int.as_deref_mut() {
            if !pkt.is_ack {
                int.push(IntHop {
                    qlen: qlen_after,
                    tx_bytes,
                    ts: self.now,
                    bandwidth: link.bandwidth,
                });
            }
        }
        let ser = tx_time(pkt.size as u64, link.bandwidth);
        self.ports[p as usize].busy_ns += ser;
        self.push(self.now + ser, Ev::PortFree(p));
        self.push(self.now + ser + link.delay, Ev::Deliver(p, pkt));
    }

    fn on_port_free(&mut self, p: PortIdx) {
        let port = &mut self.ports[p as usize];
        port.busy = false;
        if !port.paused && port.qbytes > 0 {
            self.start_tx(p);
        }
    }

    fn on_pfc_set(&mut self, p: PortIdx, paused: bool) {
        let port = &mut self.ports[p as usize];
        port.paused = paused;
        if !paused && !port.busy && port.qbytes > 0 {
            self.start_tx(p);
        }
    }

    fn on_deliver(&mut self, p: PortIdx, mut pkt: Packet) {
        let link = self.topo.link(port_link(p));
        let node = if port_forward(p) { link.b } else { link.a };
        let flow_idx = pkt.flow as usize;
        if !pkt.is_ack {
            // Data packet.
            let at_dst = node == self.flows[flow_idx].spec.dst;
            if at_dst {
                self.data_packets += 1;
                self.receive_data(p, pkt);
            } else {
                // Forward along the path.
                let hop = pkt.hop as usize;
                let path = &self.flows[flow_idx].spec.path;
                debug_assert!(hop < path.len(), "data packet overran its path");
                let next_link = path[hop];
                pkt.hop += 1;
                pkt.ingress = p;
                let l = self.topo.link(next_link);
                let out = port_idx(next_link, l.a == node);
                self.enqueue(out, pkt);
            }
        } else {
            let at_src = node == self.flows[flow_idx].spec.src;
            if at_src {
                self.receive_ack(pkt);
            } else {
                // ACKs traverse the path in reverse; hop is the index of
                // the link just traversed, so the next reverse-order link
                // is path[hop - 1].
                let hop = pkt.hop as usize;
                debug_assert!(hop > 0, "ACK overran the reverse path");
                let path = &self.flows[flow_idx].spec.path;
                let next_link = path[hop - 1];
                pkt.hop -= 1;
                pkt.ingress = p;
                let l = self.topo.link(next_link);
                let out = port_idx(next_link, l.a == node);
                self.enqueue(out, pkt);
            }
        }
    }

    /// Receiver-side data processing: cumulative in-order delivery, FCT
    /// recording, and ACK generation.
    fn receive_data(&mut self, _p: PortIdx, pkt: Packet) {
        let flow = &mut self.flows[pkt.flow as usize];
        if pkt.seq == flow.recv_next {
            flow.recv_next += pkt.size as u64;
        }
        // Out-of-order (go-back-N): discard payload, still ACK cumulatively.
        if flow.recv_next >= flow.spec.size && !flow.fct_recorded {
            flow.fct_recorded = true;
            let fct = self.now - flow.spec.arrival;
            let ideal = self
                .topo
                .ideal_fct(&flow.spec.path, flow.spec.size, self.config.mtu);
            self.records.push(FctRecord {
                id: flow.spec.id,
                size: flow.spec.size,
                arrival: flow.spec.arrival,
                fct,
                ideal_fct: ideal,
            });
            self.recorded += 1;
        }
        let flow = &self.flows[pkt.flow as usize];
        let path_len = flow.spec.path.len();
        let dst = flow.spec.dst;
        let ack = Packet {
            flow: pkt.flow,
            seq: pkt.seq,
            size: self.config.ack_size as u32,
            is_ack: true,
            ecn: pkt.ecn, // ECN echo
            tx_time: pkt.tx_time,
            hop: (path_len - 1) as u16,
            ack_seq: flow.recv_next,
            ingress: u32::MAX,
            int: pkt.int,
            prio: flow.prio,
        };
        let last_link = flow.spec.path[path_len - 1];
        let l = self.topo.link(last_link);
        let out = port_idx(last_link, l.a == dst);
        self.enqueue(out, ack);
    }

    /// Sender-side ACK processing: CC update, fast retransmit, timer re-arm.
    fn receive_ack(&mut self, pkt: Packet) {
        let f = pkt.flow;
        let flow = &mut self.flows[f as usize];
        if flow.fully_acked() {
            return;
        }
        let newly = pkt.ack_seq.saturating_sub(flow.acked);
        if newly > 0 {
            flow.acked = pkt.ack_seq;
            // Go-back-N may have rewound next_seq while earlier transmissions
            // were still in flight; never let the ACK clock run ahead of it.
            flow.next_seq = flow.next_seq.max(flow.acked);
            flow.dup_acks = 0;
            flow.timer_expiry = self.now + self.config.rto;
            let rtt = self.now.saturating_sub(pkt.tx_time).max(1);
            let empty: &[IntHop] = &[];
            let int = pkt.int.as_deref().map(|v| v.as_slice()).unwrap_or(empty);
            let ack_ev = AckEvent {
                now: self.now,
                bytes_acked: newly,
                ecn: pkt.ecn,
                rtt,
                sent_seq: flow.next_seq,
                acked_seq: flow.acked,
                int,
            };
            let env = flow.env;
            flow.cc.on_ack(&ack_ev, &env);
        } else {
            flow.dup_acks += 1;
            if flow.dup_acks >= 3 {
                // Go-back-N fast retransmit.
                flow.dup_acks = 0;
                flow.next_seq = flow.acked;
            }
        }
        self.try_send(f);
    }

    /// Lazily-chasing retransmission timer (at most one pending event per flow).
    fn arm_timer(&mut self, f: FlowId) {
        let flow = &mut self.flows[f as usize];
        if !flow.timer_scheduled {
            flow.timer_scheduled = true;
            let when = flow.timer_expiry;
            self.push(when.max(self.now), Ev::Timeout(f));
        }
    }

    fn on_timeout(&mut self, f: FlowId) {
        let flow = &mut self.flows[f as usize];
        flow.timer_scheduled = false;
        if flow.fully_acked() || !flow.started {
            return;
        }
        if self.now < flow.timer_expiry {
            // Progress happened since this event was scheduled; chase.
            self.arm_timer(f);
            return;
        }
        // Genuine timeout: go-back-N and collapse the window.
        flow.next_seq = flow.acked;
        flow.dup_acks = 0;
        flow.timer_expiry = self.now + self.config.rto;
        let env = flow.env;
        flow.cc.on_timeout(&env);
        self.arm_timer(f);
        self.try_send(f);
    }
}

/// Derive a flow's CC environment: base RTT = unloaded one-MTU data
/// traversal plus unloaded ACK return.
fn flow_env(topo: &Topology, spec: &FlowSpec, config: &SimConfig) -> CcEnv {
    let mut rtt: Nanos = 0;
    for &l in &spec.path {
        let link = topo.link(l);
        rtt += 2 * link.delay
            + tx_time(config.mtu, link.bandwidth)
            + tx_time(config.ack_size, link.bandwidth);
    }
    CcEnv {
        base_rtt: rtt.max(1),
        nic_bps: topo.host_nic_bandwidth(spec.src),
        mtu: config.mtu,
        init_window: config.init_window,
        params: config.params,
    }
}

/// Convenience: run one simulation and return records sorted by flow id.
pub fn run_simulation(topo: &Topology, config: SimConfig, flows: Vec<FlowSpec>) -> SimOutput {
    let mut out = Simulator::new(topo, config, flows).run();
    out.records.sort_by_key(|r| r.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CcParams;
    use crate::topology::{NodeId, ParkingLot};
    use crate::units::{GBPS, KB, USEC};

    fn two_host_topo() -> (Topology, NodeId, NodeId, LinkId) {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let s = topo.add_switch();
        let b = topo.add_host();
        let l1 = topo.add_link(a, s, 10 * GBPS, USEC);
        let l2 = topo.add_link(s, b, 10 * GBPS, USEC);
        let _ = l1;
        (topo, a, b, l2)
    }

    fn flow(
        topo: &Topology,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        size: Bytes,
        at: Nanos,
    ) -> FlowSpec {
        // Direct path: both hosts hang off the single switch.
        let (sw_s, l_s) = topo.access_switch(src);
        let (sw_d, l_d) = topo.access_switch(dst);
        assert_eq!(sw_s, sw_d);
        FlowSpec {
            id,
            src,
            dst,
            size,
            arrival: at,
            path: vec![l_s, l_d],
        }
    }

    #[test]
    fn single_flow_matches_ideal_fct() {
        let (topo, a, b, _) = two_host_topo();
        let f = flow(&topo, 0, a, b, 30 * KB, 0);
        let cfg = SimConfig {
            init_window: 64 * KB, // never window-limited
            ..SimConfig::default()
        };
        let out = run_simulation(&topo, cfg, vec![f]);
        assert_eq!(out.records.len(), 1);
        let r = out.records[0];
        // An unloaded flow should track the ideal FCT closely (ACK overheads
        // and rounding give a tiny slack).
        assert!(
            r.slowdown() < 1.05,
            "unloaded slowdown {} too high (fct={} ideal={})",
            r.slowdown(),
            r.fct,
            r.ideal_fct
        );
        assert_eq!(out.drops, 0);
    }

    #[test]
    fn window_limited_small_flow_completes() {
        let (topo, a, b, _) = two_host_topo();
        let f = flow(&topo, 0, a, b, 500, 0);
        let out = run_simulation(&topo, SimConfig::default(), vec![f]);
        assert_eq!(out.records.len(), 1);
        assert!(out.records[0].slowdown() >= 0.99);
    }

    #[test]
    fn two_flows_share_bottleneck_fairly() {
        let (topo, a, b, _) = two_host_topo();
        // Two long flows from the same host compete for the same NIC: each
        // should take roughly twice the unloaded time.
        let size = 500 * KB;
        let f1 = flow(&topo, 0, a, b, size, 0);
        let f2 = flow(&topo, 1, a, b, size, 0);
        let cfg = SimConfig {
            init_window: 30 * KB,
            ..SimConfig::default()
        };
        let out = run_simulation(&topo, cfg, vec![f1, f2]);
        assert_eq!(out.records.len(), 2);
        for r in &out.records {
            assert!(
                (1.6..2.6).contains(&r.slowdown()),
                "expected ~2x slowdown, got {}",
                r.slowdown()
            );
        }
    }

    #[test]
    fn later_flow_unaffected_by_earlier_completion() {
        let (topo, a, b, _) = two_host_topo();
        let f1 = flow(&topo, 0, a, b, 10 * KB, 0);
        // Arrives long after f1 finished.
        let f2 = flow(&topo, 1, a, b, 10 * KB, 10_000_000);
        let out = run_simulation(&topo, SimConfig::default(), vec![f1, f2]);
        let s1 = out.records[0].slowdown();
        let s2 = out.records[1].slowdown();
        assert!(
            (s1 - s2).abs() < 0.05,
            "isolated flows should match: {s1} vs {s2}"
        );
    }

    #[test]
    fn all_protocols_complete_a_congested_scenario() {
        for cc in CcProtocol::ALL {
            let pl = ParkingLot::build(2, 10 * GBPS, 10 * GBPS, USEC);
            let mut pl = pl;
            let bg_src = pl.attach_background_host(0, 10 * GBPS, USEC);
            let bg_dst = pl.attach_background_host(2, 10 * GBPS, USEC);
            let topo = pl.topo.clone();
            let fg_path = pl.foreground_path();
            let (_, bg_l1) = topo.access_switch(bg_src);
            let (_, bg_l2) = topo.access_switch(bg_dst);
            let mut bg_path = vec![bg_l1];
            bg_path.extend_from_slice(&pl.path_links);
            bg_path.push(bg_l2);
            let mut flows = Vec::new();
            for i in 0..20 {
                flows.push(FlowSpec {
                    id: i,
                    src: pl.fg_src,
                    dst: pl.fg_dst,
                    size: 50 * KB,
                    arrival: i as u64 * 10 * USEC,
                    path: fg_path.clone(),
                });
            }
            for i in 0..20 {
                flows.push(FlowSpec {
                    id: 20 + i,
                    src: bg_src,
                    dst: bg_dst,
                    size: 50 * KB,
                    arrival: i as u64 * 10 * USEC + USEC,
                    path: bg_path.clone(),
                });
            }
            let cfg = SimConfig {
                cc,
                params: CcParams::default(),
                ..SimConfig::default()
            };
            let out = run_simulation(&topo, cfg, flows);
            assert_eq!(out.records.len(), 40, "{} lost flows", cc.name());
            for r in &out.records {
                assert!(
                    r.slowdown() >= 0.99,
                    "{}: slowdown {}",
                    cc.name(),
                    r.slowdown()
                );
                // TIMELY's additive recovery is slow under 40-way overload;
                // several-hundred-x tails are expected there, divergence is not.
                assert!(
                    r.slowdown() < 500.0,
                    "{}: runaway slowdown {}",
                    cc.name(),
                    r.slowdown()
                );
            }
        }
    }

    #[test]
    fn determinism() {
        let (topo, a, b, _) = two_host_topo();
        let flows: Vec<FlowSpec> = (0..50)
            .map(|i| flow(&topo, i, a, b, (i as u64 + 1) * 1500, i as u64 * 3 * USEC))
            .collect();
        let o1 = run_simulation(&topo, SimConfig::default(), flows.clone());
        let o2 = run_simulation(&topo, SimConfig::default(), flows);
        let s1: Vec<_> = o1.records.iter().map(|r| r.fct).collect();
        let s2: Vec<_> = o2.records.iter().map(|r| r.fct).collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn trace_probe_emits_deterministic_counters_without_perturbing_results() {
        use m3_telemetry::trace::{TraceCtx, TraceEventKind, TraceRecorder};

        let (topo, a, b, _) = two_host_topo();
        let flows: Vec<FlowSpec> = (0..20)
            .map(|i| flow(&topo, i, a, b, 30 * KB, i as u64 * USEC))
            .collect();
        let plain = run_simulation(&topo, SimConfig::default(), flows.clone());

        let run_probed = || {
            let rec = TraceRecorder::new(1 << 16);
            let ctx = TraceCtx::new(rec.clone(), 42);
            let root = ctx.root("netsim");
            let mut sim = Simulator::new(&topo, SimConfig::default(), flows.clone());
            sim.set_trace_probe(root.child("probe"), 10 * USEC);
            let out = sim.try_run().unwrap();
            root.finish();
            (out, rec.snapshot())
        };
        let (out1, snap1) = run_probed();
        let (out2, snap2) = run_probed();

        let fct = |o: &SimOutput| o.records.iter().map(|r| r.fct).collect::<Vec<_>>();
        assert_eq!(fct(&plain), fct(&out1), "probe must not perturb the run");
        assert_eq!(fct(&out1), fct(&out2));

        let counters = |s: &m3_telemetry::trace::FlightRecording| {
            s.events
                .iter()
                .filter_map(|e| match &e.kind {
                    TraceEventKind::Counter { track, value } => {
                        Some((track.to_string(), e.vts, value.to_bits()))
                    }
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let c1 = counters(&snap1);
        assert!(!c1.is_empty(), "stride must fire on this workload");
        assert_eq!(c1, counters(&snap2), "probe samples must be deterministic");
        assert!(c1.iter().all(|(_, vts, _)| vts % (10 * USEC) == 0));
        assert!(c1.iter().any(|(t, _, _)| t.starts_with("netsim.qbytes.l")));
        assert!(c1.iter().any(|(t, _, _)| t.starts_with("netsim.util.l")));
        assert!(c1.iter().any(|(t, _, _)| t == "netsim.ecn_marks"));
        assert_eq!(snap1.dropped, 0, "ring must have headroom in this test");
    }

    #[test]
    fn event_budget_aborts_with_typed_error() {
        let (topo, a, b, _) = two_host_topo();
        let flows: Vec<FlowSpec> = (0..20).map(|i| flow(&topo, i, a, b, 100 * KB, 0)).collect();
        let mut sim = Simulator::new(&topo, SimConfig::default(), flows);
        sim.set_budget(SimBudget::events(50));
        let err = sim.try_run().expect_err("50 events cannot finish 20 flows");
        assert!(matches!(
            err,
            SimBudgetError::EventBudgetExceeded {
                limit: 50,
                total: 20,
                ..
            }
        ));
    }

    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        let (topo, a, b, _) = two_host_topo();
        let flows: Vec<FlowSpec> = (0..10)
            .map(|i| flow(&topo, i, a, b, 30 * KB, i as u64 * USEC))
            .collect();
        let plain = run_simulation(&topo, SimConfig::default(), flows.clone());
        let mut sim = Simulator::new(&topo, SimConfig::default(), flows);
        sim.set_budget(SimBudget::default());
        let mut budgeted = sim.try_run().expect("default budget is generous");
        budgeted.records.sort_by_key(|r| r.id);
        let a: Vec<_> = plain.records.iter().map(|r| r.fct).collect();
        let b: Vec<_> = budgeted.records.iter().map(|r| r.fct).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn congestion_increases_slowdown() {
        let (topo, a, b, _) = two_host_topo();
        // One flow alone.
        let solo = run_simulation(
            &topo,
            SimConfig::default(),
            vec![flow(&topo, 0, a, b, 100 * KB, 0)],
        );
        // Same flow with nine competitors.
        let mut flows: Vec<FlowSpec> = (0..10).map(|i| flow(&topo, i, a, b, 100 * KB, 0)).collect();
        flows[0].id = 0;
        let busy = run_simulation(&topo, SimConfig::default(), flows);
        let s_solo = solo.records[0].slowdown();
        let s_busy = busy.records.iter().map(|r| r.slowdown()).sum::<f64>() / 10.0;
        assert!(
            s_busy > 2.0 * s_solo,
            "sharing 10 ways should slow flows down: {s_solo} vs {s_busy}"
        );
    }

    #[test]
    fn drops_recovered_by_retransmission() {
        // Incast into a tiny switch buffer forces drops; flows must still
        // complete via RTO / go-back-N.
        let mut topo = Topology::new();
        let s = topo.add_switch();
        let dst = topo.add_host();
        let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
        let mut flows = Vec::new();
        for i in 0..8u32 {
            let h = topo.add_host();
            let l = topo.add_link(h, s, 10 * GBPS, USEC);
            flows.push(FlowSpec {
                id: i,
                src: h,
                dst,
                size: 40 * KB,
                arrival: 0,
                path: vec![l, dst_l],
            });
        }
        let cfg = SimConfig {
            buffer_size: 5 * KB,
            init_window: 30 * KB,
            ..SimConfig::default()
        };
        let out = run_simulation(&topo, cfg, flows);
        assert_eq!(
            out.records.len(),
            8,
            "all flows must complete despite drops"
        );
        assert!(out.drops > 0, "scenario should actually drop packets");
    }

    #[test]
    fn pfc_prevents_drops() {
        // Same incast with and without PFC: drops with PFC off, none with
        // PFC on (backpressure pauses the upstream senders).
        let build = || {
            let mut topo = Topology::new();
            let s = topo.add_switch();
            let dst = topo.add_host();
            let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
            let mut flows = Vec::new();
            for i in 0..8u32 {
                let h = topo.add_host();
                let l = topo.add_link(h, s, 10 * GBPS, USEC);
                flows.push(FlowSpec {
                    id: i,
                    src: h,
                    dst,
                    size: 60 * KB,
                    arrival: 0,
                    path: vec![l, dst_l],
                });
            }
            (topo, flows)
        };
        // Buffer sizing: 8 flows x 30 KB windows = 240 KB offered, so the
        // 150 KB buffer overflows without PFC; with PFC each of the 8
        // ingress ports is paused at 10 KB plus ~1 BDP in flight (~100 KB
        // total), which fits.
        let base = SimConfig {
            buffer_size: 150 * KB,
            pfc_threshold: 10 * KB,
            pfc_resume_gap: 5 * KB,
            init_window: 30 * KB,
            cc: CcProtocol::Dcqcn,
            ..SimConfig::default()
        };
        let (topo, flows) = build();
        let without = run_simulation(
            &topo,
            SimConfig {
                pfc_enabled: false,
                ..base
            },
            flows,
        );
        assert!(without.drops > 0, "incast must overflow the buffer");
        let (topo, flows) = build();
        let with = run_simulation(
            &topo,
            SimConfig {
                pfc_enabled: true,
                ..base
            },
            flows,
        );
        assert_eq!(with.records.len(), 8);
        assert_eq!(with.drops, 0, "PFC should eliminate drops");
        assert!(with.pfc_pauses > 0, "PFC must have actually paused senders");
        assert_eq!(without.pfc_pauses, 0, "no pauses with PFC disabled");
    }

    #[test]
    fn telemetry_counters_populated_and_recorded() {
        // DCTCP incast: deep enough queues to guarantee ECN marks, plus a
        // tight buffer for drops. The run's counters must round-trip into
        // a metrics registry exactly.
        let mut topo = Topology::new();
        let s = topo.add_switch();
        let dst = topo.add_host();
        let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
        let mut flows = Vec::new();
        for i in 0..16u32 {
            let h = topo.add_host();
            let l = topo.add_link(h, s, 10 * GBPS, USEC);
            flows.push(FlowSpec {
                id: i,
                src: h,
                dst,
                size: 64 * KB,
                arrival: 0,
                path: vec![l, dst_l],
            });
        }
        let out = run_simulation(&topo, SimConfig::default(), flows);
        assert_eq!(out.records.len(), 16);
        assert!(out.events > 0, "event counter must be populated");
        assert!(out.ecn_marks > 0, "16-to-1 DCTCP incast must mark ECN");
        assert!(out.max_queue_bytes() > 0);

        let reg = m3_telemetry::MetricsRegistry::new();
        out.record_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("netsim.events"), Some(out.events));
        assert_eq!(
            snap.counter("netsim.data_packets_delivered"),
            Some(out.data_packets_delivered)
        );
        assert_eq!(snap.counter("netsim.drops"), Some(out.drops));
        assert_eq!(snap.counter("netsim.ecn_marks"), Some(out.ecn_marks));
        assert_eq!(snap.counter("netsim.pfc_pauses"), Some(out.pfc_pauses));
        assert_eq!(
            snap.gauge("netsim.queue_hwm_bytes"),
            Some(out.max_queue_bytes() as f64)
        );
    }

    #[test]
    fn incast_tail_exceeds_median() {
        // 16-to-1 incast through one switch: classic queueing tail.
        let mut topo = Topology::new();
        let s = topo.add_switch();
        let dst = topo.add_host();
        let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
        let mut flows = Vec::new();
        for i in 0..16u32 {
            let h = topo.add_host();
            let l = topo.add_link(h, s, 10 * GBPS, USEC);
            flows.push(FlowSpec {
                id: i,
                src: h,
                dst,
                size: 64 * KB,
                arrival: 0,
                path: vec![l, dst_l],
            });
        }
        let out = run_simulation(&topo, SimConfig::default(), flows);
        assert_eq!(out.records.len(), 16);
        let mut sldn: Vec<f64> = out.records.iter().map(|r| r.slowdown()).collect();
        sldn.sort_by(|x, y| x.total_cmp(y));
        assert!(sldn[15] > 4.0, "incast tail should be heavily slowed");
    }
}
