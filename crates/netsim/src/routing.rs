//! Shortest-path ECMP routing.
//!
//! Routing tables are computed per destination *switch* (the access switch of
//! the destination host), which keeps memory proportional to
//! `#switches-with-hosts x #nodes` instead of `#hosts x #nodes`. Flows pick
//! one next hop per node with a deterministic hash of (flow id, node), the
//! standard per-flow ECMP model (§3.2 assumes static per-flow routes).

use crate::topology::{LinkId, NodeId, NodeKind, Topology};
use std::collections::{HashMap, VecDeque};

/// Per-destination-switch next-hop sets.
#[derive(Debug, Clone)]
pub struct Routing {
    /// tables[dst_switch][node] = sorted list of (next node, via link) on
    /// shortest paths toward dst_switch.
    tables: HashMap<NodeId, Vec<Vec<(NodeId, LinkId)>>>,
}

impl Routing {
    /// Compute next-hop tables toward every switch that has at least one
    /// attached host (plus any switches in `extra_dsts`).
    pub fn new(topo: &Topology) -> Self {
        let mut dst_switches: Vec<NodeId> = topo.hosts().map(|h| topo.access_switch(h).0).collect();
        dst_switches.sort_unstable();
        dst_switches.dedup();

        let mut tables = HashMap::with_capacity(dst_switches.len());
        for dst in dst_switches {
            tables.insert(dst, Self::bfs_next_hops(topo, dst));
        }
        Routing { tables }
    }

    /// Reverse BFS from `dst`, keeping every neighbor one step closer to the
    /// destination as an ECMP candidate. Host nodes never forward traffic,
    /// so BFS does not expand through them.
    fn bfs_next_hops(topo: &Topology, dst: NodeId) -> Vec<Vec<(NodeId, LinkId)>> {
        let n = topo.node_count();
        let mut dist = vec![u32::MAX; n];
        dist[dst.index()] = 0;
        let mut queue = VecDeque::from([dst]);
        while let Some(v) = queue.pop_front() {
            // Do not route *through* hosts.
            if topo.kind(v) == NodeKind::Host && v != dst {
                continue;
            }
            for &(u, _) in topo.neighbors(v) {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = dist[v.index()] + 1;
                    queue.push_back(u);
                }
            }
        }
        let mut next = vec![Vec::new(); n];
        for (v, kind) in topo.nodes() {
            if dist[v.index()] == u32::MAX || v == dst {
                continue;
            }
            let _ = kind;
            for &(u, l) in topo.neighbors(v) {
                if dist[u.index()] != u32::MAX
                    && dist[u.index()] + 1 == dist[v.index()]
                    && (topo.kind(u) != NodeKind::Host || u == dst)
                {
                    next[v.index()].push((u, l));
                }
            }
            next[v.index()].sort_unstable();
        }
        next
    }

    /// ECMP candidates at `node` toward `dst_switch`.
    pub fn next_hops(&self, dst_switch: NodeId, node: NodeId) -> &[(NodeId, LinkId)] {
        self.tables
            .get(&dst_switch)
            .map(|t| t[node.index()].as_slice())
            .unwrap_or(&[])
    }

    /// The static route of a flow: the full link sequence from `src` host to
    /// `dst` host, choosing among ECMP candidates with a per-(flow, node)
    /// hash. Deterministic for a given flow id.
    pub fn flow_path(
        &self,
        topo: &Topology,
        flow_id: u64,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<LinkId> {
        assert_ne!(src, dst, "flow endpoints must differ");
        let (dst_switch, dst_access) = topo.access_switch(dst);
        let mut path = Vec::with_capacity(8);
        let (mut cur, first_link) = topo.access_switch(src);
        path.push(first_link);
        let mut hops = 0usize;
        while cur != dst_switch {
            let choices = self.next_hops(dst_switch, cur);
            assert!(
                !choices.is_empty(),
                "no route from {cur:?} to {dst_switch:?}"
            );
            let pick = (ecmp_hash(flow_id, cur.0 as u64) % choices.len() as u64) as usize;
            let (nxt, link) = choices[pick];
            path.push(link);
            cur = nxt;
            hops += 1;
            assert!(hops <= topo.node_count(), "routing loop detected");
        }
        path.push(dst_access);
        path
    }
}

/// SplitMix64-style deterministic hash used for ECMP picks.
#[inline]
pub fn ecmp_hash(flow_id: u64, salt: u64) -> u64 {
    let mut z = flow_id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FatTree, FatTreeSpec, ParkingLot};
    use crate::units::{GBPS, USEC};

    #[test]
    fn parking_lot_single_route() {
        let pl = ParkingLot::build(4, 40 * GBPS, 10 * GBPS, USEC);
        let routing = Routing::new(&pl.topo);
        let path = routing.flow_path(&pl.topo, 7, pl.fg_src, pl.fg_dst);
        assert_eq!(path, pl.foreground_path());
    }

    #[test]
    fn fat_tree_routes_are_shortest_and_valid() {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let hosts = ft.all_hosts();
        let (src, dst) = (hosts[0], hosts[255]);
        let path = routing.flow_path(&ft.topo, 42, src, dst);
        // host->tor->agg->spine->agg->tor->host = 6 links across pods.
        assert_eq!(path.len(), 6);
        // Path is connected: walk it.
        let mut cur = src;
        for &l in &path {
            cur = ft.topo.link(l).other(cur);
        }
        assert_eq!(cur, dst);
    }

    #[test]
    fn intra_rack_routes_have_two_links() {
        let ft = FatTree::build(FatTreeSpec::small(1));
        let routing = Routing::new(&ft.topo);
        let path = routing.flow_path(&ft.topo, 1, ft.hosts[0][0], ft.hosts[0][1]);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn ecmp_spreads_flows() {
        let ft = FatTree::build(FatTreeSpec::small(1));
        let routing = Routing::new(&ft.topo);
        let hosts = ft.all_hosts();
        let (src, dst) = (hosts[0], hosts[200]);
        let mut distinct = std::collections::HashSet::new();
        for id in 0..256u64 {
            distinct.insert(routing.flow_path(&ft.topo, id, src, dst));
        }
        // 2 aggs x 8 spines x 2 aggs of distinct shortest paths exist; ECMP
        // hashing should find many of them.
        assert!(distinct.len() > 4, "ECMP found only {}", distinct.len());
    }

    #[test]
    fn routes_are_deterministic() {
        let ft = FatTree::build(FatTreeSpec::small(4));
        let routing = Routing::new(&ft.topo);
        let hosts = ft.all_hosts();
        let p1 = routing.flow_path(&ft.topo, 99, hosts[3], hosts[77]);
        let p2 = routing.flow_path(&ft.topo, 99, hosts[3], hosts[77]);
        assert_eq!(p1, p2);
    }
}
