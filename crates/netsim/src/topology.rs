//! Network topology: nodes, links, and builders for the topologies used in
//! the paper (fat trees for full-network experiments, parking lots for
//! path-level experiments).
//!
//! Links are full duplex: a [`Link`] owns two independent directed channels,
//! addressed by a [`PortId`] = (link, direction). The simulator serializes
//! packets per directed channel.

use crate::units::{Bps, Bytes, Nanos, GBPS, USEC};
use serde::{Deserialize, Serialize};

/// Identifier of a node (host or switch). Dense indices into `Topology::nodes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an undirected link. Dense indices into `Topology::links`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A directed channel of a link: `forward` carries traffic from `link.a` to
/// `link.b`, the reverse direction from `link.b` to `link.a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId {
    pub link: LinkId,
    pub forward: bool,
}

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is. Hosts source and sink flows; switches forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    Host,
    Switch,
}

/// An undirected full-duplex link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    pub a: NodeId,
    pub b: NodeId,
    /// Capacity of each direction, bits per second.
    pub bandwidth: Bps,
    /// One-way propagation delay.
    pub delay: Nanos,
}

impl Link {
    /// The endpoint reached when traversing the link from `from`.
    #[inline]
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else {
            debug_assert_eq!(from, self.b);
            self.a
        }
    }

    /// The directed port carrying traffic out of `from`.
    #[inline]
    pub fn port_from(&self, id: LinkId, from: NodeId) -> PortId {
        PortId {
            link: id,
            forward: from == self.a,
        }
    }
}

/// A network topology: nodes, links, adjacency.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<NodeKind>,
    links: Vec<Link>,
    /// adjacency[v] = (neighbor, link) pairs.
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.adj.push(Vec::new());
        id
    }

    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host)
    }

    pub fn add_switch(&mut self) -> NodeId {
        self.add_node(NodeKind::Switch)
    }

    pub fn add_link(&mut self, a: NodeId, b: NodeId, bandwidth: Bps, delay: Nanos) -> LinkId {
        assert!(a != b, "self-loops are not allowed");
        assert!(bandwidth > 0, "link bandwidth must be positive");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            bandwidth,
            delay,
        });
        self.adj[a.index()].push((b, id));
        self.adj[b.index()].push((a, id));
        id
    }

    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()]
    }

    #[inline]
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[n.index()]
    }

    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, NodeKind)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &k)| (NodeId(i as u32), k))
    }

    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter_map(|(id, k)| match k {
            NodeKind::Host => Some(id),
            NodeKind::Switch => None,
        })
    }

    /// The switch a host hangs off, and the access link. Hosts in every
    /// topology this crate builds have exactly one link.
    pub fn access_switch(&self, host: NodeId) -> (NodeId, LinkId) {
        debug_assert_eq!(self.kind(host), NodeKind::Host);
        let nbrs = self.neighbors(host);
        assert_eq!(
            nbrs.len(),
            1,
            "host {host:?} must have exactly one access link"
        );
        nbrs[0]
    }

    /// The capacity of a host's NIC (its single access link).
    pub fn host_nic_bandwidth(&self, host: NodeId) -> Bps {
        let (_, l) = self.access_switch(host);
        self.link(l).bandwidth
    }

    /// Minimum bandwidth along a sequence of links.
    pub fn bottleneck_bandwidth(&self, path: &[LinkId]) -> Bps {
        path.iter()
            .map(|&l| self.link(l).bandwidth)
            .min()
            .expect("path must be non-empty")
    }

    /// Analytic unloaded flow completion time for a flow of `size` bytes over
    /// `path`, with per-packet store-and-forward pipelining of `mtu`-byte
    /// packets. This is the denominator of FCT slowdown everywhere in the
    /// repo, so the same definition is used by netsim, flowSim, Parsimon and
    /// m3.
    ///
    /// The flow is chopped into ceil(size/mtu) packets. The last packet's
    /// arrival time at the receiver equals the sum of propagation delays,
    /// plus the serialization of the whole flow on the slowest link, plus the
    /// serialization of one packet on every other link (pipelining).
    pub fn ideal_fct(&self, path: &[LinkId], size: Bytes, mtu: Bytes) -> Nanos {
        assert!(
            !path.is_empty(),
            "flow path must traverse at least one link"
        );
        let size = size.max(1);
        let n_pkts = size.div_ceil(mtu);
        let last_pkt = size - (n_pkts - 1) * mtu; // bytes in final packet
        let min_bw = self.bottleneck_bandwidth(path);
        let mut t: Nanos = 0;
        // Whole flow serialized on the bottleneck link.
        t += crate::units::tx_time(size, min_bw);
        let mut seen_bottleneck = false;
        for &l in path {
            let link = self.link(l);
            t += link.delay;
            if link.bandwidth == min_bw && !seen_bottleneck {
                seen_bottleneck = true; // already counted in full
            } else {
                // Pipelined: only the final packet's serialization adds latency.
                t += crate::units::tx_time(last_pkt, link.bandwidth);
            }
        }
        t
    }
}

/// Parameters for a two-tier-pod fat-tree (host – ToR – Agg – Spine), the
/// topology family used in §5.1/§5.2/§5.3 of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTreeSpec {
    pub pods: usize,
    pub racks_per_pod: usize,
    pub hosts_per_rack: usize,
    /// Aggregation switches per pod; every ToR in the pod links to each.
    pub aggs_per_pod: usize,
    /// Spine switches; every agg links to each spine.
    pub spines: usize,
    pub host_bandwidth: Bps,
    /// ToR–Agg and Agg–Spine link capacity.
    pub fabric_bandwidth: Bps,
    /// Per-hop propagation delay.
    pub hop_delay: Nanos,
}

impl FatTreeSpec {
    /// The 32-rack, 256-host topology of §5.2: two pods of 16 racks, eight
    /// hosts per rack, 10 Gbps hosts, 40 Gbps fabric. The paper reflects
    /// oversubscription in the spine count; `oversub` of 1, 2 or 4 maps to
    /// 8, 4 or 2 spines.
    pub fn small(oversub: usize) -> Self {
        assert!(
            matches!(oversub, 1 | 2 | 4),
            "paper uses 1-to-1, 2-to-1 or 4-to-1 oversubscription"
        );
        FatTreeSpec {
            pods: 2,
            racks_per_pod: 16,
            hosts_per_rack: 8,
            aggs_per_pod: 2,
            spines: 8 / oversub,
            host_bandwidth: 10 * GBPS,
            fabric_bandwidth: 40 * GBPS,
            hop_delay: USEC,
        }
    }

    /// The 384-rack, 6144-host topology of §5.3 (Meta fabric inspired):
    /// eight pods of 48 racks, 16 hosts per rack, 2-to-1 core
    /// oversubscription by default.
    pub fn large() -> Self {
        FatTreeSpec {
            pods: 8,
            racks_per_pod: 48,
            hosts_per_rack: 16,
            aggs_per_pod: 4,
            spines: 24,
            host_bandwidth: 10 * GBPS,
            fabric_bandwidth: 40 * GBPS,
            hop_delay: USEC,
        }
    }

    pub fn total_hosts(&self) -> usize {
        self.pods * self.racks_per_pod * self.hosts_per_rack
    }

    pub fn total_racks(&self) -> usize {
        self.pods * self.racks_per_pod
    }
}

/// A built fat tree, retaining the index structure so workloads can address
/// racks and hosts.
#[derive(Debug, Clone)]
pub struct FatTree {
    pub topo: Topology,
    pub spec: FatTreeSpec,
    /// `hosts[rack][i]` = NodeId, racks numbered pod-major.
    pub hosts: Vec<Vec<NodeId>>,
    pub tors: Vec<NodeId>,
    pub aggs: Vec<Vec<NodeId>>,
    pub spines: Vec<NodeId>,
}

impl FatTree {
    pub fn build(spec: FatTreeSpec) -> Self {
        let mut topo = Topology::new();
        let mut tors = Vec::new();
        let mut hosts = Vec::new();
        let mut aggs = Vec::new();
        let spines: Vec<NodeId> = (0..spec.spines).map(|_| topo.add_switch()).collect();

        for _pod in 0..spec.pods {
            let pod_aggs: Vec<NodeId> = (0..spec.aggs_per_pod).map(|_| topo.add_switch()).collect();
            for &agg in &pod_aggs {
                for &spine in &spines {
                    topo.add_link(agg, spine, spec.fabric_bandwidth, spec.hop_delay);
                }
            }
            for _rack in 0..spec.racks_per_pod {
                let tor = topo.add_switch();
                for &agg in &pod_aggs {
                    topo.add_link(tor, agg, spec.fabric_bandwidth, spec.hop_delay);
                }
                let mut rack_hosts = Vec::with_capacity(spec.hosts_per_rack);
                for _h in 0..spec.hosts_per_rack {
                    let host = topo.add_host();
                    topo.add_link(host, tor, spec.host_bandwidth, spec.hop_delay);
                    rack_hosts.push(host);
                }
                tors.push(tor);
                hosts.push(rack_hosts);
            }
            aggs.push(pod_aggs);
        }
        FatTree {
            topo,
            spec,
            hosts,
            tors,
            aggs,
            spines,
        }
    }

    /// All hosts, rack-major.
    pub fn all_hosts(&self) -> Vec<NodeId> {
        self.hosts.iter().flatten().copied().collect()
    }
}

/// A parking-lot topology (Fig. 7(a)): a chain of switches joined by the
/// "original" path links, a foreground source/sink host at the ends, and
/// synthetic attachment links added per background flow endpoint.
#[derive(Debug, Clone)]
pub struct ParkingLot {
    pub topo: Topology,
    /// Switches s_0 .. s_n along the path.
    pub switches: Vec<NodeId>,
    /// The n original links (s_i, s_{i+1}) in order.
    pub path_links: Vec<LinkId>,
    /// Foreground source host (attached to s_0) and sink host (attached to s_n).
    pub fg_src: NodeId,
    pub fg_dst: NodeId,
}

impl ParkingLot {
    /// Build a parking lot whose path crosses `n_hops` switch-to-switch links.
    /// The foreground path is fg_src -> s_0 -> ... -> s_n -> fg_dst, so it
    /// traverses `n_hops + 2` links in total, matching the paper's "2/4/6
    /// hop" scenarios when counting only switch-to-switch links.
    pub fn build(
        n_hops: usize,
        link_bandwidth: Bps,
        host_bandwidth: Bps,
        hop_delay: Nanos,
    ) -> Self {
        assert!(n_hops >= 1, "parking lot needs at least one path link");
        let mut topo = Topology::new();
        let switches: Vec<NodeId> = (0..=n_hops).map(|_| topo.add_switch()).collect();
        let mut path_links = Vec::with_capacity(n_hops);
        for w in switches.windows(2) {
            path_links.push(topo.add_link(w[0], w[1], link_bandwidth, hop_delay));
        }
        let fg_src = topo.add_host();
        topo.add_link(fg_src, switches[0], host_bandwidth, hop_delay);
        let fg_dst = topo.add_host();
        topo.add_link(fg_dst, *switches.last().unwrap(), host_bandwidth, hop_delay);
        ParkingLot {
            topo,
            switches,
            path_links,
            fg_src,
            fg_dst,
        }
    }

    /// Attach a background host at switch `at` (index into `switches`) with
    /// the given NIC capacity; used as the source or sink of one background
    /// flow so background flows never contend artificially with each other
    /// off-path (§3.2).
    pub fn attach_background_host(
        &mut self,
        at: usize,
        nic_bandwidth: Bps,
        delay: Nanos,
    ) -> NodeId {
        let h = self.topo.add_host();
        self.topo
            .add_link(h, self.switches[at], nic_bandwidth, delay);
        h
    }

    /// The full foreground path (access link, path links, egress link).
    pub fn foreground_path(&self) -> Vec<LinkId> {
        let (_, first) = self.topo.access_switch(self.fg_src);
        let (_, last) = self.topo.access_switch(self.fg_dst);
        let mut p = vec![first];
        p.extend_from_slice(&self.path_links);
        p.push(last);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fat_tree_shape() {
        let ft = FatTree::build(FatTreeSpec::small(4));
        assert_eq!(ft.tors.len(), 32);
        assert_eq!(ft.all_hosts().len(), 256);
        assert_eq!(ft.spines.len(), 2);
        // nodes = 2 spines + 2 pods * (2 aggs + 16 tors + 128 hosts)
        assert_eq!(ft.topo.node_count(), 2 + 2 * (2 + 16 + 128));
        // links = aggs*spines + tors*aggs_per_pod + hosts
        assert_eq!(ft.topo.link_count(), 4 * 2 + 32 * 2 + 256);
    }

    #[test]
    fn large_fat_tree_shape() {
        let spec = FatTreeSpec::large();
        assert_eq!(spec.total_racks(), 384);
        assert_eq!(spec.total_hosts(), 6144);
    }

    #[test]
    fn oversub_scales_spines() {
        assert_eq!(FatTreeSpec::small(1).spines, 8);
        assert_eq!(FatTreeSpec::small(2).spines, 4);
        assert_eq!(FatTreeSpec::small(4).spines, 2);
    }

    #[test]
    fn parking_lot_shape() {
        let pl = ParkingLot::build(4, 40 * GBPS, 10 * GBPS, USEC);
        assert_eq!(pl.switches.len(), 5);
        assert_eq!(pl.path_links.len(), 4);
        assert_eq!(pl.foreground_path().len(), 6);
    }

    #[test]
    fn ideal_fct_single_link_single_packet() {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let b = topo.add_host();
        let l = topo.add_link(a, b, 10 * GBPS, 1000);
        // 1000B over one 10G link: 800ns serialization + 1000ns delay.
        assert_eq!(topo.ideal_fct(&[l], 1000, 1000), 1800);
    }

    #[test]
    fn ideal_fct_pipelines_across_hops() {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let s = topo.add_switch();
        let b = topo.add_host();
        let l1 = topo.add_link(a, s, 10 * GBPS, 1000);
        let l2 = topo.add_link(s, b, 10 * GBPS, 1000);
        // 2000B = 2 pkts of 1000B. Full serialization on one link (1600ns)
        // + final-packet serialization on the other (800ns) + 2*1000ns delay.
        assert_eq!(topo.ideal_fct(&[l1, l2], 2000, 1000), 1600 + 800 + 2000);
    }

    #[test]
    fn ideal_fct_respects_bottleneck() {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let s = topo.add_switch();
        let b = topo.add_host();
        let slow = topo.add_link(a, s, GBPS, 0);
        let fast = topo.add_link(s, b, 10 * GBPS, 0);
        let fct = topo.ideal_fct(&[slow, fast], 10_000, 1000);
        // Whole flow on 1G: 80_000ns; final pkt on 10G: 800ns.
        assert_eq!(fct, 80_000 + 800);
    }

    #[test]
    fn host_nic_bandwidth_lookup() {
        let pl = ParkingLot::build(2, 40 * GBPS, 10 * GBPS, USEC);
        assert_eq!(pl.topo.host_nic_bandwidth(pl.fg_src), 10 * GBPS);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut topo = Topology::new();
        let a = topo.add_host();
        topo.add_link(a, a, GBPS, 0);
    }
}
