//! End-host congestion control: DCTCP, TIMELY, DCQCN and HPCC (Table 4).
//!
//! Each algorithm maintains a congestion *window* (bytes the engine may keep
//! in flight) and a pacing *rate* (bits/sec). Window-based algorithms
//! (DCTCP, HPCC) adapt the window; rate-based algorithms (TIMELY, DCQCN)
//! adapt the rate and keep the window pinned at the configured initial
//! window, mirroring the HPCC/ns-3 reference implementations the paper's
//! ground truth uses.
//!
//! DCQCN's 55 us alpha-decay and rate-increase timers are evaluated lazily
//! at ACK processing time (catching up on elapsed periods) instead of
//! scheduling per-flow timer events; this is a documented simplification
//! that keeps the event queue proportional to packet count.

use crate::config::{CcParams, CcProtocol};
use crate::units::{Bps, Bytes, Nanos, USEC};

/// Maximum path hops recorded by INT telemetry (fat-tree diameter is 6; 8
/// leaves headroom for parking lots with access links).
pub const MAX_INT_HOPS: usize = 8;

/// One hop's inband network telemetry, appended by switches at dequeue and
/// echoed to the sender by ACKs. Used by HPCC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntHop {
    /// Egress queue length at dequeue.
    pub qlen: Bytes,
    /// Cumulative bytes transmitted by the egress port.
    pub tx_bytes: u64,
    /// Timestamp of the dequeue.
    pub ts: Nanos,
    /// Port capacity.
    pub bandwidth: Bps,
}

/// Fixed-capacity INT vector carried in packet headers (no heap allocation
/// on the per-packet fast path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntVec {
    hops: [IntHop; MAX_INT_HOPS],
    len: u8,
}

impl IntVec {
    pub fn push(&mut self, hop: IntHop) {
        if (self.len as usize) < MAX_INT_HOPS {
            self.hops[self.len as usize] = hop;
            self.len += 1;
        }
    }

    pub fn as_slice(&self) -> &[IntHop] {
        &self.hops[..self.len as usize]
    }

    pub fn clear(&mut self) {
        self.len = 0;
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-flow environment the CC algorithms are parameterized by.
#[derive(Debug, Clone, Copy)]
pub struct CcEnv {
    /// Unloaded round-trip time of the flow's path.
    pub base_rtt: Nanos,
    /// The sender NIC capacity; rates never exceed it.
    pub nic_bps: Bps,
    pub mtu: Bytes,
    pub init_window: Bytes,
    pub params: CcParams,
}

/// Information carried by one cumulative ACK back to the sender.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent<'a> {
    pub now: Nanos,
    pub bytes_acked: Bytes,
    /// ECN congestion-experienced echo for the acked data packet.
    pub ecn: bool,
    /// RTT sample measured from the echoed transmit timestamp.
    pub rtt: Nanos,
    /// Highest byte sequence sent so far (for per-RTT update boundaries).
    pub sent_seq: u64,
    /// Cumulative acked bytes after this ACK.
    pub acked_seq: u64,
    /// INT telemetry echoed by the receiver (HPCC).
    pub int: &'a [IntHop],
}

/// Congestion-control state machine for one flow.
///
/// HPCC carries per-hop INT state and dwarfs the other variants; flows
/// store this enum inline and are long-lived, so boxing the large variant
/// would add a pointer chase per packet for no memory win that matters.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CcState {
    Dctcp(Dctcp),
    Timely(Timely),
    Dcqcn(Dcqcn),
    Hpcc(Hpcc),
}

impl CcState {
    pub fn new(protocol: CcProtocol, env: &CcEnv) -> Self {
        match protocol {
            CcProtocol::Dctcp => CcState::Dctcp(Dctcp::new(env)),
            CcProtocol::Timely => CcState::Timely(Timely::new(env)),
            CcProtocol::Dcqcn => CcState::Dcqcn(Dcqcn::new(env)),
            CcProtocol::Hpcc => CcState::Hpcc(Hpcc::new(env)),
        }
    }

    /// Current congestion window in bytes.
    pub fn window(&self) -> f64 {
        match self {
            CcState::Dctcp(s) => s.window,
            CcState::Timely(s) => s.window,
            CcState::Dcqcn(s) => s.window,
            CcState::Hpcc(s) => s.window,
        }
    }

    /// Current pacing rate in bits/sec. `f64::INFINITY` disables pacing.
    pub fn rate_bps(&self) -> f64 {
        match self {
            CcState::Dctcp(_) => f64::INFINITY,
            CcState::Timely(s) => s.rate,
            CcState::Dcqcn(s) => s.rate,
            CcState::Hpcc(s) => s.rate,
        }
    }

    pub fn on_ack(&mut self, ack: &AckEvent, env: &CcEnv) {
        match self {
            CcState::Dctcp(s) => s.on_ack(ack, env),
            CcState::Timely(s) => s.on_ack(ack, env),
            CcState::Dcqcn(s) => s.on_ack(ack, env),
            CcState::Hpcc(s) => s.on_ack(ack, env),
        }
    }

    /// Retransmission timeout: collapse to conservative state.
    pub fn on_timeout(&mut self, env: &CcEnv) {
        match self {
            CcState::Dctcp(s) => {
                s.ssthresh = (s.window / 2.0).max(env.mtu as f64);
                s.window = env.mtu as f64;
            }
            CcState::Timely(s) => s.rate = min_rate(env),
            CcState::Dcqcn(s) => {
                s.rate = min_rate(env);
                s.target = s.rate;
            }
            CcState::Hpcc(s) => {
                s.w_ref = env.mtu as f64;
                s.window = env.mtu as f64;
                s.rate = s.window * 8e9 / env.base_rtt.max(1) as f64;
            }
        }
    }
}

fn min_rate(env: &CcEnv) -> f64 {
    // 10 Mbps floor, matching common RDMA CC minimum rates.
    (10e6_f64).min(env.nic_bps as f64)
}

// ---------------------------------------------------------------------------
// DCTCP
// ---------------------------------------------------------------------------

/// DCTCP (Alizadeh et al.): ECN-fraction EWMA `alpha`, one multiplicative
/// decrease of `alpha/2` per congestion round, slow start + per-RTT additive
/// increase otherwise.
#[derive(Debug, Clone)]
pub struct Dctcp {
    pub window: f64,
    pub ssthresh: f64,
    pub alpha: f64,
    /// EWMA gain g (RFC 8257 recommends 1/16).
    g: f64,
    acked_in_round: u64,
    marked_in_round: u64,
    /// acked_seq boundary at which the current round ends.
    round_end: u64,
    cut_this_round: bool,
}

impl Dctcp {
    pub fn new(env: &CcEnv) -> Self {
        Dctcp {
            window: env.init_window as f64,
            ssthresh: f64::INFINITY,
            alpha: 1.0,
            g: 1.0 / 16.0,
            acked_in_round: 0,
            marked_in_round: 0,
            round_end: env.init_window,
            cut_this_round: false,
        }
    }

    fn on_ack(&mut self, ack: &AckEvent, env: &CcEnv) {
        self.acked_in_round += ack.bytes_acked;
        if ack.ecn {
            self.marked_in_round += ack.bytes_acked;
            self.ssthresh = self.ssthresh.min(self.window);
            if !self.cut_this_round {
                self.window *= 1.0 - self.alpha / 2.0;
                self.cut_this_round = true;
            }
        } else if self.window < self.ssthresh {
            // Slow start: window grows by bytes acked.
            self.window += ack.bytes_acked as f64;
        } else {
            // Congestion avoidance: +1 MTU per RTT.
            self.window += env.mtu as f64 * ack.bytes_acked as f64 / self.window.max(1.0);
        }
        if ack.acked_seq >= self.round_end {
            let f = if self.acked_in_round > 0 {
                self.marked_in_round as f64 / self.acked_in_round as f64
            } else {
                0.0
            };
            self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
            self.acked_in_round = 0;
            self.marked_in_round = 0;
            self.cut_this_round = false;
            self.round_end = ack.acked_seq + self.window.max(env.mtu as f64) as u64;
        }
        self.window = self.window.clamp(env.mtu as f64, 32.0 * 1024.0 * 1024.0);
    }
}

// ---------------------------------------------------------------------------
// TIMELY
// ---------------------------------------------------------------------------

/// TIMELY (Mittal et al.): RTT-gradient rate control with T_low / T_high
/// guard bands and hyperactive additive increase after consecutive
/// negative-gradient samples.
#[derive(Debug, Clone)]
pub struct Timely {
    pub rate: f64,
    pub window: f64,
    prev_rtt: f64,
    rtt_diff: f64,
    neg_gradient_count: u32,
    /// Multiplicative decreases are applied at most once per base RTT;
    /// per-ACK decreases would compound far faster than the deployed
    /// algorithm, which updates on completion events.
    last_decrease: Nanos,
}

/// TIMELY constants from the paper: EWMA weight for the RTT difference,
/// multiplicative-decrease factor, additive increment.
const TIMELY_ALPHA: f64 = 0.875;
const TIMELY_BETA: f64 = 0.8;
const TIMELY_DELTA_BPS: f64 = 10e6;
const TIMELY_HAI_THRESH: u32 = 5;

impl Timely {
    pub fn new(env: &CcEnv) -> Self {
        Timely {
            rate: env.nic_bps as f64,
            window: env.init_window as f64,
            prev_rtt: env.base_rtt as f64,
            rtt_diff: 0.0,
            neg_gradient_count: 0,
            last_decrease: 0,
        }
    }

    fn on_ack(&mut self, ack: &AckEvent, env: &CcEnv) {
        let rtt = ack.rtt as f64;
        let new_diff = rtt - self.prev_rtt;
        self.prev_rtt = rtt;
        self.rtt_diff = TIMELY_ALPHA * self.rtt_diff + (1.0 - TIMELY_ALPHA) * new_diff;
        let min_rtt = env.base_rtt.max(1) as f64;
        let gradient = self.rtt_diff / min_rtt;

        let can_decrease = ack.now.saturating_sub(self.last_decrease) >= env.base_rtt;
        if rtt < env.params.timely_t_low as f64 {
            self.rate += TIMELY_DELTA_BPS;
            self.neg_gradient_count = 0;
        } else if rtt > env.params.timely_t_high as f64 {
            if can_decrease {
                self.rate *= 1.0 - TIMELY_BETA * (1.0 - env.params.timely_t_high as f64 / rtt);
                self.last_decrease = ack.now;
            }
            self.neg_gradient_count = 0;
        } else if gradient <= 0.0 {
            self.neg_gradient_count += 1;
            let n = if self.neg_gradient_count >= TIMELY_HAI_THRESH {
                5.0
            } else {
                1.0
            };
            self.rate += n * TIMELY_DELTA_BPS;
        } else {
            self.neg_gradient_count = 0;
            if can_decrease {
                self.rate *= (1.0 - TIMELY_BETA * gradient).max(0.5);
                self.last_decrease = ack.now;
            }
        }
        self.rate = self.rate.clamp(min_rate(env), env.nic_bps as f64);
    }
}

// ---------------------------------------------------------------------------
// DCQCN
// ---------------------------------------------------------------------------

/// DCQCN (Zhu et al.): CNP-driven multiplicative decrease with alpha EWMA,
/// then fast-recovery / additive / hyper rate increase stages. Timers are
/// applied lazily at ACK time.
#[derive(Debug, Clone)]
pub struct Dcqcn {
    pub rate: f64,
    pub target: f64,
    pub window: f64,
    alpha: f64,
    last_cut: Nanos,
    last_alpha_decay: Nanos,
    last_increase: Nanos,
    inc_stage: u32,
}

const DCQCN_G: f64 = 1.0 / 16.0;
/// Minimum gap between consecutive rate decreases (CNP window).
const DCQCN_CNP_WINDOW: Nanos = 50 * USEC;
/// Alpha-decay and rate-increase timer period.
const DCQCN_TIMER: Nanos = 55 * USEC;
/// Fast-recovery stages before additive increase.
const DCQCN_F: u32 = 5;
const DCQCN_RATE_AI: f64 = 40e6;
const DCQCN_RATE_HAI: f64 = 400e6;

impl Dcqcn {
    pub fn new(env: &CcEnv) -> Self {
        Dcqcn {
            rate: env.nic_bps as f64,
            target: env.nic_bps as f64,
            window: env.init_window as f64,
            alpha: 1.0,
            last_cut: 0,
            last_alpha_decay: 0,
            last_increase: 0,
            inc_stage: 0,
        }
    }

    fn on_ack(&mut self, ack: &AckEvent, env: &CcEnv) {
        // Lazy alpha decay for elapsed timer periods without CNP.
        let decay_periods = (ack.now.saturating_sub(self.last_alpha_decay)) / DCQCN_TIMER;
        if decay_periods > 0 {
            self.alpha *= (1.0 - DCQCN_G).powi(decay_periods.min(64) as i32);
            self.last_alpha_decay += decay_periods * DCQCN_TIMER;
        }

        if ack.ecn {
            self.alpha = (1.0 - DCQCN_G) * self.alpha + DCQCN_G;
            self.last_alpha_decay = ack.now;
            if ack.now.saturating_sub(self.last_cut) >= DCQCN_CNP_WINDOW {
                self.target = self.rate;
                self.rate *= 1.0 - self.alpha / 2.0;
                self.last_cut = ack.now;
                self.last_increase = ack.now;
                self.inc_stage = 0;
            }
        } else {
            // Lazy rate increase for elapsed timer periods.
            let mut periods = (ack.now.saturating_sub(self.last_increase)) / DCQCN_TIMER;
            periods = periods.min(200);
            for _ in 0..periods {
                self.inc_stage += 1;
                if self.inc_stage > 2 * DCQCN_F {
                    self.target += DCQCN_RATE_HAI;
                } else if self.inc_stage > DCQCN_F {
                    self.target += DCQCN_RATE_AI;
                }
                self.target = self.target.min(env.nic_bps as f64);
                self.rate = (self.rate + self.target) / 2.0;
            }
            if periods > 0 {
                self.last_increase += periods * DCQCN_TIMER;
            }
        }
        self.rate = self.rate.clamp(min_rate(env), env.nic_bps as f64);
    }
}

// ---------------------------------------------------------------------------
// HPCC
// ---------------------------------------------------------------------------

/// HPCC (Li et al.): per-ACK window computed from INT-reported link
/// utilization `U` against target `eta`, with reference-window commits once
/// per RTT and `W_AI` additive increase after `maxStage` consecutive
/// increases.
#[derive(Debug, Clone)]
pub struct Hpcc {
    pub window: f64,
    pub rate: f64,
    w_ref: f64,
    u_ewma: f64,
    inc_stage: u32,
    /// Sequence boundary for once-per-RTT reference updates.
    update_seq: u64,
    last_int: [IntHop; MAX_INT_HOPS],
    last_int_valid: [bool; MAX_INT_HOPS],
    last_ack_time: Nanos,
}

const HPCC_MAX_STAGE: u32 = 5;

impl Hpcc {
    pub fn new(env: &CcEnv) -> Self {
        let w = env.init_window as f64;
        Hpcc {
            window: w,
            rate: (w * 8e9 / env.base_rtt.max(1) as f64).min(env.nic_bps as f64),
            w_ref: w,
            u_ewma: 0.0,
            inc_stage: 0,
            update_seq: 0,
            last_int: [IntHop::default(); MAX_INT_HOPS],
            last_int_valid: [false; MAX_INT_HOPS],
            last_ack_time: 0,
        }
    }

    /// W_AI from the configured additive-increase rate: RateAI * T_base.
    fn w_ai(&self, env: &CcEnv) -> f64 {
        env.params.hpcc_rate_ai as f64 * env.base_rtt as f64 / 8e9
    }

    fn on_ack(&mut self, ack: &AckEvent, env: &CcEnv) {
        let t_base = env.base_rtt.max(1) as f64;
        // Max per-hop normalized utilization from consecutive INT snapshots.
        let mut u_max: f64 = 0.0;
        for (i, hop) in ack.int.iter().enumerate().take(MAX_INT_HOPS) {
            if self.last_int_valid[i] {
                let prev = self.last_int[i];
                let dt = hop.ts.saturating_sub(prev.ts) as f64;
                let dbytes = hop.tx_bytes.saturating_sub(prev.tx_bytes) as f64;
                let bw_bytes_per_ns = hop.bandwidth as f64 / 8e9;
                let tx_rate_frac = if dt > 0.0 {
                    (dbytes / dt) / bw_bytes_per_ns
                } else {
                    0.0
                };
                let q_frac = hop.qlen as f64 / (bw_bytes_per_ns * t_base);
                u_max = u_max.max(q_frac + tx_rate_frac);
            }
            self.last_int[i] = *hop;
            self.last_int_valid[i] = true;
        }
        // EWMA over roughly one base RTT of ACKs.
        let tau = (ack.now.saturating_sub(self.last_ack_time) as f64).min(t_base);
        self.last_ack_time = ack.now;
        let w = tau / t_base;
        self.u_ewma = (1.0 - w) * self.u_ewma + w * u_max;

        let eta = env.params.hpcc_eta;
        let w_ai = self.w_ai(env);
        let u = self.u_ewma.max(1e-6);
        if u >= eta || self.inc_stage >= HPCC_MAX_STAGE {
            self.window = self.w_ref * eta / u + w_ai;
            if ack.acked_seq > self.update_seq {
                self.w_ref = self.window;
                self.inc_stage = 0;
                self.update_seq = ack.sent_seq;
            }
        } else {
            self.window = self.w_ref + w_ai;
            if ack.acked_seq > self.update_seq {
                self.w_ref = self.window;
                self.inc_stage += 1;
                self.update_seq = ack.sent_seq;
            }
        }
        let max_w = env.nic_bps as f64 * t_base / 8e9 * 4.0 + env.init_window as f64;
        self.window = self.window.clamp(env.mtu as f64, max_w);
        self.rate = (self.window * 8e9 / t_base).clamp(min_rate(env), env.nic_bps as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{GBPS, KB};

    fn env() -> CcEnv {
        CcEnv {
            base_rtt: 8 * USEC,
            nic_bps: 10 * GBPS,
            mtu: 1000,
            init_window: 15 * KB,
            params: CcParams::default(),
        }
    }

    fn ack(now: Nanos, bytes: Bytes, ecn: bool, rtt: Nanos, seq: u64) -> AckEvent<'static> {
        AckEvent {
            now,
            bytes_acked: bytes,
            ecn,
            rtt,
            sent_seq: seq + 100_000,
            acked_seq: seq,
            int: &[],
        }
    }

    #[test]
    fn dctcp_slow_start_doubles() {
        let e = env();
        let mut s = Dctcp::new(&e);
        let w0 = s.window;
        s.on_ack(&ack(1000, 1000, false, e.base_rtt, 1000), &e);
        assert!(s.window > w0, "slow start should grow the window");
    }

    #[test]
    fn dctcp_cuts_once_per_round() {
        let e = env();
        let mut s = Dctcp::new(&e);
        s.alpha = 1.0;
        let w0 = s.window;
        s.on_ack(&ack(1000, 1000, true, e.base_rtt, 1000), &e);
        let w1 = s.window;
        assert!(w1 < w0);
        // Second marked ACK in the same round: no further cut.
        s.on_ack(&ack(2000, 1000, true, e.base_rtt, 2000), &e);
        assert!((s.window - w1).abs() < 1e-9);
    }

    #[test]
    fn dctcp_alpha_tracks_marking_fraction() {
        let e = env();
        let mut s = Dctcp::new(&e);
        // A full unmarked round decays alpha toward zero.
        let round = s.round_end;
        s.on_ack(&ack(1000, round, false, e.base_rtt, round), &e);
        assert!(s.alpha < 1.0);
    }

    #[test]
    fn dctcp_window_never_below_mtu() {
        let e = env();
        let mut s = Dctcp::new(&e);
        for i in 0..200 {
            s.on_ack(&ack(i * 100, 100, true, e.base_rtt, (i + 1) * 100), &e);
        }
        assert!(s.window >= e.mtu as f64);
    }

    #[test]
    fn timely_decreases_on_high_rtt() {
        let e = env();
        let mut s = Timely::new(&e);
        let r0 = s.rate;
        // `now` must be at least one base RTT in: decreases are rate-limited.
        s.on_ack(
            &ack(
                100 * USEC,
                1000,
                false,
                e.params.timely_t_high + 100 * USEC,
                1000,
            ),
            &e,
        );
        assert!(s.rate < r0);
    }

    #[test]
    fn timely_increases_on_low_rtt() {
        let e = env();
        let mut s = Timely::new(&e);
        s.rate = 1e9;
        s.on_ack(&ack(1000, 1000, false, e.params.timely_t_low / 2, 1000), &e);
        assert!(s.rate > 1e9);
    }

    #[test]
    fn timely_rate_clamped_to_nic() {
        let e = env();
        let mut s = Timely::new(&e);
        for i in 0..1000 {
            s.on_ack(
                &ack(i * 1000, 1000, false, e.params.timely_t_low / 2, i * 1000),
                &e,
            );
        }
        assert!(s.rate <= e.nic_bps as f64);
    }

    #[test]
    fn dcqcn_cnp_cuts_rate() {
        let e = env();
        let mut s = Dcqcn::new(&e);
        let r0 = s.rate;
        s.on_ack(&ack(100 * USEC, 1000, true, e.base_rtt, 1000), &e);
        assert!(s.rate < r0);
        assert!((s.target - r0).abs() < 1e-6);
    }

    #[test]
    fn dcqcn_respects_cnp_window() {
        let e = env();
        let mut s = Dcqcn::new(&e);
        s.on_ack(&ack(100 * USEC, 1000, true, e.base_rtt, 1000), &e);
        let r1 = s.rate;
        // Another CNP 10us later: inside the 50us window, no further cut.
        s.on_ack(&ack(110 * USEC, 1000, true, e.base_rtt, 2000), &e);
        assert!((s.rate - r1).abs() < 1e-6);
    }

    #[test]
    fn dcqcn_recovers_toward_target() {
        let e = env();
        let mut s = Dcqcn::new(&e);
        s.on_ack(&ack(100 * USEC, 1000, true, e.base_rtt, 1000), &e);
        let cut = s.rate;
        // Several timer periods later, fast recovery should close the gap.
        s.on_ack(
            &ack(100 * USEC + 4 * DCQCN_TIMER, 1000, false, e.base_rtt, 2000),
            &e,
        );
        assert!(s.rate > cut);
        assert!(s.rate <= s.target + 1.0);
    }

    #[test]
    fn hpcc_shrinks_window_when_overutilized() {
        let e = env();
        let mut s = Hpcc::new(&e);
        let bw = 10 * GBPS;
        // First INT snapshot.
        let int1 = [IntHop {
            qlen: 0,
            tx_bytes: 0,
            ts: 0,
            bandwidth: bw,
        }];
        let mut a = ack(8 * USEC, 1000, false, e.base_rtt, 1000);
        a.int = &int1;
        s.on_ack(&a, &e);
        // Second snapshot: queue built up and link ran at full rate.
        let int2 = [IntHop {
            qlen: 100 * KB,
            tx_bytes: 10_000,
            ts: 8 * USEC,
            bandwidth: bw,
        }];
        let mut b = ack(16 * USEC, 1000, false, e.base_rtt, 2000);
        b.int = &int2;
        let w0 = s.window;
        s.on_ack(&b, &e);
        assert!(s.window < w0, "window should shrink under congestion");
    }

    #[test]
    fn hpcc_grows_when_underutilized() {
        let e = env();
        let mut s = Hpcc::new(&e);
        let bw = 10 * GBPS;
        for i in 0..6u64 {
            let int = [IntHop {
                qlen: 0,
                tx_bytes: i * 100, // nearly idle link
                ts: i * 8 * USEC,
                bandwidth: bw,
            }];
            let mut a = ack((i + 1) * 8 * USEC, 1000, false, e.base_rtt, (i + 1) * 1000);
            a.int = &int;
            s.on_ack(&a, &e);
        }
        assert!(s.window > e.init_window as f64);
    }

    #[test]
    fn timeout_collapses_all_protocols() {
        let e = env();
        for p in CcProtocol::ALL {
            let mut s = CcState::new(p, &e);
            s.on_timeout(&e);
            assert!(s.window() >= e.mtu as f64);
            if s.rate_bps().is_finite() {
                assert!(s.rate_bps() > 0.0);
            }
        }
    }

    #[test]
    fn int_vec_caps_at_max_hops() {
        let mut v = IntVec::default();
        for _ in 0..20 {
            v.push(IntHop::default());
        }
        assert_eq!(v.as_slice().len(), MAX_INT_HOPS);
    }
}
