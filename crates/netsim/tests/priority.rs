//! Tests for strict-priority queueing (the paper's §3.6 future-work item,
//! implemented here as an extension).

use m3_netsim::prelude::*;
use m3_netsim::sim::Simulator;

/// Elephants + latency-sensitive probes through one bottleneck.
fn scenario() -> (Topology, Vec<FlowSpec>) {
    let mut topo = Topology::new();
    let s = topo.add_switch();
    let dst = topo.add_host();
    let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
    let mut flows = Vec::new();
    // Four 2MB elephants keep the egress saturated.
    for i in 0..4u32 {
        let h = topo.add_host();
        let l = topo.add_link(h, s, 10 * GBPS, USEC);
        flows.push(FlowSpec {
            id: i,
            src: h,
            dst,
            size: 2 * MB,
            arrival: 0,
            path: vec![l, dst_l],
        });
    }
    // Twenty 2KB probes arrive while the queue is standing.
    for i in 0..20u32 {
        let h = topo.add_host();
        let l = topo.add_link(h, s, 10 * GBPS, USEC);
        flows.push(FlowSpec {
            id: 4 + i,
            src: h,
            dst,
            size: 2 * KB,
            arrival: 300 * USEC + i as u64 * 40 * USEC,
            path: vec![l, dst_l],
        });
    }
    (topo, flows)
}

fn probe_p99(priorities: Option<Vec<u8>>) -> f64 {
    let (topo, flows) = scenario();
    let mut sim = Simulator::new(&topo, SimConfig::default(), flows);
    if let Some(p) = priorities {
        sim.set_priorities(&p);
    }
    let out = sim.run();
    assert_eq!(out.records.len(), 24);
    let mut probes: Vec<f64> = out
        .records
        .iter()
        .filter(|r| r.size == 2 * KB)
        .map(|r| r.slowdown())
        .collect();
    percentile_unsorted(&mut probes, 99.0)
}

#[test]
fn high_priority_probes_bypass_elephants() {
    let baseline = probe_p99(None);
    // Probes in class 0, elephants demoted to class 1.
    let mut prios = vec![1u8; 4];
    prios.extend(std::iter::repeat_n(0u8, 20));
    let prioritized = probe_p99(Some(prios));
    assert!(
        prioritized < baseline * 0.7,
        "priority should cut probe tail: {baseline} -> {prioritized}"
    );
    // With priority, probes should be near-unloaded: their only wait is the
    // residual serialization of one in-flight elephant packet.
    assert!(
        prioritized < 3.0,
        "prioritized probes still queue-bound: {prioritized}"
    );
}

#[test]
fn default_priorities_change_nothing() {
    let implicit = probe_p99(None);
    let explicit = probe_p99(Some(vec![0u8; 24]));
    assert_eq!(implicit, explicit, "all-zero classes must be the default");
}

#[test]
fn low_priority_still_completes() {
    // Strict priority must not starve the elephants forever: probes are a
    // tiny fraction of bytes.
    let (topo, flows) = scenario();
    let mut prios = vec![1u8; 4];
    prios.extend(std::iter::repeat_n(0u8, 20));
    let mut sim = Simulator::new(&topo, SimConfig::default(), flows);
    sim.set_priorities(&prios);
    let out = sim.run();
    assert_eq!(out.records.len(), 24, "every flow finishes");
    for r in out.records.iter().filter(|r| r.size == 2 * MB) {
        assert!(r.slowdown() < 10.0, "elephant slowdown {}", r.slowdown());
    }
}

#[test]
#[should_panic(expected = "one class per flow")]
fn priority_vector_length_checked() {
    let (topo, flows) = scenario();
    let mut sim = Simulator::new(&topo, SimConfig::default(), flows);
    sim.set_priorities(&[0u8; 3]);
}
