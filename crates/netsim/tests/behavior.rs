//! Behavioral tests of the congestion-control implementations: fairness,
//! convergence, and the qualitative properties the m3 evaluation relies on.

use m3_netsim::prelude::*;

/// N source hosts, one destination, single 10G bottleneck.
fn incast_topo(n: u32) -> (Topology, Vec<(NodeId, LinkId)>, NodeId, LinkId) {
    let mut topo = Topology::new();
    let s = topo.add_switch();
    let dst = topo.add_host();
    let dst_l = topo.add_link(dst, s, 10 * GBPS, USEC);
    let srcs = (0..n)
        .map(|_| {
            let h = topo.add_host();
            let l = topo.add_link(h, s, 10 * GBPS, USEC);
            (h, l)
        })
        .collect();
    (topo, srcs, dst, dst_l)
}

fn run_n_flows(cc: CcProtocol, n: u32, size: Bytes) -> Vec<f64> {
    let (topo, srcs, dst, dst_l) = incast_topo(n);
    let flows: Vec<FlowSpec> = srcs
        .iter()
        .enumerate()
        .map(|(i, &(h, l))| FlowSpec {
            id: i as u32,
            src: h,
            dst,
            size,
            arrival: 0,
            path: vec![l, dst_l],
        })
        .collect();
    let out = run_simulation(
        &topo,
        SimConfig {
            cc,
            ..SimConfig::default()
        },
        flows,
    );
    assert_eq!(out.records.len(), n as usize);
    out.records.iter().map(|r| r.slowdown()).collect()
}

#[test]
fn long_flows_share_fairly_all_protocols() {
    // Four long flows on one bottleneck: each should see roughly 4x
    // slowdown. Allow generous bounds: convergence dynamics differ.
    for cc in CcProtocol::ALL {
        let sldn = run_n_flows(cc, 4, 2 * MB);
        let mean: f64 = sldn.iter().sum::<f64>() / sldn.len() as f64;
        assert!(
            (2.5..7.0).contains(&mean),
            "{}: mean slowdown {mean} not near 4x",
            cc.name()
        );
        // Jain fairness over completion times should be high.
        let sum: f64 = sldn.iter().sum();
        let sumsq: f64 = sldn.iter().map(|s| s * s).sum();
        let jain = sum * sum / (sldn.len() as f64 * sumsq);
        assert!(jain > 0.8, "{}: Jain index {jain}", cc.name());
    }
}

#[test]
fn single_long_flow_achieves_line_rate() {
    for cc in CcProtocol::ALL {
        let sldn = run_n_flows(cc, 1, 4 * MB);
        assert!(
            sldn[0] < 1.15,
            "{}: solo long flow slowdown {} (should be ~1)",
            cc.name(),
            sldn[0]
        );
    }
}

#[test]
fn doubling_competitors_roughly_doubles_fct() {
    for cc in [CcProtocol::Dctcp, CcProtocol::Hpcc] {
        let two: f64 = run_n_flows(cc, 2, MB).iter().sum::<f64>() / 2.0;
        let four: f64 = run_n_flows(cc, 4, MB).iter().sum::<f64>() / 4.0;
        let ratio = four / two;
        assert!(
            (1.4..2.8).contains(&ratio),
            "{}: 2->4 flows scaled FCT by {ratio}",
            cc.name()
        );
    }
}

#[test]
fn late_flow_reaches_fair_share() {
    // A long-running flow plus a late arrival: the late flow should get
    // roughly half the link once it starts (not starve).
    let (topo, srcs, dst, dst_l) = incast_topo(2);
    let flows = vec![
        FlowSpec {
            id: 0,
            src: srcs[0].0,
            dst,
            size: 8 * MB,
            arrival: 0,
            path: vec![srcs[0].1, dst_l],
        },
        FlowSpec {
            id: 1,
            src: srcs[1].0,
            dst,
            size: MB,
            arrival: 2 * MSEC, // flow 0 is in steady state by now
            path: vec![srcs[1].1, dst_l],
        },
    ];
    let out = run_simulation(&topo, SimConfig::default(), flows);
    let late = out.records.iter().find(|r| r.id == 1).unwrap();
    // Fair share would be ~2x. DCTCP's fairness convergence is slow (the
    // newcomer starts with alpha = 1 and backs off far harder than the
    // converged incumbent), so allow a wide margin — the property under
    // test is "makes progress toward fair share", not "instantly fair".
    assert!(
        late.slowdown() < 10.0,
        "late flow starved: slowdown {}",
        late.slowdown()
    );
    // And the incumbent must not be starved by the newcomer either.
    let early = out.records.iter().find(|r| r.id == 0).unwrap();
    assert!(
        early.slowdown() < 3.0,
        "incumbent slowdown {}",
        early.slowdown()
    );
}

#[test]
fn dctcp_marking_threshold_bounds_queue_delay() {
    // Short probe flows measure queueing behind long flows. With a low
    // marking threshold K the standing queue (and thus probe slowdown)
    // must be smaller than with a huge K (which degrades to tail-drop).
    let probe_tail = |k: Bytes| -> f64 {
        let (topo, srcs, dst, dst_l) = incast_topo(10);
        let mut flows = Vec::new();
        for i in 0..4u32 {
            flows.push(FlowSpec {
                id: i,
                src: srcs[i as usize].0,
                dst,
                size: 4 * MB,
                arrival: 0,
                path: vec![srcs[i as usize].1, dst_l],
            });
        }
        for i in 0..30u32 {
            let sidx = 4 + (i as usize % 6);
            flows.push(FlowSpec {
                id: 4 + i,
                src: srcs[sidx].0,
                dst,
                size: KB,
                arrival: 500 * USEC + i as u64 * 30 * USEC,
                path: vec![srcs[sidx].1, dst_l],
            });
        }
        let out = run_simulation(
            &topo,
            SimConfig {
                params: CcParams {
                    dctcp_k: k,
                    ..CcParams::default()
                },
                ..SimConfig::default()
            },
            flows,
        );
        let mut probes: Vec<f64> = out
            .records
            .iter()
            .filter(|r| r.size == KB)
            .map(|r| r.slowdown())
            .collect();
        percentile_unsorted(&mut probes, 90.0)
    };
    let tight = probe_tail(8 * KB);
    let loose = probe_tail(300 * KB);
    assert!(
        tight < loose,
        "low K should bound queueing: K=8KB tail {tight} vs K=300KB tail {loose}"
    );
}

#[test]
fn hpcc_int_telemetry_controls_queue() {
    // HPCC with eta=0.75 should hold lower short-flow tails than eta=0.95
    // under sustained congestion (more headroom).
    let probe_tail = |eta: f64| -> f64 {
        let (topo, srcs, dst, dst_l) = incast_topo(10);
        let mut flows = Vec::new();
        for i in 0..4u32 {
            flows.push(FlowSpec {
                id: i,
                src: srcs[i as usize].0,
                dst,
                size: 2 * MB,
                arrival: 0,
                path: vec![srcs[i as usize].1, dst_l],
            });
        }
        for i in 0..30u32 {
            let sidx = 4 + (i as usize % 6);
            flows.push(FlowSpec {
                id: 4 + i,
                src: srcs[sidx].0,
                dst,
                size: KB,
                arrival: 500 * USEC + i as u64 * 30 * USEC,
                path: vec![srcs[sidx].1, dst_l],
            });
        }
        let out = run_simulation(
            &topo,
            SimConfig {
                cc: CcProtocol::Hpcc,
                params: CcParams {
                    hpcc_eta: eta,
                    ..CcParams::default()
                },
                ..SimConfig::default()
            },
            flows,
        );
        let mut probes: Vec<f64> = out
            .records
            .iter()
            .filter(|r| r.size == KB)
            .map(|r| r.slowdown())
            .collect();
        percentile_unsorted(&mut probes, 90.0)
    };
    let headroom = probe_tail(0.75);
    let aggressive = probe_tail(0.95);
    assert!(
        headroom <= aggressive * 1.3,
        "eta=0.75 tail {headroom} should not exceed eta=0.95 tail {aggressive}"
    );
}

#[test]
fn multi_hop_fat_tree_traffic_completes_under_all_protocols() {
    use rand::Rng;
    use rand::SeedableRng;
    let ft = FatTree::build(FatTreeSpec::small(4));
    let routing = Routing::new(&ft.topo);
    let hosts = ft.all_hosts();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    for cc in CcProtocol::ALL {
        let flows: Vec<FlowSpec> = (0..300u32)
            .map(|i| {
                let src = hosts[rng.gen_range(0..hosts.len())];
                let mut dst = hosts[rng.gen_range(0..hosts.len())];
                while dst == src {
                    dst = hosts[rng.gen_range(0..hosts.len())];
                }
                let size = 1 + rng.gen_range(0..100) as u64 * 2_000;
                FlowSpec {
                    id: i,
                    src,
                    dst,
                    size,
                    arrival: i as u64 * 5 * USEC,
                    path: routing.flow_path(&ft.topo, i as u64, src, dst),
                }
            })
            .collect();
        let out = run_simulation(
            &ft.topo,
            SimConfig {
                cc,
                ..SimConfig::default()
            },
            flows,
        );
        assert_eq!(out.records.len(), 300, "{}: flows lost", cc.name());
        for r in &out.records {
            assert!(
                r.slowdown() >= 0.99,
                "{}: slowdown {}",
                cc.name(),
                r.slowdown()
            );
        }
    }
}

#[test]
fn channel_telemetry_reflects_activity() {
    let (topo, srcs, dst, dst_l) = incast_topo(4);
    let flows: Vec<FlowSpec> = srcs
        .iter()
        .enumerate()
        .map(|(i, &(h, l))| FlowSpec {
            id: i as u32,
            src: h,
            dst,
            size: 500 * KB,
            arrival: 0,
            path: vec![l, dst_l],
        })
        .collect();
    let out = run_simulation(&topo, SimConfig::default(), flows);
    // The destination downlink (dst_l, reverse direction: switch -> host
    // since dst_l was added as (dst, s), data flows s -> dst = "reverse").
    let data_ch = &out.channel_stats[dst_l.index() * 2 + 1];
    assert!(
        data_ch.tx_bytes >= 4 * 500 * KB,
        "bottleneck carried all payload: {}",
        data_ch.tx_bytes
    );
    assert!(data_ch.max_qbytes > 0, "queue must have built up");
    let util = data_ch.utilization(out.end_time);
    assert!(util > 0.8, "bottleneck utilization {util} should be high");
    // The reverse direction (host -> switch) carried only ACKs.
    let ack_ch = &out.channel_stats[dst_l.index() * 2];
    assert!(ack_ch.tx_bytes > 0 && ack_ch.tx_bytes < data_ch.tx_bytes / 4);
}
