//! Flow arrival processes.
//!
//! The paper uses log-normal inter-arrival times whose shape parameter
//! sigma controls burstiness (sigma = 1 low, sigma = 2 high; Tables 2-3),
//! scaled so the *mean* inter-arrival hits a target implied by the desired
//! maximum link load.

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};

/// Inter-arrival time process with a configurable mean (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Log-normal inter-arrivals with shape `sigma` (burstiness knob).
    LogNormal { mean_ns: f64, sigma: f64 },
    /// Poisson arrivals (exponential inter-arrivals); reference process.
    Poisson { mean_ns: f64 },
}

impl ArrivalProcess {
    pub fn lognormal(mean_ns: f64, sigma: f64) -> Self {
        assert!(mean_ns > 0.0 && sigma > 0.0);
        ArrivalProcess::LogNormal { mean_ns, sigma }
    }

    pub fn poisson(mean_ns: f64) -> Self {
        assert!(mean_ns > 0.0);
        ArrivalProcess::Poisson { mean_ns }
    }

    pub fn mean_ns(&self) -> f64 {
        match self {
            ArrivalProcess::LogNormal { mean_ns, .. } | ArrivalProcess::Poisson { mean_ns } => {
                *mean_ns
            }
        }
    }

    /// Sample one inter-arrival gap (>= 1 ns so arrival times strictly
    /// increase and event ordering stays deterministic).
    pub fn sample_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let gap = match self {
            ArrivalProcess::LogNormal { mean_ns, sigma } => {
                // E[LN(mu, sigma)] = exp(mu + sigma^2/2) = mean_ns.
                let mu = mean_ns.ln() - sigma * sigma / 2.0;
                LogNormal::new(mu, *sigma).unwrap().sample(rng)
            }
            ArrivalProcess::Poisson { mean_ns } => Exp::new(1.0 / mean_ns).unwrap().sample(rng),
        };
        (gap.round() as u64).max(1)
    }

    /// Generate `n` strictly increasing arrival times starting at 0.
    pub fn arrival_times<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u64> {
        let mut t = 0u64;
        (0..n)
            .map(|_| {
                t += self.sample_gap(rng);
                t
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_mean_matches_target() {
        let mut rng = SmallRng::seed_from_u64(1);
        for sigma in [1.0, 1.5, 2.0] {
            let p = ArrivalProcess::lognormal(10_000.0, sigma);
            let n = 200_000;
            let total: f64 = (0..n).map(|_| p.sample_gap(&mut rng) as f64).sum();
            let mean = total / n as f64;
            let rel = (mean - 10_000.0).abs() / 10_000.0;
            assert!(rel < 0.15, "sigma={sigma}: mean {mean}");
        }
    }

    #[test]
    fn higher_sigma_is_burstier() {
        // Burstiness = coefficient of variation of inter-arrivals.
        let mut rng = SmallRng::seed_from_u64(2);
        let cv = |sigma: f64, rng: &mut SmallRng| {
            let p = ArrivalProcess::lognormal(10_000.0, sigma);
            let samples: Vec<f64> = (0..100_000).map(|_| p.sample_gap(rng) as f64).collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let var =
                samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
            var.sqrt() / mean
        };
        let cv1 = cv(1.0, &mut rng);
        let cv2 = cv(2.0, &mut rng);
        assert!(
            cv2 > 1.5 * cv1,
            "cv(sigma=2)={cv2} should exceed cv(sigma=1)={cv1}"
        );
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut rng = SmallRng::seed_from_u64(3);
        let p = ArrivalProcess::poisson(5.0); // tiny mean forces 1ns floor
        let times = p.arrival_times(1000, &mut rng);
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
