//! The parameter spaces of Tables 2 (training), 3 (test) and 4 (network
//! configuration), as samplable types. Every sampler is deterministic given
//! the RNG, so train/test sets are reproducible from a seed.

use crate::path::PathScenarioSpec;
use crate::sizes::SizeDistribution;
use m3_netsim::prelude::*;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sample a network configuration from Table 4.
pub fn sample_config<R: Rng + ?Sized>(rng: &mut R) -> SimConfig {
    let cc = CcProtocol::ALL[rng.gen_range(0..CcProtocol::ALL.len())];
    sample_config_for(rng, cc)
}

/// Sample a Table 4 configuration for a fixed CC protocol.
pub fn sample_config_for<R: Rng + ?Sized>(rng: &mut R, cc: CcProtocol) -> SimConfig {
    let k_min = rng.gen_range(20 * KB..=50 * KB);
    let k_max = rng.gen_range(50 * KB..=100 * KB).max(k_min + KB);
    SimConfig {
        init_window: rng.gen_range(5 * KB..=30 * KB),
        buffer_size: rng.gen_range(200 * KB..=500 * KB),
        pfc_enabled: rng.gen_bool(0.5),
        cc,
        params: CcParams {
            dctcp_k: rng.gen_range(5 * KB..=20 * KB),
            dcqcn_k_min: k_min,
            dcqcn_k_max: k_max,
            hpcc_eta: rng.gen_range(0.70..=0.95),
            hpcc_rate_ai: rng.gen_range(500_000_000..=1_000_000_000),
            timely_t_low: rng.gen_range(40 * USEC..=60 * USEC),
            timely_t_high: rng.gen_range(100 * USEC..=150 * USEC),
        },
        ..SimConfig::default()
    }
}

/// Table 2: one training workload point (size family, theta, burstiness,
/// load, path length). `scale` shrinks the paper's 20,000 foreground flows
/// to a tractable count for CPU-only ground-truth collection; DESIGN.md
/// documents the substitution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingPoint {
    pub n_hops: usize,
    pub sizes: SizeDistribution,
    pub sigma: f64,
    pub max_load: f64,
    pub config: SimConfig,
    pub seed: u64,
}

/// Sample one Table 2 training point. `n_hops` cycles through {2, 4, 6}.
pub fn sample_training_point<R: Rng + ?Sized>(rng: &mut R, n_hops: usize) -> TrainingPoint {
    assert!(
        matches!(n_hops, 2 | 4 | 6),
        "paper trains on 2/4/6-hop paths"
    );
    let theta = rng.gen_range(5_000.0..=50_000.0);
    let sizes = match rng.gen_range(0..4) {
        0 => SizeDistribution::Pareto { theta },
        1 => SizeDistribution::Exp { theta },
        2 => SizeDistribution::Gaussian { theta },
        _ => SizeDistribution::LogNormal { theta },
    };
    TrainingPoint {
        n_hops,
        sizes,
        sigma: rng.gen_range(1.0..=2.0),
        max_load: rng.gen_range(0.20..=0.80),
        config: sample_config(rng),
        seed: rng.gen(),
    }
}

impl TrainingPoint {
    /// Instantiate the scenario spec with explicit flow counts (the paper
    /// uses 20,000 foreground flows; the repro default is set by callers).
    pub fn to_scenario_spec(&self, n_foreground: usize, n_background: usize) -> PathScenarioSpec {
        PathScenarioSpec {
            n_hops: self.n_hops,
            n_foreground,
            n_background,
            sizes: self.sizes.clone(),
            sigma: self.sigma,
            max_load: self.max_load,
            link_bandwidth: 10 * GBPS,
            host_bandwidth: 10 * GBPS,
            hop_delay: USEC,
            seed: self.seed,
        }
    }
}

/// Table 3: one evaluation scenario on a fat tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestPoint {
    pub oversub: usize,
    pub matrix_name: String,
    pub workload_name: String,
    pub sigma: f64,
    pub max_load: f64,
    pub config: SimConfig,
    pub seed: u64,
}

/// Sample one Table 3 test point (optionally pinned to one CC protocol, as
/// §5.2 pins DCTCP for the Parsimon comparison).
pub fn sample_test_point<R: Rng + ?Sized>(rng: &mut R, cc: Option<CcProtocol>) -> TestPoint {
    let config = match cc {
        Some(p) => sample_config_for(rng, p),
        None => sample_config(rng),
    };
    TestPoint {
        oversub: [1, 2, 4][rng.gen_range(0..3)],
        matrix_name: ["A", "B", "C"][rng.gen_range(0..3)].to_string(),
        workload_name: ["CacheFollower", "WebServer", "Hadoop"][rng.gen_range(0..3)].to_string(),
        sigma: if rng.gen_bool(0.5) { 1.0 } else { 2.0 },
        max_load: rng.gen_range(0.26..=0.83),
        config,
        seed: rng.gen(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_configs_within_table4() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = sample_config(&mut rng);
            assert!((5 * KB..=30 * KB).contains(&c.init_window));
            assert!((200 * KB..=500 * KB).contains(&c.buffer_size));
            assert!((5 * KB..=20 * KB).contains(&c.params.dctcp_k));
            assert!(c.params.dcqcn_k_min < c.params.dcqcn_k_max);
            assert!((0.70..=0.95).contains(&c.params.hpcc_eta));
            assert!((500_000_000..=1_000_000_000).contains(&c.params.hpcc_rate_ai));
            assert!(c.params.timely_t_low < c.params.timely_t_high);
        }
    }

    #[test]
    fn training_points_within_table2() {
        let mut rng = SmallRng::seed_from_u64(2);
        for hops in [2, 4, 6] {
            for _ in 0..50 {
                let p = sample_training_point(&mut rng, hops);
                assert!((1.0..=2.0).contains(&p.sigma));
                assert!((0.20..=0.80).contains(&p.max_load));
                assert!(p.sizes.mean() >= 4_000.0 && p.sizes.mean() <= 51_000.0);
            }
        }
    }

    #[test]
    fn test_points_within_table3() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = sample_test_point(&mut rng, Some(CcProtocol::Dctcp));
            assert!(matches!(p.oversub, 1 | 2 | 4));
            assert!(["A", "B", "C"].contains(&p.matrix_name.as_str()));
            assert!((0.26..=0.83).contains(&p.max_load));
            assert_eq!(p.config.cc, CcProtocol::Dctcp);
        }
    }

    #[test]
    #[should_panic(expected = "2/4/6")]
    fn rejects_odd_hop_count() {
        let mut rng = SmallRng::seed_from_u64(4);
        sample_training_point(&mut rng, 3);
    }
}
