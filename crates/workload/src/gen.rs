//! Full-network workload generation with maximum-link-load scaling.
//!
//! Given a fat tree, a traffic matrix, a size distribution and a burstiness
//! level, this module samples flows (endpoints, sizes, ECMP routes) and then
//! chooses the arrival rate so that the *most loaded link* sits at the
//! requested utilization — the "max load" knob of Tables 2-3.

use crate::arrivals::ArrivalProcess;
use crate::matrix::TrafficMatrix;
use crate::sizes::SizeDistribution;
use m3_netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A full-network scenario specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    pub n_flows: usize,
    /// Paper label ("A"/"B"/"C"/"uniform") for reporting.
    pub matrix_name: String,
    pub sizes: SizeDistribution,
    /// Log-normal inter-arrival shape (1 = low burstiness, 2 = high).
    pub sigma: f64,
    /// Target maximum link utilization in (0, 1).
    pub max_load: f64,
    pub seed: u64,
}

/// A generated workload: routed flows plus the load calibration metadata.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// Flows sorted by arrival time; ids follow arrival order.
    pub flows: Vec<FlowSpec>,
    /// Mean inter-arrival used for the arrival process.
    pub mean_interarrival_ns: f64,
    /// Expected utilization of the most loaded link at that rate.
    pub target_max_load: f64,
    /// Index of the most loaded link.
    pub hottest_link: LinkId,
}

/// Generate a routed, load-calibrated workload on a fat tree.
pub fn generate(ft: &FatTree, routing: &Routing, sc: &Scenario) -> GeneratedWorkload {
    assert!(sc.n_flows > 0);
    assert!(
        sc.max_load > 0.0 && sc.max_load < 1.0,
        "max_load must be in (0,1)"
    );
    let matrix = TrafficMatrix::by_name(&sc.matrix_name, ft.spec.total_racks())
        .unwrap_or_else(|| panic!("unknown traffic matrix {:?}", sc.matrix_name));
    let mut rng = SmallRng::seed_from_u64(sc.seed);

    // Pass 1: sample endpoints, sizes, and routes; accumulate per-link bytes.
    let mut link_bytes = vec![0u64; ft.topo.link_count()];
    let mut flows: Vec<FlowSpec> = Vec::with_capacity(sc.n_flows);
    for id in 0..sc.n_flows {
        let (src_rack, dst_rack) = matrix.sample(&mut rng);
        let src = ft.hosts[src_rack][rng.gen_range(0..ft.hosts[src_rack].len())];
        let dst = ft.hosts[dst_rack][rng.gen_range(0..ft.hosts[dst_rack].len())];
        let size = sc.sizes.sample(&mut rng);
        let path = routing.flow_path(&ft.topo, id as u64, src, dst);
        for &l in &path {
            link_bytes[l.index()] += size;
        }
        flows.push(FlowSpec {
            id: id as FlowId,
            src,
            dst,
            size,
            arrival: 0, // assigned below
            path,
        });
    }

    // Pass 2: pick the arrival rate from the hottest link.
    // load_l = bytes_l * 8 / (n_flows * gap * bw_l); solve gap for max load.
    let (hottest, seconds_per_gap) = link_bytes
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            (
                i,
                b as f64 * 8.0 / ft.topo.link(LinkId(i as u32)).bandwidth as f64,
            )
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("topology has links");
    // `seconds_per_gap` is the busy time (s) the hottest link needs per
    // workload; spread over n_flows gaps at utilization max_load:
    let gap_ns = seconds_per_gap * 1e9 / (sc.n_flows as f64 * sc.max_load);
    assert!(gap_ns >= 1.0, "workload too small to calibrate load");

    // Pass 3: assign bursty arrival times.
    let process = ArrivalProcess::lognormal(gap_ns, sc.sigma);
    let times = process.arrival_times(sc.n_flows, &mut rng);
    for (f, t) in flows.iter_mut().zip(times) {
        f.arrival = t;
    }

    GeneratedWorkload {
        flows,
        mean_interarrival_ns: gap_ns,
        target_max_load: sc.max_load,
        hottest_link: LinkId(hottest as u32),
    }
}

/// Measure the realized utilization of every link for a generated workload:
/// bytes offered to the link divided by capacity x makespan. Used by tests
/// and by experiment manifests to report achieved load.
pub fn offered_load(topo: &Topology, flows: &[FlowSpec]) -> Vec<f64> {
    let mut bytes = vec![0u64; topo.link_count()];
    for f in flows {
        for &l in &f.path {
            bytes[l.index()] += f.size;
        }
    }
    let span = flows.iter().map(|f| f.arrival).max().unwrap_or(1).max(1) as f64;
    bytes
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            b as f64 * 8.0 / (topo.link(LinkId(i as u32)).bandwidth as f64 * span / 1e9) / 1e9 * 1e9
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ft() -> (FatTree, Routing) {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        (ft, routing)
    }

    fn scenario(seed: u64) -> Scenario {
        Scenario {
            n_flows: 5_000,
            matrix_name: "B".into(),
            sizes: SizeDistribution::web_server(),
            sigma: 1.0,
            max_load: 0.5,
            seed,
        }
    }

    #[test]
    fn generates_requested_count_sorted() {
        let (ft, routing) = small_ft();
        let w = generate(&ft, &routing, &scenario(1));
        assert_eq!(w.flows.len(), 5_000);
        for win in w.flows.windows(2) {
            assert!(win[0].arrival <= win[1].arrival);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (ft, routing) = small_ft();
        let w1 = generate(&ft, &routing, &scenario(42));
        let w2 = generate(&ft, &routing, &scenario(42));
        assert_eq!(w1.flows, w2.flows);
        let w3 = generate(&ft, &routing, &scenario(43));
        assert_ne!(w1.flows, w3.flows);
    }

    #[test]
    fn calibrated_load_is_close_to_target() {
        let (ft, routing) = small_ft();
        let mut sc = scenario(7);
        sc.n_flows = 20_000;
        let w = generate(&ft, &routing, &sc);
        let loads = offered_load(&ft.topo, &w.flows);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        assert!(
            (0.3..0.75).contains(&max),
            "achieved max load {max} should be near target 0.5"
        );
    }

    #[test]
    fn endpoints_follow_matrix() {
        let (ft, routing) = small_ft();
        let mut sc = scenario(3);
        sc.matrix_name = "A".into();
        sc.n_flows = 20_000;
        let w = generate(&ft, &routing, &sc);
        // Matrix A is cluster-local: most flows stay within a 4-rack cluster.
        let rack_of =
            |h: NodeId| -> usize { ft.hosts.iter().position(|r| r.contains(&h)).unwrap() };
        let local = w
            .flows
            .iter()
            .filter(|f| rack_of(f.src) / 4 == rack_of(f.dst) / 4)
            .count();
        let frac = local as f64 / w.flows.len() as f64;
        assert!(
            frac > 0.5,
            "cluster-local fraction {frac} too low for matrix A"
        );
    }

    #[test]
    fn paths_connect_endpoints() {
        let (ft, routing) = small_ft();
        let w = generate(&ft, &routing, &scenario(11));
        for f in w.flows.iter().take(200) {
            let mut cur = f.src;
            for &l in &f.path {
                cur = ft.topo.link(l).other(cur);
            }
            assert_eq!(cur, f.dst);
        }
    }

    #[test]
    #[should_panic(expected = "max_load")]
    fn rejects_overload_target() {
        let (ft, routing) = small_ft();
        let mut sc = scenario(1);
        sc.max_load = 1.5;
        generate(&ft, &routing, &sc);
    }
}
