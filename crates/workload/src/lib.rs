//! # m3-workload
//!
//! Workload generation for the m3 reproduction: flow size distributions
//! (production-shaped empirical CDFs and the synthetic Table 2 families),
//! bursty log-normal arrival processes, rack-to-rack traffic matrices,
//! maximum-link-load calibration, and the synthetic parking-lot path
//! scenarios m3 trains on.
//!
//! ```
//! use m3_workload::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let dist = SizeDistribution::web_server();
//! let size = dist.sample(&mut rng);
//! assert!(size >= 50);
//! ```

pub mod arrivals;
pub mod gen;
pub mod matrix;
pub mod path;
pub mod sizes;
pub mod spaces;
pub mod trace;

pub mod prelude {
    pub use crate::arrivals::ArrivalProcess;
    pub use crate::gen::{generate, offered_load, GeneratedWorkload, Scenario};
    pub use crate::matrix::TrafficMatrix;
    pub use crate::path::{PathScenario, PathScenarioSpec};
    pub use crate::sizes::{CdfTable, SizeDistribution, MIN_FLOW_SIZE};
    pub use crate::spaces::{
        sample_config, sample_config_for, sample_test_point, sample_training_point, TestPoint,
        TrainingPoint,
    };
    pub use crate::trace::{
        flows_to_trace, materialize_trace, read_trace, write_trace, TraceError, TraceRecord,
    };
}
