//! Synthetic parking-lot path scenarios: the training building block of m3
//! (Table 2). A scenario is a parking lot of 2/4/6 hops, a set of
//! foreground flows spanning the whole path, and background flows joining
//! and leaving at arbitrary hops via private attachment hosts (§3.2).

use crate::arrivals::ArrivalProcess;
use crate::sizes::SizeDistribution;
use m3_flowsim::prelude::{FluidFlow, FluidTopology};
use m3_netsim::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification for one synthetic parking-lot scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathScenarioSpec {
    /// Number of switch-to-switch links (2, 4 or 6 in the paper).
    pub n_hops: usize,
    pub n_foreground: usize,
    pub n_background: usize,
    pub sizes: SizeDistribution,
    pub sigma: f64,
    pub max_load: f64,
    pub link_bandwidth: Bps,
    pub host_bandwidth: Bps,
    pub hop_delay: Nanos,
    pub seed: u64,
}

impl Default for PathScenarioSpec {
    fn default() -> Self {
        PathScenarioSpec {
            n_hops: 4,
            n_foreground: 500,
            n_background: 1500,
            sizes: SizeDistribution::cache_follower(),
            sigma: 1.5,
            max_load: 0.5,
            link_bandwidth: 10 * GBPS,
            host_bandwidth: 10 * GBPS,
            hop_delay: USEC,
            seed: 0,
        }
    }
}

/// A fully materialized path scenario: a parking-lot topology with private
/// background attachment hosts, routed flows, and the foreground flag per
/// flow. Ready to run in the packet simulator (ground truth) or to convert
/// into the fluid model (flowSim features).
#[derive(Debug, Clone)]
pub struct PathScenario {
    pub topo: Topology,
    /// The foreground path: fg access link, the path links, fg egress link.
    pub fg_path: Vec<LinkId>,
    /// Switch-to-switch links only, in order.
    pub path_links: Vec<LinkId>,
    /// All flows, sorted by arrival; `flows[i]` is foreground iff
    /// `is_foreground[i]`.
    pub flows: Vec<FlowSpec>,
    pub is_foreground: Vec<bool>,
    /// (join hop, exit hop) per flow: indexes into switches; foreground
    /// flows span (0, n_hops).
    pub segments: Vec<(usize, usize)>,
    pub spec: PathScenarioSpec,
}

impl PathScenario {
    /// Generate a scenario from its spec (deterministic in the seed).
    pub fn generate(spec: &PathScenarioSpec) -> Self {
        assert!(spec.n_hops >= 1);
        assert!(spec.n_foreground > 0);
        assert!(spec.max_load > 0.0 && spec.max_load < 1.0);
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x70617468);
        let mut pl = ParkingLot::build(
            spec.n_hops,
            spec.link_bandwidth,
            spec.host_bandwidth,
            spec.hop_delay,
        );

        // Flow descriptors: segment + size, then shuffled for interleaving.
        struct Desc {
            seg: (usize, usize),
            size: Bytes,
            fg: bool,
        }
        let mut descs: Vec<Desc> = Vec::with_capacity(spec.n_foreground + spec.n_background);
        for _ in 0..spec.n_foreground {
            descs.push(Desc {
                seg: (0, spec.n_hops),
                size: spec.sizes.sample(&mut rng),
                fg: true,
            });
        }
        for _ in 0..spec.n_background {
            // Any hop pair (i < j); full-span background is allowed, it just
            // uses private attachment links so it is not foreground traffic.
            let i = rng.gen_range(0..spec.n_hops);
            let j = rng.gen_range(i + 1..=spec.n_hops);
            descs.push(Desc {
                seg: (i, j),
                size: spec.sizes.sample(&mut rng),
                fg: false,
            });
        }
        descs.shuffle(&mut rng);

        // Materialize topology attachments and paths; accumulate link bytes
        // for load calibration.
        let mut link_bytes = vec![0u64; 0];
        let mut flows = Vec::with_capacity(descs.len());
        let mut is_foreground = Vec::with_capacity(descs.len());
        let mut segments = Vec::with_capacity(descs.len());
        for (id, d) in descs.iter().enumerate() {
            let (src, dst, path) = if d.fg {
                (pl.fg_src, pl.fg_dst, pl.foreground_path())
            } else {
                let src = pl.attach_background_host(d.seg.0, spec.host_bandwidth, spec.hop_delay);
                let dst = pl.attach_background_host(d.seg.1, spec.host_bandwidth, spec.hop_delay);
                let (_, l_src) = pl.topo.access_switch(src);
                let (_, l_dst) = pl.topo.access_switch(dst);
                let mut p = vec![l_src];
                p.extend_from_slice(&pl.path_links[d.seg.0..d.seg.1]);
                p.push(l_dst);
                (src, dst, p)
            };
            link_bytes.resize(pl.topo.link_count(), 0);
            for &l in &path {
                link_bytes[l.index()] += d.size;
            }
            flows.push(FlowSpec {
                id: id as FlowId,
                src,
                dst,
                size: d.size,
                arrival: 0,
                path,
            });
            is_foreground.push(d.fg);
            segments.push(d.seg);
        }

        // Load calibration on the hottest link (same scheme as gen.rs).
        let n = flows.len();
        let seconds_per_gap = link_bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| b as f64 * 8.0 / pl.topo.link(LinkId(i as u32)).bandwidth as f64)
            .fold(0.0f64, f64::max);
        let gap_ns = (seconds_per_gap * 1e9 / (n as f64 * spec.max_load)).max(1.0);
        let process = ArrivalProcess::lognormal(gap_ns, spec.sigma);
        let times = process.arrival_times(n, &mut rng);
        for (f, t) in flows.iter_mut().zip(times) {
            f.arrival = t;
        }

        PathScenario {
            fg_path: pl.foreground_path(),
            path_links: pl.path_links.clone(),
            topo: pl.topo,
            flows,
            is_foreground,
            segments,
            spec: spec.clone(),
        }
    }

    /// Number of fluid links: fg access + path links + fg egress.
    pub fn fluid_link_count(&self) -> usize {
        self.path_links.len() + 2
    }

    /// Convert to the fluid model used by flowSim. Fluid link 0 is the
    /// foreground access link, links 1..=n are the path links, link n+1 is
    /// the foreground egress link. Background flows are mapped onto their
    /// path-link segment with a private rate cap equal to their NIC.
    pub fn to_fluid(&self, mtu: Bytes) -> (FluidTopology, Vec<FluidFlow>) {
        let n_hops = self.path_links.len();
        let mut link_bps = Vec::with_capacity(n_hops + 2);
        link_bps.push(self.topo.link(self.fg_path[0]).bandwidth as f64);
        for &l in &self.path_links {
            link_bps.push(self.topo.link(l).bandwidth as f64);
        }
        link_bps.push(self.topo.link(*self.fg_path.last().unwrap()).bandwidth as f64);
        let fluid_topo = FluidTopology::new(link_bps);

        let flows = self
            .flows
            .iter()
            .zip(self.is_foreground.iter().zip(self.segments.iter()))
            .map(|(f, (&fg, &(i, j)))| {
                let (first, last) = if fg {
                    (0u16, (n_hops + 1) as u16)
                } else {
                    ((i + 1) as u16, j as u16)
                };
                let cap = if fg {
                    f64::INFINITY
                } else {
                    self.topo
                        .host_nic_bandwidth(f.src)
                        .min(self.topo.host_nic_bandwidth(f.dst)) as f64
                };
                let ideal_fct = self.topo.ideal_fct(&f.path, f.size, mtu);
                // Latency = ideal minus bottleneck serialization: folds
                // propagation and per-hop pipelining into a constant, so an
                // unloaded fluid flow has slowdown exactly 1 (Appendix A's
                // end-to-end latency factor).
                let bottleneck = (self.topo.bottleneck_bandwidth(&f.path) as f64).min(cap);
                let ser = (f.size.max(1) as f64 * 8e9 / bottleneck).ceil() as Nanos;
                FluidFlow {
                    id: f.id,
                    size: f.size,
                    arrival: f.arrival,
                    first_link: first,
                    last_link: last,
                    rate_cap_bps: cap,
                    latency: ideal_fct.saturating_sub(ser),
                    ideal_fct,
                }
            })
            .collect();
        (fluid_topo, flows)
    }

    /// Run the packet-level ground truth for this scenario.
    pub fn ground_truth(&self, config: SimConfig) -> SimOutput {
        run_simulation(&self.topo, config, self.flows.clone())
    }

    pub fn foreground_ids(&self) -> Vec<FlowId> {
        self.flows
            .iter()
            .zip(&self.is_foreground)
            .filter_map(|(f, &fg)| fg.then_some(f.id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PathScenarioSpec {
        PathScenarioSpec {
            n_foreground: 50,
            n_background: 150,
            seed: 9,
            ..PathScenarioSpec::default()
        }
    }

    #[test]
    fn counts_and_flags() {
        let s = PathScenario::generate(&spec());
        assert_eq!(s.flows.len(), 200);
        assert_eq!(s.is_foreground.iter().filter(|&&f| f).count(), 50);
        // Arrivals sorted.
        for w in s.flows.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn foreground_uses_full_path() {
        let s = PathScenario::generate(&spec());
        for (f, &fg) in s.flows.iter().zip(&s.is_foreground) {
            if fg {
                assert_eq!(f.path, s.fg_path);
            } else {
                assert_ne!(f.path, s.fg_path);
            }
        }
    }

    #[test]
    fn background_segments_within_path() {
        let s = PathScenario::generate(&spec());
        for (&(i, j), &fg) in s.segments.iter().zip(&s.is_foreground) {
            assert!(i < j && j <= s.spec.n_hops);
            let _ = fg;
        }
    }

    #[test]
    fn fluid_conversion_shapes() {
        let s = PathScenario::generate(&spec());
        let (ft, flows) = s.to_fluid(1000);
        assert_eq!(ft.num_links(), s.spec.n_hops + 2);
        assert_eq!(flows.len(), s.flows.len());
        for (ff, &fg) in flows.iter().zip(&s.is_foreground) {
            if fg {
                assert_eq!(ff.first_link, 0);
                assert_eq!(ff.last_link as usize, s.spec.n_hops + 1);
                assert!(ff.rate_cap_bps.is_infinite());
            } else {
                assert!(ff.first_link >= 1);
                assert!((ff.last_link as usize) <= s.spec.n_hops);
                assert!(ff.rate_cap_bps.is_finite());
            }
            assert!(ff.ideal_fct > 0);
        }
    }

    #[test]
    fn ground_truth_smoke() {
        let mut sp = spec();
        sp.n_foreground = 20;
        sp.n_background = 60;
        let s = PathScenario::generate(&sp);
        let out = s.ground_truth(SimConfig::default());
        assert_eq!(out.records.len(), 80);
        for r in &out.records {
            assert!(r.slowdown() >= 0.99);
        }
    }

    #[test]
    fn deterministic() {
        let a = PathScenario::generate(&spec());
        let b = PathScenario::generate(&spec());
        assert_eq!(a.flows, b.flows);
    }
}
