//! Flow size distributions.
//!
//! Two families, matching the paper's Tables 2-3:
//! * parametric distributions (Pareto, Exponential, Gaussian, Log-normal)
//!   with a continuous size parameter theta, used for synthetic training
//!   scenarios, and
//! * empirical CDFs shaped after the Meta/Facebook production distributions
//!   (CacheFollower, WebServer, Hadoop; Fig. 18(b)), used for evaluation.
//!
//! The empirical tables are approximations of the published curves with the
//! Hadoop tail truncated at 3 MB so the packet-level ground-truth simulations
//! stay tractable (see DESIGN.md, substitutions).

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal, Normal, Pareto};
use serde::{Deserialize, Serialize};

/// Minimum flow size we ever generate (one small request).
pub const MIN_FLOW_SIZE: u64 = 50;

/// A point-wise empirical CDF: P(size <= bytes) = cdf, strictly increasing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdfTable {
    /// (bytes, cumulative probability), sorted, last probability = 1.0.
    pub points: Vec<(u64, f64)>,
}

impl CdfTable {
    pub fn new(points: Vec<(u64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert!(
            points
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1),
            "CDF points must be strictly increasing"
        );
        let last = points.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9, "CDF must end at 1.0");
        assert!(points[0].1 >= 0.0);
        CdfTable { points }
    }

    /// Inverse-CDF sampling with linear interpolation between points.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.inverse(u)
    }

    /// Quantile function (u in `[0,1]`).
    pub fn inverse(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        if u <= self.points[0].1 {
            return self.points[0].0.max(MIN_FLOW_SIZE);
        }
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if u <= p1 {
                let frac = (u - p0) / (p1 - p0);
                let x = x0 as f64 + frac * (x1 - x0) as f64;
                return (x as u64).max(MIN_FLOW_SIZE);
            }
        }
        self.points.last().unwrap().0
    }

    /// Mean under the piecewise-linear interpolation.
    pub fn mean(&self) -> f64 {
        let mut m = self.points[0].0 as f64 * self.points[0].1;
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            m += (p1 - p0) * (x0 + x1) as f64 / 2.0;
        }
        m
    }
}

/// The flow size distribution families of Tables 2-3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Empirical production-shaped CDF.
    Empirical(CdfTable),
    /// Pareto with mean `theta` (shape fixed at 1.8).
    Pareto { theta: f64 },
    /// Exponential with mean `theta`.
    Exp { theta: f64 },
    /// Gaussian with mean `theta`, std `theta/2`, truncated at MIN_FLOW_SIZE.
    Gaussian { theta: f64 },
    /// Log-normal with mean `theta` and shape sigma = 1.
    LogNormal { theta: f64 },
}

/// Pareto shape used for the synthetic family; >1 so the mean exists.
const PARETO_SHAPE: f64 = 1.8;
/// Log-normal shape for the synthetic family.
const LOGNORMAL_SHAPE: f64 = 1.0;

impl SizeDistribution {
    /// The three production workloads of §5.1, shaped after Fig. 18(b).
    pub fn web_server() -> Self {
        SizeDistribution::Empirical(CdfTable::new(vec![
            (100, 0.05),
            (200, 0.20),
            (300, 0.35),
            (500, 0.50),
            (700, 0.60),
            (1_000, 0.70),
            (2_000, 0.82),
            (5_000, 0.90),
            (10_000, 0.94),
            (20_000, 0.97),
            (50_000, 0.990),
            (100_000, 0.997),
            (500_000, 1.0),
        ]))
    }

    pub fn cache_follower() -> Self {
        SizeDistribution::Empirical(CdfTable::new(vec![
            (100, 0.02),
            (300, 0.10),
            (1_000, 0.25),
            (2_000, 0.40),
            (5_000, 0.55),
            (10_000, 0.70),
            (20_000, 0.80),
            (50_000, 0.90),
            (100_000, 0.95),
            (500_000, 0.99),
            (1_000_000, 0.998),
            (3_000_000, 1.0),
        ]))
    }

    pub fn hadoop() -> Self {
        SizeDistribution::Empirical(CdfTable::new(vec![
            (100, 0.10),
            (300, 0.30),
            (1_000, 0.50),
            (10_000, 0.65),
            (100_000, 0.82),
            (500_000, 0.92),
            (1_000_000, 0.97),
            (3_000_000, 1.0),
        ]))
    }

    /// Look up a production workload by its paper name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "WebServer" => Some(Self::web_server()),
            "CacheFollower" => Some(Self::cache_follower()),
            "Hadoop" => Some(Self::hadoop()),
            _ => None,
        }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let v = match self {
            SizeDistribution::Empirical(cdf) => return cdf.sample(rng),
            SizeDistribution::Pareto { theta } => {
                // mean = shape * scale / (shape - 1)  =>  scale from theta.
                let scale = theta * (PARETO_SHAPE - 1.0) / PARETO_SHAPE;
                Pareto::new(scale, PARETO_SHAPE).unwrap().sample(rng)
            }
            SizeDistribution::Exp { theta } => Exp::new(1.0 / theta).unwrap().sample(rng),
            SizeDistribution::Gaussian { theta } => {
                Normal::new(*theta, theta / 2.0).unwrap().sample(rng)
            }
            SizeDistribution::LogNormal { theta } => {
                // mean = exp(mu + sigma^2/2)  =>  mu = ln(theta) - sigma^2/2.
                let mu = theta.ln() - LOGNORMAL_SHAPE * LOGNORMAL_SHAPE / 2.0;
                LogNormal::new(mu, LOGNORMAL_SHAPE).unwrap().sample(rng)
            }
        };
        (v.max(MIN_FLOW_SIZE as f64) as u64).max(MIN_FLOW_SIZE)
    }

    /// Analytic mean flow size (up to truncation effects).
    pub fn mean(&self) -> f64 {
        match self {
            SizeDistribution::Empirical(cdf) => cdf.mean(),
            SizeDistribution::Pareto { theta }
            | SizeDistribution::Exp { theta }
            | SizeDistribution::Gaussian { theta }
            | SizeDistribution::LogNormal { theta } => *theta,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            SizeDistribution::Empirical(_) => "empirical",
            SizeDistribution::Pareto { .. } => "pareto",
            SizeDistribution::Exp { .. } => "exp",
            SizeDistribution::Gaussian { .. } => "gaussian",
            SizeDistribution::LogNormal { .. } => "lognormal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_inverse_endpoints() {
        let cdf = CdfTable::new(vec![(100, 0.5), (1000, 1.0)]);
        assert_eq!(cdf.inverse(0.0), 100);
        assert_eq!(cdf.inverse(1.0), 1000);
        assert_eq!(cdf.inverse(0.75), 550);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn cdf_rejects_nonmonotone() {
        CdfTable::new(vec![(100, 0.5), (1000, 0.4), (2000, 1.0)]);
    }

    #[test]
    fn sample_means_match_theta() {
        let mut rng = SmallRng::seed_from_u64(7);
        for dist in [
            SizeDistribution::Pareto { theta: 20_000.0 },
            SizeDistribution::Exp { theta: 20_000.0 },
            SizeDistribution::Gaussian { theta: 20_000.0 },
            SizeDistribution::LogNormal { theta: 20_000.0 },
        ] {
            let n = 200_000;
            let total: f64 = (0..n).map(|_| dist.sample(&mut rng) as f64).sum();
            let mean = total / n as f64;
            let rel = (mean - 20_000.0).abs() / 20_000.0;
            assert!(
                rel < 0.25,
                "{}: sample mean {mean} too far from theta",
                dist.name()
            );
        }
    }

    #[test]
    fn production_workloads_ordered_by_weight() {
        // WebServer is dominated by small flows; Hadoop has the heaviest tail.
        let web = SizeDistribution::web_server().mean();
        let cache = SizeDistribution::cache_follower().mean();
        let hadoop = SizeDistribution::hadoop().mean();
        assert!(web < cache, "web {web} < cache {cache}");
        assert!(cache < hadoop, "cache {cache} < hadoop {hadoop}");
    }

    #[test]
    fn samples_respect_min_size() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dist = SizeDistribution::Gaussian { theta: 100.0 };
        for _ in 0..1000 {
            assert!(dist.sample(&mut rng) >= MIN_FLOW_SIZE);
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for name in ["WebServer", "CacheFollower", "Hadoop"] {
            assert!(SizeDistribution::by_name(name).is_some());
        }
        assert!(SizeDistribution::by_name("bogus").is_none());
    }

    #[test]
    fn empirical_mean_reasonable() {
        let m = SizeDistribution::web_server().mean();
        assert!(m > 1_000.0 && m < 50_000.0, "web mean {m}");
    }
}
