//! Flow-trace import/export.
//!
//! Operators usually have real traces rather than synthetic generators;
//! this module reads and writes a simple JSON-Lines trace format so
//! external workloads can be fed to every estimator in the workspace:
//!
//! ```text
//! {"id":0,"src":12,"dst":97,"size":4096,"arrival":1500}
//! {"id":1,"src":3,"dst":44,"size":512,"arrival":2750}
//! ```
//!
//! `src`/`dst` are host indices into the topology's host list (rack-major
//! for fat trees); routes are computed with the same ECMP used everywhere
//! else, so imported traces are directly comparable to generated ones.

use m3_netsim::prelude::*;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One trace line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    pub id: u32,
    /// Host index (position in the topology's host list).
    pub src: usize,
    pub dst: usize,
    pub size: u64,
    pub arrival: u64,
}

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceError {
    Io(std::io::Error),
    Parse { line: usize, message: String },
    Invalid { line: usize, message: String },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => write!(f, "trace line {line}: {message}"),
            TraceError::Invalid { line, message } => {
                write!(f, "trace line {line}: invalid record: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Parse a JSON-Lines trace. Blank lines and `#` comments are skipped.
pub fn read_trace<R: BufRead>(reader: R) -> Result<Vec<TraceRecord>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(trimmed).map_err(|e| TraceError::Parse {
            line: i + 1,
            message: e.to_string(),
        })?;
        if rec.src == rec.dst {
            return Err(TraceError::Invalid {
                line: i + 1,
                message: format!("flow {} has src == dst", rec.id),
            });
        }
        out.push(rec);
    }
    Ok(out)
}

/// Write a JSON-Lines trace.
pub fn write_trace<W: Write>(mut writer: W, records: &[TraceRecord]) -> Result<(), TraceError> {
    for r in records {
        serde_json::to_writer(&mut writer, r).map_err(|e| TraceError::Parse {
            line: 0,
            message: e.to_string(),
        })?;
        writeln!(writer)?;
    }
    Ok(())
}

/// Route a parsed trace onto a topology: host indices are resolved against
/// `hosts` (e.g. `FatTree::all_hosts()`), ECMP routes computed, and the
/// result sorted by arrival — ready for any estimator.
pub fn materialize_trace(
    records: &[TraceRecord],
    topo: &Topology,
    hosts: &[NodeId],
    routing: &Routing,
) -> Result<Vec<FlowSpec>, TraceError> {
    let mut flows = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let src = *hosts.get(r.src).ok_or_else(|| TraceError::Invalid {
            line: i + 1,
            message: format!(
                "src host index {} out of range ({} hosts)",
                r.src,
                hosts.len()
            ),
        })?;
        let dst = *hosts.get(r.dst).ok_or_else(|| TraceError::Invalid {
            line: i + 1,
            message: format!("dst host index {} out of range", r.dst),
        })?;
        flows.push(FlowSpec {
            id: r.id,
            src,
            dst,
            size: r.size.max(1),
            arrival: r.arrival,
            path: routing.flow_path(topo, r.id as u64, src, dst),
        });
    }
    flows.sort_by_key(|f| (f.arrival, f.id));
    Ok(flows)
}

/// Export generated flows back to trace records (inverse of
/// [`materialize_trace`] up to host indexing).
pub fn flows_to_trace(flows: &[FlowSpec], hosts: &[NodeId]) -> Vec<TraceRecord> {
    let index_of: std::collections::HashMap<NodeId, usize> =
        hosts.iter().enumerate().map(|(i, &h)| (h, i)).collect();
    flows
        .iter()
        .map(|f| TraceRecord {
            id: f.id,
            src: index_of[&f.src],
            dst: index_of[&f.dst],
            size: f.size,
            arrival: f.arrival,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> &'static str {
        "# a comment\n\
         {\"id\":0,\"src\":0,\"dst\":9,\"size\":4096,\"arrival\":1500}\n\
         \n\
         {\"id\":1,\"src\":3,\"dst\":7,\"size\":512,\"arrival\":2750}\n"
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let recs = read_trace(sample_trace().as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].size, 4096);
        assert_eq!(recs[1].arrival, 2750);
    }

    #[test]
    fn parse_rejects_self_flow() {
        let bad = "{\"id\":0,\"src\":5,\"dst\":5,\"size\":1,\"arrival\":0}";
        let err = read_trace(bad.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Invalid { line: 1, .. }));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let bad = "{\"id\":0,\"src\":0,\"dst\":1,\"size\":1,\"arrival\":0}\nnot json";
        let err = read_trace(bad.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }));
    }

    #[test]
    fn roundtrip_through_writer() {
        let recs = read_trace(sample_trace().as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &recs).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(recs, back);
    }

    #[test]
    fn materialize_routes_and_sorts() {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let hosts = ft.all_hosts();
        let recs = vec![
            TraceRecord {
                id: 0,
                src: 0,
                dst: 200,
                size: 1000,
                arrival: 900,
            },
            TraceRecord {
                id: 1,
                src: 5,
                dst: 100,
                size: 2000,
                arrival: 100,
            },
        ];
        let flows = materialize_trace(&recs, &ft.topo, &hosts, &routing).unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].id, 1, "sorted by arrival");
        for f in &flows {
            let mut cur = f.src;
            for &l in &f.path {
                cur = ft.topo.link(l).other(cur);
            }
            assert_eq!(cur, f.dst);
        }
        // Round-trip back to records.
        let back = flows_to_trace(&flows, &hosts);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].id, 1);
        assert_eq!(back[0].src, 5);
    }

    #[test]
    fn materialize_rejects_bad_host_index() {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let hosts = ft.all_hosts();
        let recs = vec![TraceRecord {
            id: 0,
            src: 9999,
            dst: 1,
            size: 1,
            arrival: 0,
        }];
        assert!(materialize_trace(&recs, &ft.topo, &hosts, &routing).is_err());
    }
}
