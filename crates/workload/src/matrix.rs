//! Rack-to-rack traffic matrices.
//!
//! The paper evaluates on three traffic matrices (A, B, C) extracted from
//! Meta's production dataset (Fig. 18(a)). The dataset itself is not
//! redistributable, so these builders synthesize matrices with the
//! qualitative structure the paper describes and Fig. 11 exercises:
//!
//! * **A** — clustered (CacheFollower-style): most traffic stays within
//!   rack clusters, a hot pattern that concentrates load on pod-local links.
//! * **B** — broad (WebServer-style): near-uniform all-to-all with mild
//!   row skew.
//! * **C** — heavily skewed: a few hot source racks dominate ("the most
//!   skewed traffic", §5.2), producing paths with very few flows.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A rack-to-rack demand matrix. Entries are non-negative weights; sampling
/// draws a (src, dst) rack pair proportional to weight. The diagonal is
/// zero: intra-rack traffic does not cross the fabric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n_racks: usize,
    /// Row-major weights, diagonal zero.
    weights: Vec<f64>,
    /// Cumulative sum for inverse sampling.
    cumulative: Vec<f64>,
}

impl TrafficMatrix {
    pub fn new(n_racks: usize, mut weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), n_racks * n_racks);
        assert!(weights.iter().all(|&w| w >= 0.0 && w.is_finite()));
        for i in 0..n_racks {
            weights[i * n_racks + i] = 0.0;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "traffic matrix has no demand");
        TrafficMatrix {
            n_racks,
            weights,
            cumulative,
        }
    }

    pub fn n_racks(&self) -> usize {
        self.n_racks
    }

    pub fn weight(&self, src: usize, dst: usize) -> f64 {
        self.weights[src * self.n_racks + dst]
    }

    /// Normalized demand fraction for (src, dst).
    pub fn fraction(&self, src: usize, dst: usize) -> f64 {
        self.weight(src, dst) / self.cumulative.last().unwrap()
    }

    /// Sample a (src_rack, dst_rack) pair proportional to weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, usize) {
        let total = *self.cumulative.last().unwrap();
        let u: f64 = rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c <= u);
        let idx = idx.min(self.weights.len() - 1);
        (idx / self.n_racks, idx % self.n_racks)
    }

    /// Uniform all-to-all demand.
    pub fn uniform(n_racks: usize) -> Self {
        TrafficMatrix::new(n_racks, vec![1.0; n_racks * n_racks])
    }

    /// Matrix A: clustered. Racks are grouped in clusters of four; traffic
    /// within a cluster is 20x the background level.
    pub fn matrix_a(n_racks: usize) -> Self {
        let cluster = 4;
        let mut w = vec![1.0; n_racks * n_racks];
        for s in 0..n_racks {
            for d in 0..n_racks {
                if s != d && s / cluster == d / cluster {
                    w[s * n_racks + d] = 20.0;
                }
            }
        }
        TrafficMatrix::new(n_racks, w)
    }

    /// Matrix B: broad with mild skew. Row r's demand is proportional to
    /// 1 + r/n, an almost-uniform gradient.
    pub fn matrix_b(n_racks: usize) -> Self {
        let mut w = vec![0.0; n_racks * n_racks];
        for s in 0..n_racks {
            let row = 1.0 + s as f64 / n_racks as f64;
            for d in 0..n_racks {
                w[s * n_racks + d] = row;
            }
        }
        TrafficMatrix::new(n_racks, w)
    }

    /// Matrix C: heavily skewed. Rack popularity follows a Zipf law with
    /// exponent 1.2 on both rows and columns, so a handful of rack pairs
    /// carry most of the traffic and many paths carry almost none.
    pub fn matrix_c(n_racks: usize) -> Self {
        let pop: Vec<f64> = (0..n_racks)
            .map(|r| 1.0 / ((r + 1) as f64).powf(1.2))
            .collect();
        let mut w = vec![0.0; n_racks * n_racks];
        for s in 0..n_racks {
            for d in 0..n_racks {
                w[s * n_racks + d] = pop[s] * pop[d];
            }
        }
        TrafficMatrix::new(n_racks, w)
    }

    /// Look up a matrix by its paper label.
    pub fn by_name(name: &str, n_racks: usize) -> Option<Self> {
        match name {
            "A" => Some(Self::matrix_a(n_racks)),
            "B" => Some(Self::matrix_b(n_racks)),
            "C" => Some(Self::matrix_c(n_racks)),
            "uniform" => Some(Self::uniform(n_racks)),
            _ => None,
        }
    }

    /// Gini-style skew measure: fraction of total demand carried by the top
    /// 1% of rack pairs. Used to sanity-check that A < C in skew.
    pub fn top_percent_share(&self, percent: f64) -> f64 {
        let mut w = self.weights.clone();
        w.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = w.iter().sum();
        let k = ((w.len() as f64 * percent / 100.0).ceil() as usize).max(1);
        w[..k].iter().sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn diagonal_is_zero() {
        for m in [
            TrafficMatrix::uniform(8),
            TrafficMatrix::matrix_a(8),
            TrafficMatrix::matrix_b(8),
            TrafficMatrix::matrix_c(8),
        ] {
            for r in 0..8 {
                assert_eq!(m.weight(r, r), 0.0);
            }
        }
    }

    #[test]
    fn sample_never_returns_diagonal() {
        let m = TrafficMatrix::matrix_c(16);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let (s, d) = m.sample(&mut rng);
            assert_ne!(s, d);
            assert!(s < 16 && d < 16);
        }
    }

    #[test]
    fn sample_matches_fractions() {
        let m = TrafficMatrix::matrix_a(8);
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 200_000;
        let mut counts = vec![0usize; 64];
        for _ in 0..n {
            let (s, d) = m.sample(&mut rng);
            counts[s * 8 + d] += 1;
        }
        // In-cluster pair (0,1) should see ~20x the traffic of (0,7).
        let in_cluster = counts[1] as f64;
        let cross = counts[7] as f64;
        let ratio = in_cluster / cross.max(1.0);
        assert!((10.0..40.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn skew_ordering_a_b_c() {
        let a = TrafficMatrix::matrix_a(32).top_percent_share(5.0);
        let b = TrafficMatrix::matrix_b(32).top_percent_share(5.0);
        let c = TrafficMatrix::matrix_c(32).top_percent_share(5.0);
        assert!(c > a, "C ({c}) must be more skewed than A ({a})");
        assert!(c > b, "C ({c}) must be more skewed than B ({b})");
    }

    #[test]
    fn by_name_roundtrip() {
        for n in ["A", "B", "C", "uniform"] {
            assert!(TrafficMatrix::by_name(n, 8).is_some());
        }
        assert!(TrafficMatrix::by_name("Z", 8).is_none());
    }
}
