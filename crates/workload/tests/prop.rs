//! Property tests for workload generation: load calibration, distribution
//! sanity, and scenario determinism across the whole parameter space.

use m3_netsim::prelude::*;
use m3_workload::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sampled sizes from any Table 2 family are positive and bounded-mean.
    #[test]
    fn synthetic_sizes_positive(theta in 5_000.0f64..50_000.0, which in 0usize..4) {
        let dist = match which {
            0 => SizeDistribution::Pareto { theta },
            1 => SizeDistribution::Exp { theta },
            2 => SizeDistribution::Gaussian { theta },
            _ => SizeDistribution::LogNormal { theta },
        };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = dist.sample(&mut rng);
            prop_assert!(s >= MIN_FLOW_SIZE);
        }
    }

    /// Load calibration lands within a factor of the target for any matrix,
    /// workload and load level.
    #[test]
    fn calibrated_load_reasonable(
        target in 0.25f64..0.8,
        m_idx in 0usize..3,
        w_idx in 0usize..3,
        seed in 0u64..50,
    ) {
        let ft = FatTree::build(FatTreeSpec::small(2));
        let routing = Routing::new(&ft.topo);
        let sc = Scenario {
            n_flows: 8_000,
            matrix_name: ["A", "B", "C"][m_idx].into(),
            sizes: SizeDistribution::by_name(["CacheFollower", "WebServer", "Hadoop"][w_idx]).unwrap(),
            sigma: 1.0,
            max_load: target,
            seed,
        };
        let w = generate(&ft, &routing, &sc);
        let loads = offered_load(&ft.topo, &w.flows);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        prop_assert!(
            max > target * 0.4 && max < target * 2.2,
            "target {target}, achieved {max}"
        );
    }

    /// Path scenarios: arrivals sorted, foreground count honored, every
    /// path valid, deterministic.
    #[test]
    fn path_scenarios_well_formed(
        hops in prop::sample::select(vec![1usize, 2, 4, 6]),
        fg in 5usize..40,
        bg in 0usize..80,
        seed in 0u64..100,
    ) {
        let spec = PathScenarioSpec {
            n_hops: hops,
            n_foreground: fg,
            n_background: bg,
            seed,
            ..PathScenarioSpec::default()
        };
        let a = PathScenario::generate(&spec);
        let b = PathScenario::generate(&spec);
        prop_assert_eq!(&a.flows, &b.flows);
        prop_assert_eq!(a.flows.len(), fg + bg);
        prop_assert_eq!(a.is_foreground.iter().filter(|&&x| x).count(), fg);
        for w in a.flows.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
        // Every flow's path is connected from src to dst.
        for f in &a.flows {
            let mut cur = f.src;
            for &l in &f.path {
                cur = a.topo.link(l).other(cur);
            }
            prop_assert_eq!(cur, f.dst);
        }
    }

    /// Traffic matrices never emit diagonal pairs and respect rack bounds.
    #[test]
    fn matrices_valid(n_racks in 4usize..48, seed in 0u64..20) {
        for name in ["A", "B", "C", "uniform"] {
            let m = TrafficMatrix::by_name(name, n_racks).unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..200 {
                let (s, d) = m.sample(&mut rng);
                prop_assert!(s != d && s < n_racks && d < n_racks);
            }
        }
    }
}
