//! The m3 neural model (§3.4, Fig. 7(b)):
//!
//! * a tiny-Llama-style causal transformer (RMSNorm, multi-head attention,
//!   SwiGLU feed-forward, learned positions) encodes the sequence of
//!   per-hop *background* feature maps into a fixed-length context vector
//!   (the last token's hidden state), and
//! * a two-layer MLP maps [foreground feature map ∥ background context ∥
//!   network-spec vector] to the corrected slowdown distribution
//!   (4 size buckets x 100 percentiles = 400 outputs).
//!
//! Dimensions are configurable: [`ModelConfig::repro_default`] is small
//! enough to train on CPU in minutes; [`ModelConfig::paper_scale`] matches
//! the paper's 4-layer / 4-head / d=576 setup (~16.8 M parameters).

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Model dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Flattened feature-map width (10 size buckets x 100 percentiles).
    pub feat_dim: usize,
    /// Network-specification vector width.
    pub spec_dim: usize,
    /// Output width (4 buckets x 100 percentiles).
    pub out_dim: usize,
    pub embed: usize,
    pub heads: usize,
    pub layers: usize,
    /// Maximum sequence length (hops); the paper uses block size 16.
    pub block: usize,
    /// SwiGLU inner width.
    pub ff_hidden: usize,
    /// MLP hidden width.
    pub mlp_hidden: usize,
}

impl ModelConfig {
    /// CPU-trainable default used by the reproduction experiments.
    pub fn repro_default(spec_dim: usize) -> Self {
        ModelConfig {
            feat_dim: 1000,
            spec_dim,
            out_dim: 400,
            embed: 64,
            heads: 4,
            layers: 2,
            block: 16,
            ff_hidden: 128,
            mlp_hidden: 128,
        }
    }

    /// The paper's architecture (§5.1): 4 layers, 4 heads, embedding 576,
    /// block 16; MLP hidden 512.
    pub fn paper_scale(spec_dim: usize) -> Self {
        ModelConfig {
            feat_dim: 1000,
            spec_dim,
            out_dim: 400,
            embed: 576,
            heads: 4,
            layers: 4,
            block: 16,
            ff_hidden: 1536,
            mlp_hidden: 512,
        }
    }

    pub fn head_dim(&self) -> usize {
        assert_eq!(self.embed % self.heads, 0, "embed must divide by heads");
        self.embed / self.heads
    }

    /// Structural validation with hard dimension caps. Used before
    /// constructing a net from untrusted data (checkpoint headers), so a
    /// corrupt or hostile config cannot trigger an enormous allocation.
    pub fn validate(&self) -> Result<(), String> {
        const MAX_IO_DIM: usize = 1 << 20; // feature / output widths
        const MAX_HIDDEN: usize = 1 << 14; // embed / ff / mlp widths
        const MAX_SCALARS: u128 = 1 << 27; // ~512 MB of f32 parameters
        let caps: [(&str, usize, usize); 9] = [
            ("feat_dim", self.feat_dim, MAX_IO_DIM),
            ("spec_dim", self.spec_dim, MAX_IO_DIM),
            ("out_dim", self.out_dim, MAX_IO_DIM),
            ("embed", self.embed, MAX_HIDDEN),
            ("heads", self.heads, 256),
            ("layers", self.layers, 128),
            ("block", self.block, 1 << 12),
            ("ff_hidden", self.ff_hidden, MAX_HIDDEN),
            ("mlp_hidden", self.mlp_hidden, MAX_HIDDEN),
        ];
        for (name, v, cap) in caps {
            if v == 0 {
                return Err(format!("{name} must be nonzero"));
            }
            if v > cap {
                return Err(format!("{name} = {v} exceeds cap {cap}"));
            }
        }
        if !self.embed.is_multiple_of(self.heads) {
            return Err(format!(
                "embed {} not divisible by heads {}",
                self.embed, self.heads
            ));
        }
        // Upper bound on total parameter scalars (overestimates are fine;
        // this only guards allocation size).
        let (f, s, o) = (
            self.feat_dim as u128,
            self.spec_dim as u128,
            self.out_dim as u128,
        );
        let (e, l, b) = (self.embed as u128, self.layers as u128, self.block as u128);
        let (ff, mh) = (self.ff_hidden as u128, self.mlp_hidden as u128);
        let per_layer = 4 * e * e + 3 * e * ff + 2 * e;
        let mlp_in = f + e + s;
        let total = f * e + e + b * e + l * per_layer + e + mlp_in * mh + mh + mh * o + o;
        if total > MAX_SCALARS {
            return Err(format!(
                "architecture implies ~{total} parameters, over the {MAX_SCALARS} cap"
            ));
        }
        Ok(())
    }
}

/// Parameter layout of one transformer layer.
#[derive(Debug, Clone)]
pub(crate) struct LayerIds {
    pub(crate) norm1: ParamId,
    pub(crate) wq: Vec<ParamId>,
    pub(crate) wk: Vec<ParamId>,
    pub(crate) wv: Vec<ParamId>,
    pub(crate) wo: Vec<ParamId>,
    pub(crate) norm2: ParamId,
    pub(crate) w1: ParamId,
    pub(crate) w3: ParamId,
    pub(crate) w2: ParamId,
}

/// One training/inference sample.
#[derive(Debug, Clone)]
pub struct SampleInput {
    /// Foreground feature map, length `feat_dim`.
    pub fg: Vec<f32>,
    /// Per-hop background feature maps, each length `feat_dim`.
    pub bg: Vec<Vec<f32>>,
    /// Network-spec vector, length `spec_dim`.
    pub spec: Vec<f32>,
    /// When false, the background context is zeroed ("m3 w/o context"
    /// ablation, Fig. 16).
    pub use_context: bool,
}

/// The m3 model: transformer + MLP over a shared [`ParamStore`].
#[derive(Debug, Clone)]
pub struct M3Net {
    pub cfg: ModelConfig,
    pub store: ParamStore,
    pub(crate) proj_w: ParamId,
    pub(crate) proj_b: ParamId,
    pub(crate) pos: ParamId,
    pub(crate) layers: Vec<LayerIds>,
    pub(crate) final_norm: ParamId,
    pub(crate) mlp_w1: ParamId,
    pub(crate) mlp_b1: ParamId,
    pub(crate) mlp_w2: ParamId,
    pub(crate) mlp_b2: ParamId,
}

impl M3Net {
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = ParamStore::seeded_rng(seed);
        let dh = cfg.head_dim();
        let proj_w = store.add_xavier("proj.w", cfg.feat_dim, cfg.embed, &mut rng);
        let proj_b = store.add_zeros("proj.b", 1, cfg.embed);
        let pos = store.add_xavier("pos", cfg.block, cfg.embed, &mut rng);
        let mut layers = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let mut wq = Vec::new();
            let mut wk = Vec::new();
            let mut wv = Vec::new();
            let mut wo = Vec::new();
            for h in 0..cfg.heads {
                wq.push(store.add_xavier(format!("l{l}.h{h}.wq"), cfg.embed, dh, &mut rng));
                wk.push(store.add_xavier(format!("l{l}.h{h}.wk"), cfg.embed, dh, &mut rng));
                wv.push(store.add_xavier(format!("l{l}.h{h}.wv"), cfg.embed, dh, &mut rng));
                wo.push(store.add_xavier(format!("l{l}.h{h}.wo"), dh, cfg.embed, &mut rng));
            }
            layers.push(LayerIds {
                norm1: store.add_ones(format!("l{l}.norm1"), 1, cfg.embed),
                wq,
                wk,
                wv,
                wo,
                norm2: store.add_ones(format!("l{l}.norm2"), 1, cfg.embed),
                w1: store.add_xavier(format!("l{l}.ffn.w1"), cfg.embed, cfg.ff_hidden, &mut rng),
                w3: store.add_xavier(format!("l{l}.ffn.w3"), cfg.embed, cfg.ff_hidden, &mut rng),
                w2: store.add_xavier(format!("l{l}.ffn.w2"), cfg.ff_hidden, cfg.embed, &mut rng),
            });
        }
        let final_norm = store.add_ones("final_norm", 1, cfg.embed);
        let mlp_in = cfg.feat_dim + cfg.embed + cfg.spec_dim;
        let mlp_w1 = store.add_xavier("mlp.w1", mlp_in, cfg.mlp_hidden, &mut rng);
        let mlp_b1 = store.add_zeros("mlp.b1", 1, cfg.mlp_hidden);
        let mlp_w2 = store.add_xavier("mlp.w2", cfg.mlp_hidden, cfg.out_dim, &mut rng);
        let mlp_b2 = store.add_zeros("mlp.b2", 1, cfg.out_dim);
        M3Net {
            cfg,
            store,
            proj_w,
            proj_b,
            pos,
            layers,
            final_norm,
            mlp_w1,
            mlp_b1,
            mlp_w2,
            mlp_b2,
        }
    }

    /// Encode the background maps into a context vector node ([1, embed]).
    fn context<'t>(&self, tape: &mut Tape<'t>, sample: &SampleInput) -> Var {
        if !sample.use_context || sample.bg.is_empty() {
            return tape.input(Tensor::zeros(1, self.cfg.embed));
        }
        let l = sample.bg.len().min(self.cfg.block);
        let mut data = Vec::with_capacity(l * self.cfg.feat_dim);
        for hop in sample.bg.iter().take(l) {
            assert_eq!(hop.len(), self.cfg.feat_dim, "background map width");
            data.extend_from_slice(hop);
        }
        let x = tape.input(Tensor::from_vec(l, self.cfg.feat_dim, data));
        let proj_w = tape.param(self.proj_w);
        let proj_b = tape.param(self.proj_b);
        let x = tape.matmul(x, proj_w);
        let mut x = tape.add_bias(x, proj_b);
        // Learned positions: selector [L, block] x pos [block, embed].
        let mut sel = Tensor::zeros(l, self.cfg.block);
        for i in 0..l {
            *sel.at_mut(i, i) = 1.0;
        }
        let sel = tape.input(sel);
        let pos = tape.param(self.pos);
        let posx = tape.matmul(sel, pos);
        x = tape.add(x, posx);

        let scale = 1.0 / (self.cfg.head_dim() as f32).sqrt();
        for layer in &self.layers {
            // Attention sublayer.
            let g1 = tape.param(layer.norm1);
            let normed = tape.rms_norm(x, g1);
            let mut attn_out: Option<Var> = None;
            for h in 0..self.cfg.heads {
                let wq = tape.param(layer.wq[h]);
                let wk = tape.param(layer.wk[h]);
                let wv = tape.param(layer.wv[h]);
                let wo = tape.param(layer.wo[h]);
                let q = tape.matmul(normed, wq);
                let k = tape.matmul(normed, wk);
                let v = tape.matmul(normed, wv);
                let scores = tape.matmul_nt(q, k);
                let scores = tape.scale(scores, scale);
                let attn = tape.causal_softmax(scores);
                let out = tape.matmul(attn, v);
                let proj = tape.matmul(out, wo);
                attn_out = Some(match attn_out {
                    Some(acc) => tape.add(acc, proj),
                    None => proj,
                });
            }
            // `heads >= 1` (asserted at construction), so the fold above
            // always produced a value.
            x = match attn_out {
                Some(attn) => tape.add(x, attn),
                None => unreachable!("model has at least one attention head"),
            };
            // SwiGLU feed-forward sublayer.
            let g2 = tape.param(layer.norm2);
            let normed = tape.rms_norm(x, g2);
            let w1 = tape.param(layer.w1);
            let w3 = tape.param(layer.w3);
            let w2 = tape.param(layer.w2);
            let a = tape.matmul(normed, w1);
            let a = tape.silu(a);
            let b = tape.matmul(normed, w3);
            let hmul = tape.mul(a, b);
            let ff = tape.matmul(hmul, w2);
            x = tape.add(x, ff);
        }
        let gf = tape.param(self.final_norm);
        let x = tape.rms_norm(x, gf);
        tape.slice_row(x, l - 1)
    }

    /// Build the forward graph; returns the prediction node ([1, out_dim]).
    pub fn forward<'t>(&self, tape: &mut Tape<'t>, sample: &SampleInput) -> Var {
        assert_eq!(sample.fg.len(), self.cfg.feat_dim, "foreground map width");
        assert_eq!(sample.spec.len(), self.cfg.spec_dim, "spec vector width");
        let ctx = self.context(tape, sample);
        let fg = tape.input(Tensor::row_vector(sample.fg.clone()));
        let spec = tape.input(Tensor::row_vector(sample.spec.clone()));
        let joined = tape.concat_cols(fg, ctx);
        let joined = tape.concat_cols(joined, spec);
        let w1 = tape.param(self.mlp_w1);
        let b1 = tape.param(self.mlp_b1);
        let w2 = tape.param(self.mlp_w2);
        let b2 = tape.param(self.mlp_b2);
        let h = tape.matmul(joined, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.relu(h);
        let out = tape.matmul(h, w2);
        tape.add_bias(out, b2)
    }

    /// Forward + L1 loss; returns (prediction, loss) nodes.
    pub fn loss<'t>(
        &self,
        tape: &mut Tape<'t>,
        sample: &SampleInput,
        target: &[f32],
    ) -> (Var, Var) {
        assert_eq!(target.len(), self.cfg.out_dim, "target width");
        let pred = self.forward(tape, sample);
        let t = tape.input(Tensor::row_vector(target.to_vec()));
        let loss = tape.l1_loss(pred, t);
        (pred, loss)
    }

    /// Retained tape-based inference path. Semantically (and bit-for-bit)
    /// equal to [`M3Net::predict`]; kept as the reference implementation
    /// for the proptest bit-identity suite and as the "before" side of the
    /// hotpath benchmark gate.
    pub fn predict_reference(&self, sample: &SampleInput) -> Vec<f32> {
        let mut tape = Tape::new_reference(&self.store);
        let pred = self.forward(&mut tape, sample);
        tape.value(pred).data.clone()
    }

    /// The transformer context of one sample as a plain `[embed]` vector.
    fn context_vector(&self, sample: &SampleInput) -> Vec<f32> {
        let mut tape = Tape::new_reference(&self.store);
        let ctx = self.context(&mut tape, sample);
        tape.value(ctx).data.clone()
    }

    /// Retained pre-overhaul batched inference path: reference-mode tape
    /// contexts (scalar kernels, per-op heap allocation, param clones)
    /// plus a stacked MLP through the scalar reference kernels; the
    /// "before" side of the hotpath benchmark gate. Bit-identical to
    /// [`M3Net::predict_batch`].
    ///
    /// The per-hop background sequences have different lengths, so the
    /// transformer contexts are computed per sample (in parallel); the
    /// sample rows `[fg ∥ context ∥ spec]` are then stacked into one
    /// `[k, mlp_in]` matrix and pushed through a single batched MLP
    /// forward. Equivalence holds because every matmul/bias/ReLU output row
    /// depends only on its own input row, evaluated in the same order as
    /// the single-sample path (see `Tensor::stack_rows`).
    pub fn predict_batch_reference(&self, samples: &[SampleInput]) -> Vec<Vec<f32>> {
        if samples.is_empty() {
            return Vec::new();
        }
        for s in samples {
            assert_eq!(s.fg.len(), self.cfg.feat_dim, "foreground map width");
            assert_eq!(s.spec.len(), self.cfg.spec_dim, "spec vector width");
        }
        let contexts: Vec<Vec<f32>> = samples.par_iter().map(|s| self.context_vector(s)).collect();

        let mlp_in = self.cfg.feat_dim + self.cfg.embed + self.cfg.spec_dim;
        let mut joined = Tensor::zeros(samples.len(), mlp_in);
        for (i, (s, ctx)) in samples.iter().zip(&contexts).enumerate() {
            let row = &mut joined.data[i * mlp_in..(i + 1) * mlp_in];
            row[..self.cfg.feat_dim].copy_from_slice(&s.fg);
            row[self.cfg.feat_dim..self.cfg.feat_dim + self.cfg.embed].copy_from_slice(ctx);
            row[self.cfg.feat_dim + self.cfg.embed..].copy_from_slice(&s.spec);
        }

        let w1 = self.store.get(self.mlp_w1);
        let b1 = self.store.get(self.mlp_b1);
        let w2 = self.store.get(self.mlp_w2);
        let b2 = self.store.get(self.mlp_b2);
        let mut h = Tensor::zeros(joined.rows, w1.cols);
        Tensor::matmul_into_reference(&joined, w1, &mut h);
        for r in 0..h.rows {
            for c in 0..h.cols {
                *h.at_mut(r, c) += b1.at(0, c);
            }
        }
        for v in h.data.iter_mut() {
            *v = v.max(0.0);
        }
        let mut out = Tensor::zeros(h.rows, w2.cols);
        Tensor::matmul_into_reference(&h, w2, &mut out);
        for r in 0..out.rows {
            for c in 0..out.cols {
                *out.at_mut(r, c) += b2.at(0, c);
            }
        }
        (0..out.rows).map(|r| out.row(r).data).collect()
    }

    /// Content fingerprint of the model: hashes the architecture and every
    /// parameter value. Two nets with equal fingerprints produce identical
    /// predictions, so the fingerprint is a sound cache key component.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.cfg.feat_dim as u64);
        h.write_u64(self.cfg.spec_dim as u64);
        h.write_u64(self.cfg.out_dim as u64);
        h.write_u64(self.cfg.embed as u64);
        h.write_u64(self.cfg.heads as u64);
        h.write_u64(self.cfg.layers as u64);
        h.write_u64(self.cfg.block as u64);
        h.write_u64(self.cfg.ff_hidden as u64);
        h.write_u64(self.cfg.mlp_hidden as u64);
        for p in self.store.iter() {
            for b in p.name.bytes() {
                h.write_u8(b);
            }
            h.write_u64(p.value.rows as u64);
            h.write_u64(p.value.cols as u64);
            for &v in &p.value.data {
                h.write_u32(v.to_bits());
            }
        }
        h.finish()
    }

    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Compute summed gradients and mean loss over a batch, in parallel across
/// samples (each rayon worker owns its own tape).
///
/// Determinism: per-sample gradients are collected *indexed* (in batch
/// order) and then combined by a fixed-shape pairwise tree reduction whose
/// structure depends only on the batch size — never on thread scheduling —
/// so the floating-point accumulation order, and therefore every trained
/// parameter, is bit-for-bit reproducible across runs and thread counts.
pub fn batch_gradients(net: &M3Net, batch: &[(SampleInput, Vec<f32>)]) -> (Vec<Tensor>, f64) {
    batch_gradients_pooled(net, batch, &crate::arena::ArenaPool::new())
}

/// [`batch_gradients`] with tape scratch drawn from a caller-held arena
/// pool: each worker's tape recycles its node buffers through the pool, so
/// batch members (and repeated steps sharing the pool) reuse warm buffers.
/// Per-sample values and the reduction order are unchanged, so results are
/// bit-identical to the unpooled path.
pub fn batch_gradients_pooled(
    net: &M3Net,
    batch: &[(SampleInput, Vec<f32>)],
    pool: &crate::arena::ArenaPool,
) -> (Vec<Tensor>, f64) {
    assert!(!batch.is_empty());
    let mut partial: Vec<(Vec<Tensor>, f64)> = batch
        .par_iter()
        .map(|(sample, target)| {
            let mut grads = net.store.zero_grads();
            let mut tape = Tape::with_arena(&net.store, pool.take());
            let (_, loss) = net.loss(&mut tape, sample, target);
            tape.backward(loss, &mut grads);
            let loss_val = tape.value(loss).data[0] as f64;
            pool.put(tape.recycle());
            (grads, loss_val)
        })
        .collect();

    // Fixed-order tree reduction: round r combines slot i with slot
    // i + stride for every even multiple i of stride.
    let mut stride = 1;
    while stride < partial.len() {
        let mut i = 0;
        while i + stride < partial.len() {
            let (gb, lb) = std::mem::replace(&mut partial[i + stride], (Vec::new(), 0.0));
            let (ga, la) = &mut partial[i];
            for (a, b) in ga.iter_mut().zip(&gb) {
                for (x, &y) in a.data.iter_mut().zip(&b.data) {
                    *x += y;
                }
            }
            *la += lb;
            i += stride * 2;
        }
        stride *= 2;
    }
    let (mut grads, loss_sum) = partial.swap_remove(0);

    // Average over the batch.
    let n = batch.len() as f32;
    for g in grads.iter_mut() {
        for v in g.data.iter_mut() {
            *v /= n;
        }
    }
    (grads, loss_sum / batch.len() as f64)
}

/// Global L2 norm of a gradient set, accumulated in f64 so the result is
/// stable across parameter counts. Useful as a training-health telemetry
/// signal (exploding/vanishing gradients).
pub fn grad_l2_norm(grads: &[Tensor]) -> f64 {
    grads
        .iter()
        .flat_map(|g| g.data.iter())
        .map(|&v| v as f64 * v as f64)
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ModelConfig {
        ModelConfig {
            feat_dim: 20,
            spec_dim: 5,
            out_dim: 8,
            embed: 8,
            heads: 2,
            layers: 2,
            block: 6,
            ff_hidden: 16,
            mlp_hidden: 12,
        }
    }

    fn sample(bg_hops: usize, cfg: &ModelConfig) -> SampleInput {
        SampleInput {
            fg: (0..cfg.feat_dim).map(|i| (i as f32 * 0.1).sin()).collect(),
            bg: (0..bg_hops)
                .map(|h| {
                    (0..cfg.feat_dim)
                        .map(|i| ((i + h * 3) as f32 * 0.07).cos())
                        .collect()
                })
                .collect(),
            spec: vec![0.3; cfg.spec_dim],
            use_context: true,
        }
    }

    #[test]
    fn forward_shapes() {
        let cfg = tiny_cfg();
        let net = M3Net::new(cfg.clone(), 1);
        for hops in [0, 1, 3, 6] {
            let out = net.predict(&sample(hops, &cfg));
            assert_eq!(out.len(), cfg.out_dim);
            assert!(out.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn variable_hop_counts_change_output() {
        let cfg = tiny_cfg();
        let net = M3Net::new(cfg.clone(), 1);
        let o2 = net.predict(&sample(2, &cfg));
        let o4 = net.predict(&sample(4, &cfg));
        assert_ne!(o2, o4, "context must depend on the hop sequence");
    }

    #[test]
    fn no_context_ablation_ignores_background() {
        let cfg = tiny_cfg();
        let net = M3Net::new(cfg.clone(), 1);
        let mut s2 = sample(2, &cfg);
        let mut s5 = sample(5, &cfg);
        s2.use_context = false;
        s5.use_context = false;
        assert_eq!(net.predict(&s2), net.predict(&s5));
    }

    #[test]
    fn deterministic_construction_and_inference() {
        let cfg = tiny_cfg();
        let a = M3Net::new(cfg.clone(), 42);
        let b = M3Net::new(cfg.clone(), 42);
        assert_eq!(a.predict(&sample(3, &cfg)), b.predict(&sample(3, &cfg)));
        let c = M3Net::new(cfg.clone(), 43);
        assert_ne!(a.predict(&sample(3, &cfg)), c.predict(&sample(3, &cfg)));
    }

    #[test]
    fn training_reduces_loss() {
        let cfg = tiny_cfg();
        let mut net = M3Net::new(cfg.clone(), 5);
        let batch: Vec<(SampleInput, Vec<f32>)> = (0..4)
            .map(|i| {
                (
                    sample(2 + i % 3, &cfg),
                    (0..cfg.out_dim)
                        .map(|j| (j as f32 + i as f32) * 0.1)
                        .collect(),
                )
            })
            .collect();
        let mut opt = crate::optim::Adam::new(&net.store, 1e-2);
        let (_, first_loss) = batch_gradients(&net, &batch);
        let mut last = first_loss;
        for _ in 0..30 {
            let (grads, loss) = batch_gradients(&net, &batch);
            opt.step(&mut net.store, &grads);
            last = loss;
        }
        assert!(
            last < first_loss * 0.5,
            "loss should halve: {first_loss} -> {last}"
        );
    }

    #[test]
    fn predict_batch_bit_identical_to_predict() {
        let cfg = tiny_cfg();
        let net = M3Net::new(cfg.clone(), 9);
        // Mixed hop counts (including 0: zero context) and an ablation row.
        let mut samples: Vec<SampleInput> = [0usize, 1, 3, 6, 2, 4]
            .iter()
            .map(|&h| sample(h, &cfg))
            .collect();
        samples[4].use_context = false;
        let batched = net.predict_batch(&samples);
        assert_eq!(batched.len(), samples.len());
        for (i, s) in samples.iter().enumerate() {
            let single = net.predict(s);
            let got: Vec<u32> = batched[i].iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "sample {i}");
            // The no-tape fast path must match the retained tape path.
            let reference = net.predict_reference(s);
            let refb: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, refb, "fast path diverged from tape path, sample {i}");
        }
        let ref_batched = net.predict_batch_reference(&samples);
        assert_eq!(batched, ref_batched);
        assert!(net.predict_batch(&[]).is_empty());
    }

    #[test]
    fn batch_gradients_deterministic_across_runs() {
        let cfg = tiny_cfg();
        let net = M3Net::new(cfg.clone(), 5);
        // Odd batch size exercises the unpaired-tail path of the tree.
        let batch: Vec<(SampleInput, Vec<f32>)> = (0..7)
            .map(|i| {
                (
                    sample(1 + i % 4, &cfg),
                    (0..cfg.out_dim).map(|j| (j + i) as f32 * 0.1).collect(),
                )
            })
            .collect();
        let (ga, la) = batch_gradients(&net, &batch);
        let (gb, lb) = batch_gradients(&net, &batch);
        assert_eq!(la.to_bits(), lb.to_bits());
        for (a, b) in ga.iter().zip(&gb) {
            let ab: Vec<u32> = a.data.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
    }

    #[test]
    fn fingerprint_tracks_parameters_and_config() {
        let cfg = tiny_cfg();
        let a = M3Net::new(cfg.clone(), 42);
        let b = M3Net::new(cfg.clone(), 42);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = M3Net::new(cfg.clone(), 43);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = M3Net::new(cfg, 42);
        d.store.get_mut(crate::params::ParamId(0)).data[0] += 1.0;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn paper_scale_param_count() {
        // The paper reports ~16.8M transformer parameters; our paper-scale
        // config should land in that ballpark (within 2x).
        let cfg = ModelConfig::paper_scale(16);
        let net = M3Net::new(cfg, 0);
        let n = net.num_params();
        assert!(
            (8_000_000..40_000_000).contains(&n),
            "paper-scale params {n}"
        );
    }

    #[test]
    fn long_sequences_truncate_to_block() {
        let cfg = tiny_cfg();
        let net = M3Net::new(cfg.clone(), 1);
        let out = net.predict(&sample(32, &cfg)); // > block
        assert_eq!(out.len(), cfg.out_dim);
    }

    #[test]
    fn grad_l2_norm_matches_hand_computation() {
        let grads = vec![
            Tensor::from_vec(1, 2, vec![3.0, 0.0]),
            Tensor::from_vec(2, 1, vec![0.0, 4.0]),
        ];
        assert!((grad_l2_norm(&grads) - 5.0).abs() < 1e-12);
        assert_eq!(grad_l2_norm(&[]), 0.0);
    }
}
