//! A minimal 2-D tensor: every value in the m3 model is a matrix (a
//! sequence of embeddings `[L, D]`, a feature map `[1, 1000]`, a weight
//! `[in, out]`). Row-major `Vec<f32>` storage, no strides, no views —
//! simplicity over cleverness, per this repo's networking-guide idioms.

#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    pub fn row_vector(data: Vec<f32>) -> Self {
        Tensor {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// C = A * B (`[n,k] x [k,m] -> [n,m]`), accumulating into `out`.
    pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(a.cols, b.rows, "matmul inner dims");
        assert_eq!((out.rows, out.cols), (a.rows, b.cols));
        // ikj loop order: streams through B and C rows, decent cache use.
        for i in 0..a.rows {
            let c_row = &mut out.data[i * b.cols..(i + 1) * b.cols];
            for k in 0..a.cols {
                let aik = a.data[i * a.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b.data[k * b.cols..(k + 1) * b.cols];
                for (c, &bv) in c_row.iter_mut().zip(b_row) {
                    *c += aik * bv;
                }
            }
        }
    }

    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows, b.cols);
        Tensor::matmul_into(a, b, &mut out);
        out
    }

    /// Stack row vectors (each `[1, cols]`) into one `[n, cols]` matrix.
    ///
    /// This is the batching primitive: because [`Tensor::matmul_into`]
    /// computes each output row from the matching input row alone, with a
    /// fixed k-accumulation order, `matmul(stack_rows(xs), w)` is
    /// bit-for-bit identical to stacking the per-row `matmul(x, w)`
    /// results.
    pub fn stack_rows(rows: &[&Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows: empty input");
        let cols = rows[0].cols;
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.rows, 1, "stack_rows expects row vectors");
            assert_eq!(r.cols, cols, "stack_rows width mismatch");
            data.extend_from_slice(&r.data);
        }
        Tensor::from_vec(rows.len(), cols, data)
    }

    /// Copy of one row as a `[1, cols]` tensor.
    pub fn row(&self, r: usize) -> Tensor {
        assert!(r < self.rows, "row out of range");
        Tensor::from_vec(
            1,
            self.cols,
            self.data[r * self.cols..(r + 1) * self.cols].to_vec(),
        )
    }

    /// C = A * B^T (`[n,k] x [m,k]^T -> [n,m]`), accumulating into `out`.
    pub fn matmul_nt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(a.cols, b.cols, "matmul_nt inner dims");
        assert_eq!((out.rows, out.cols), (a.rows, b.rows));
        for i in 0..a.rows {
            let a_row = &a.data[i * a.cols..(i + 1) * a.cols];
            for j in 0..b.rows {
                let b_row = &b.data[j * b.cols..(j + 1) * b.cols];
                let dot: f32 = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
                out.data[i * b.rows + j] += dot;
            }
        }
    }

    /// C = A^T * B (`[k,n]^T x [k,m] -> [n,m]`), accumulating into `out`.
    pub fn matmul_tn_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(a.rows, b.rows, "matmul_tn inner dims");
        assert_eq!((out.rows, out.cols), (a.cols, b.cols));
        for k in 0..a.rows {
            let a_row = &a.data[k * a.cols..(k + 1) * a.cols];
            let b_row = &b.data[k * b.cols..(k + 1) * b.cols];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let c_row = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (c, &bv) in c_row.iter_mut().zip(b_row) {
                    *c += av * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = Tensor::matmul(&a, &b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_matches_matmul() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        // b = [[7,9,11],[8,10,12]] so that b^T equals the b above.
        let b = Tensor::from_vec(2, 3, vec![7., 9., 11., 8., 10., 12.]);
        let mut c = Tensor::zeros(2, 2);
        Tensor::matmul_nt_into(&a, &b, &mut c);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_matches_matmul() {
        // a^T where a is [3,2]: compare against direct matmul of transpose.
        let a = Tensor::from_vec(3, 2, vec![1., 4., 2., 5., 3., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let mut c = Tensor::zeros(2, 2);
        Tensor::matmul_tn_into(&a, &b, &mut c);
        // a^T = [[1,2,3],[4,5,6]]
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn batched_matmul_rows_bit_identical() {
        // The property predict_batch relies on: stacking rows and doing one
        // matmul gives exactly the same bits as one matmul per row.
        let w = Tensor::from_vec(3, 4, (0..12).map(|i| ((i as f32) * 0.71).sin()).collect());
        let rows: Vec<Tensor> = (0..5)
            .map(|r| {
                Tensor::row_vector((0..3).map(|c| ((r * 3 + c) as f32 * 0.33).cos()).collect())
            })
            .collect();
        let stacked = Tensor::stack_rows(&rows.iter().collect::<Vec<_>>());
        let batched = Tensor::matmul(&stacked, &w);
        for (r, row) in rows.iter().enumerate() {
            let single = Tensor::matmul(row, &w);
            let got: Vec<u32> = batched.row(r).data.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = single.data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        Tensor::matmul(&a, &b);
    }
}
